//! Offline stand-in for the `bytes` crate.
//!
//! Provides `Bytes`: an immutable, cheaply-cloneable, sliceable byte
//! buffer backed by `Arc<Vec<u8>>` with a `[start, end)` window. Clones
//! and splits share the allocation and only move the window — the
//! property simnet relies on when it fans one segment out to delivery
//! and accounting paths.

use std::fmt;
use std::sync::Arc;

#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer; does not allocate a backing vector per call
    /// beyond the `Arc` bookkeeping.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a fresh owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// Both halves share the original allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to out of bounds: {} > {}",
            at,
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Split off and return everything from `at` on; `self` keeps the
    /// first `at` bytes. Both halves share the original allocation.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_off out of bounds: {} > {}",
            at,
            self.len()
        );
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Narrow to a sub-range of the current window.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_shares_allocation() {
        let mut b = Bytes::copy_from_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        assert!(Arc::ptr_eq(&head.data, &b.data));
    }

    #[test]
    fn split_off_keeps_head() {
        let mut b = Bytes::copy_from_slice(b"abcdef");
        let tail = b.split_off(2);
        assert_eq!(&b[..], b"ab");
        assert_eq!(&tail[..], b"cdef");
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(b"xyz");
        let c = a.clone();
        assert_eq!(a, c);
        assert!(Arc::ptr_eq(&a.data, &c.data));
    }

    #[test]
    fn empty_and_slice() {
        let b = Bytes::new();
        assert!(b.is_empty());
        let s = Bytes::copy_from_slice(b"0123456789").slice(2..5);
        assert_eq!(&s[..], b"234");
    }

    #[test]
    #[should_panic]
    fn split_to_past_end_panics() {
        Bytes::copy_from_slice(b"ab").split_to(3);
    }
}
