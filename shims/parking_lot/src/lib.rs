//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the `parking_lot` API it actually uses, backed
//! by `std::sync`. Semantics match where it matters for this codebase:
//! guards are not `Send`, locks are not reentrant, and a poisoned lock
//! does not propagate panics (parking_lot has no poisoning — we recover
//! the inner value, matching its behavior of simply unlocking on panic).
//!
//! If the real crate ever becomes available again, deleting this shim and
//! restoring the registry dependency is a drop-in swap.

use std::fmt;
use std::time::{Duration, Instant};

/// A mutex with `parking_lot`'s panic-transparent (non-poisoning) API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard for a wait.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on this module's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        guard.guard = Some(self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_and_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(
            m.try_lock().is_none(),
            "held lock must not be re-acquirable"
        );
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 2);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_and_times_out() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        let deadline = Instant::now() + Duration::from_secs(2);
        while !*ready {
            assert!(
                !cv.wait_until(&mut ready, deadline).timed_out(),
                "missed wakeup"
            );
        }
        h.join().unwrap();
        drop(ready); // release before re-locking below

        let mut ready = lock.lock();
        let deadline = Instant::now() + Duration::from_millis(10);
        // Nobody notifies anymore: the wait must eventually time out
        // (looping tolerates spurious wakeups).
        while !cv.wait_until(&mut ready, deadline).timed_out() {}
        assert!(Instant::now() >= deadline);
    }

    #[test]
    fn poisoned_lock_recovers_value() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 5, "parking_lot has no poisoning");
    }
}
