//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(...)]` inner
//! attribute), `any::<T>()` for primitives, integer/float range
//! strategies, `proptest::collection::vec`, string-literal strategies,
//! and `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Differences from the real crate, deliberately accepted:
//! - No shrinking: a failing case reports its inputs (via the panic from
//!   the assert) but is not minimized.
//! - String-literal strategies ignore the regex and generate arbitrary
//!   printable Unicode; the one pattern used here (`"\PC*"`) means
//!   exactly that.
//! - Generation is deterministic per test name, so failures reproduce
//!   across runs without a persistence file.
//!
//! Integer generation is edge-biased (zero, ±1, MIN, MAX show up far
//! more often than uniform sampling would give) because codec round-trip
//! properties live or die on those values.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    /// Per-`proptest!` block configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Matches real proptest's default case count.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xorshift64* source seeded from the test name, so
    /// every run of a given test replays the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(tag: &str) -> Self {
            // FNV-1a over the test name spreads similar names apart.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: if h == 0 { 0x9e37_79b9_7f4a_7c15 } else { h },
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in [0, 1).
        pub fn next_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }
}

use strategy::Strategy;

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — arbitrary values of a primitive type.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // 1-in-8 draws hit the edge set; codecs break there first.
                if rng.next_u64() % 8 == 0 {
                    const EDGES: [$t; 5] =
                        [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX.wrapping_add(<$t>::MIN)];
                    EDGES[(rng.next_u64() % 5) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }

        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.next_unit()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

/// String literals act as strategies. The regex itself is NOT
/// interpreted: any printable-Unicode string of length 0..64 is
/// produced, which satisfies the `"\PC*"` pattern this workspace uses.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = (rng.next_u64() % 64) as usize;
        (0..len)
            .map(|_| loop {
                // Mix of ASCII (common case) and wider planes to
                // exercise multi-byte UTF-8 encodings.
                let c = match rng.next_u64() % 4 {
                    0..=1 => (0x20 + rng.next_u64() % 0x5f) as u32,
                    2 => 0xa0 + (rng.next_u64() % 0x700) as u32,
                    _ => 0x1_f300 + (rng.next_u64() % 0x100) as u32,
                };
                if let Some(c) = char::from_u32(c) {
                    if !c.is_control() {
                        break c;
                    }
                }
            })
            .collect()
    }
}

// Tuples of strategies are themselves strategies, exactly as in the
// real crate — each component generates independently.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Concrete length specification. Taking `impl Into<SizeRange>`
    /// (rather than a generic strategy) is what lets unsuffixed literals
    /// like `1..100_000` infer as `usize` — the same trick the real
    /// crate uses.
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// `proptest::collection::vec(elem, len)` — a vector whose length is
    /// drawn from `len` and whose elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.0.end - self.len.0.start) as u64;
            let n = self.len.0.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(inner)` — `None` about a quarter of the
    /// time (the real crate's default probability), `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any};
}

/// Without shrinking these are plain asserts: the panic message carries
/// the (deterministically reproducible) failing inputs' assertion text.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $( let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng); )+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (10usize..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let i = (-1isize..2).generate(&mut rng);
            assert!((-1..2).contains(&i));
        }
    }

    #[test]
    fn any_int_hits_edges() {
        let mut rng = crate::test_runner::TestRng::deterministic("edges");
        let vals: Vec<i64> = (0..2000).map(|_| any::<i64>().generate(&mut rng)).collect();
        assert!(vals.contains(&i64::MIN));
        assert!(vals.contains(&i64::MAX));
        assert!(vals.contains(&0));
    }

    #[test]
    fn vec_strategy_nests() {
        let mut rng = crate::test_runner::TestRng::deterministic("vecs");
        let s = crate::collection::vec(crate::collection::vec(any::<u8>(), 0..5), 1..10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|inner| inner.len() < 5));
        }
    }

    #[test]
    fn string_strategy_is_printable_utf8() {
        let mut rng = crate::test_runner::TestRng::deterministic("strings");
        for _ in 0..100 {
            let s = "\\PC*".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: multiple args, trailing comma, config.
        #[test]
        fn macro_generates_and_runs(
            a in 1usize..100,
            b in any::<bool>(),
            s in proptest::collection::vec(any::<u8>(), 0..10),
        ) {
            prop_assert!((1..100).contains(&a));
            prop_assert_eq!(b, b);
            prop_assert_ne!(s.len(), 10);
        }
    }

    // `proptest` must resolve inside the macro body above even though this
    // IS the proptest crate.
    use crate as proptest;
}
