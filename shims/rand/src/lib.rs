//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng`/`RngCore` methods
//! `gen_range` (half-open and inclusive integer/float ranges), `gen`,
//! `gen_bool`, and `fill_bytes`. The generator is xorshift64* with a
//! splitmix64-expanded seed — not cryptographic, statistically plenty
//! for workload generation and property tests, and fully deterministic
//! per seed.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything else is derived from these.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seeding entry points. Only `seed_from_u64` is provided; the
/// byte-array `from_seed` form is unused in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by `Rng::gen()`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with `Rng::gen_range()`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 whitens trivially-related seeds (0, 1, 2, ...)
            // into well-separated starting states.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            StdRng {
                state: if z == 0 { 0x4d59_5df4_d0f3_3173 } else { z },
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

fn unit_f64(word: u64) -> f64 {
    // Top 53 bits → uniform in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 intermediates keep the span arithmetic exact for
                // every integer type up to u64/i64.
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(StdRng::seed_from_u64(1).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-0.02f64..0.02);
            assert!((-0.02..0.02).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "200 draws should hit all 8 buckets"
        );
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(
            buf.iter().any(|&b| b != 0),
            "13 random bytes all zero is ~impossible"
        );
    }
}
