//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset `benches/micro.rs` uses — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery.
//!
//! Each benchmark warms up briefly, then runs timed batches for a small
//! fixed budget (bounded so `cargo bench` stays fast offline) and prints
//! mean time per iteration plus derived throughput when one was declared.
//! Numbers are indicative, not rigorous: no outlier rejection, no
//! regression analysis, no HTML reports.

use std::time::{Duration, Instant};

/// Declared per-iteration work, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for one parameterized benchmark instance.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    fn run(budget: Duration, mut f: impl FnMut(&mut Bencher)) -> (u64, Duration) {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget,
        };
        f(&mut b);
        (b.iters_done.max(1), b.elapsed)
    }

    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: a few unmeasured runs to fault in caches/allocs.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            // Check wall clock in batches so the timer itself doesn't
            // dominate nanosecond-scale routines.
            if iters.is_multiple_of(64) && start.elapsed() >= self.budget {
                break;
            }
            if iters >= 10_000_000 {
                break;
            }
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

fn report(name: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let time_str = if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} us", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!("bench: {name:<45} {time_str:>12}/iter{extra}  [{iters} iters]");
}

/// Entry point handed to each `criterion_group!` function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small fixed budget per benchmark: indicative numbers, fast runs.
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (iters, elapsed) = Bencher::run(self.budget, f);
        report(name, iters, elapsed, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            budget: self.budget,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Applies to benchmarks registered after this call.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the fixed offline budget wins.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sampling is not configurable.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let (iters, elapsed) = Bencher::run(self.budget, f);
        report(
            &format!("{}/{}", self.name, id.full),
            iters,
            elapsed,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let (iters, elapsed) = Bencher::run(self.budget, |b| f(b, input));
        report(
            &format!("{}/{}", self.name, id.full),
            iters,
            elapsed,
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// `criterion_group!(name, fn1, fn2, ...)` — simple form only.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            budget: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_counts_iterations() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_chains() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.measurement_time(Duration::from_secs(10));
        g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.bench_function("plain", |b| b.iter(|| ()));
        g.finish();
    }

    criterion_group!(test_group, trivial_bench);

    fn trivial_bench(c: &mut Criterion) {
        c.budget = Duration::from_millis(2);
        c.bench_function("trivial", |b| b.iter(|| 0));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        test_group();
    }
}
