//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided — the subset this workspace
//! uses: MPMC `bounded`/`unbounded` channels whose `Sender` *and*
//! `Receiver` are `Clone + Send + Sync`, with blocking, timed, and
//! non-blocking receives. (std's mpsc receiver is neither `Clone` nor
//! `Sync`, which is exactly why the engine uses crossbeam: the server's
//! handler pool pops one shared call queue.)
//!
//! Built on `Mutex<VecDeque>` + two condvars. Slower than lock-free
//! crossbeam under heavy contention, but the RPC engine's queues see
//! thousands of ops per second, not millions.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]: the channel was full or
    /// every receiver is gone. Carries the rejected value back.
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("channel empty or disconnected")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("channel receive timed out or disconnected")
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl<T> std::error::Error for TrySendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for TryRecvError {}
    impl std::error::Error for RecvTimeoutError {}

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half. Cloning adds a sender; the channel disconnects
    /// for receivers when the last sender drops.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half. Cloning adds a receiver (MPMC: every message
    /// goes to exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// A channel that blocks senders once `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// A channel whose queue grows without bound; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    fn lock<T>(inner: &Inner<T>) -> std::sync::MutexGuard<'_, State<T>> {
        inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    impl<T> Sender<T> {
        /// Deliver `value`, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.inner);
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self
                            .inner
                            .not_full
                            .wait(state)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Deliver `value` only if it fits right now: a full bounded
        /// channel returns [`TrySendError::Full`] instead of blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = lock(&self.inner);
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.inner.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Pop the next message, blocking until one arrives or every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.inner);
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Pop the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock(&self.inner);
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Pop the next message, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = lock(&self.inner);
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, _timed_out) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = s;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.inner);
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Blocked receivers must observe the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.inner);
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Blocked senders must observe the disconnect.
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn try_send_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        }

        #[test]
        fn bounded_blocks_until_popped() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the 1 is popped
                tx.send(3).unwrap();
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
            t.join().unwrap();
        }

        #[test]
        fn timeout_and_disconnect_are_distinguished() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn queued_messages_survive_sender_drop() {
            let (tx, rx) = unbounded();
            tx.send(42).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 42, "drain before reporting disconnect");
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_to_no_receivers_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn mpmc_distributes_each_message_once() {
            let (tx, rx) = unbounded();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..200 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<i32> = workers
                .into_iter()
                .flat_map(|w| w.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..200).collect::<Vec<_>>());
        }

        #[test]
        fn blocked_sender_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2));
            thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert!(
                t.join().unwrap().is_err(),
                "send must fail once receivers are gone"
            );
        }
    }
}
