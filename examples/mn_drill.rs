//! M:N handler runtime drill: in-flight calls cost bytes, not threads.
//!
//! ```sh
//! cargo run --release --example mn_drill
//! ```
//!
//! Three observable claims, each asserted:
//!
//! 1. **Parity** — flipping `handler_runtime` from `threads` to `mn`
//!    is invisible to a lone sequential caller.
//! 2. **Elasticity** — 64 calls parked mid-handler on a 2-worker `mn`
//!    server all complete, while a fast caller keeps flowing *through*
//!    the parked population (the legacy pool would need 64 threads).
//! 3. **Priority** — with `priority_protocols`, a heartbeat protocol
//!    pops ahead of a bulk flood instead of queueing behind it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rpcoib_suite::rpcoib::{
    CallPoll, Client, HandlerCx, HandlerRuntime, RpcConfig, RpcService, Server, ServiceRegistry,
    ShardRole,
};
use rpcoib_suite::simnet::{model, Fabric};
use rpcoib_suite::wire::{DataInput, LongWritable, Writable};

/// A lookup service whose slow path *parks* instead of blocking: the
/// first poll suspends the call frame for the requested number of
/// milliseconds (a stand-in for waiting on a disk or a downstream RPC)
/// and the worker immediately moves on to other calls.
struct LookupService {
    parked_completions: AtomicU64,
}

impl RpcService for LookupService {
    fn protocol(&self) -> &'static str {
        "demo.LookupProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        // Legacy-pool path (`handler_runtime = threads`): same contract,
        // but a slow call blocks its pool thread for the duration.
        let mut arg = LongWritable::default();
        arg.read_fields(param).map_err(|e| e.to_string())?;
        match method {
            "ping" => Ok(Box::new(LongWritable(arg.0 + 1))),
            "slow_lookup" => {
                std::thread::sleep(Duration::from_millis(arg.0 as u64));
                self.parked_completions.fetch_add(1, Ordering::Relaxed);
                Ok(Box::new(LongWritable(arg.0)))
            }
            other => Err(format!("unknown method {other}")),
        }
    }

    fn call_mn(&self, method: &str, param: &mut dyn DataInput, cx: &mut HandlerCx<'_>) -> CallPoll {
        let mut arg = LongWritable::default();
        if let Err(e) = arg.read_fields(param) {
            return CallPoll::Ready(Err(e.to_string()));
        }
        match method {
            "ping" => CallPoll::Ready(Ok(Box::new(LongWritable(arg.0 + 1)))),
            "slow_lookup" if cx.first_poll() => {
                cx.park_for(Duration::from_millis(arg.0 as u64));
                CallPoll::Pending
            }
            "slow_lookup" => {
                self.parked_completions.fetch_add(1, Ordering::Relaxed);
                CallPoll::Ready(Ok(Box::new(LongWritable(arg.0))))
            }
            other => CallPoll::Ready(Err(format!("unknown method {other}"))),
        }
    }
}

fn boot(cfg: &RpcConfig) -> (Fabric, Server, Client, Arc<LookupService>) {
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let service = Arc::new(LookupService {
        parked_completions: AtomicU64::new(0),
    });
    let mut registry = ServiceRegistry::new();
    let as_service: Arc<dyn RpcService> = service.clone();
    registry.register(as_service);
    let server = Server::start(&fabric, server_node, 8020, cfg.clone(), registry).unwrap();
    let client = Client::new(&fabric, client_node, cfg.clone()).unwrap();
    (fabric, server, client, service)
}

fn ping(client: &Client, server: &Server, v: i64) -> i64 {
    let r: LongWritable = client
        .call(
            server.addr(),
            "demo.LookupProtocol",
            "ping",
            &LongWritable(v),
        )
        .unwrap();
    r.0
}

/// Part 1: a lone sequential caller can't tell the runtimes apart.
fn parity() {
    println!("== parity: lone caller, threads vs mn ==");
    for runtime in [HandlerRuntime::Threads, HandlerRuntime::Mn] {
        let mut cfg = RpcConfig::rpcoib();
        cfg.handler_runtime = runtime;
        let (_fabric, server, client, _service) = boot(&cfg);
        for i in 0..20 {
            assert_eq!(ping(&client, &server, i), i + 1);
        }
        let start = Instant::now();
        let n = 200;
        for i in 0..n {
            assert_eq!(ping(&client, &server, i), i + 1);
        }
        let per_call = start.elapsed() / n as u32;
        println!("  {:>7}: {per_call:>9.1?} per call", runtime.name());
        client.shutdown();
        server.stop();
    }
}

/// Part 2: 64 parked calls on 2 workers, with a fast caller flowing
/// through them the whole time.
fn elasticity() {
    println!("== elasticity: 64 parked calls on a 2-worker mn server ==");
    let mut cfg = RpcConfig::rpcoib();
    cfg.handler_runtime = HandlerRuntime::Mn;
    cfg.handler_workers = 2;
    let (_fabric, server, client, service) = boot(&cfg);
    assert_eq!(ping(&client, &server, 0), 1);

    const PARKED: usize = 64;
    let slow: Vec<_> = (0..PARKED)
        .map(|_| {
            let client = client.clone();
            let addr = server.addr();
            std::thread::spawn(move || {
                // Each call parks its frame for 300 ms; none of them
                // holds a worker while suspended.
                let r: LongWritable = client
                    .call(
                        addr,
                        "demo.LookupProtocol",
                        "slow_lookup",
                        &LongWritable(300),
                    )
                    .unwrap();
                assert_eq!(r.0, 300);
            })
        })
        .collect();

    // While all 64 are in flight, fast pings keep round-tripping.
    std::thread::sleep(Duration::from_millis(60));
    let mid_flight = Instant::now();
    let fast = 50;
    for i in 0..fast {
        assert_eq!(ping(&client, &server, i), i + 1);
    }
    let fast_per_call = mid_flight.elapsed() / fast as u32;
    for t in slow {
        t.join().unwrap();
    }
    assert_eq!(
        service.parked_completions.load(Ordering::Relaxed),
        PARKED as u64
    );

    let shards = server.metrics_snapshot().shards;
    let workers: Vec<_> = shards
        .iter()
        .filter(|s| s.role == ShardRole::Worker)
        .collect();
    let parks: u64 = workers.iter().map(|s| s.parks).sum();
    let wakes: u64 = workers.iter().map(|s| s.wakes).sum();
    assert_eq!(workers.len(), 2, "the mn server mounts exactly 2 workers");
    assert!(
        parks >= PARKED as u64,
        "every slow call must have parked (saw {parks})"
    );
    assert!(wakes >= PARKED as u64, "and been woken (saw {wakes})");
    println!(
        "  {PARKED} slow calls completed on 2 workers; fast pings {fast_per_call:.1?} per call \
         mid-flight; worker counters: parks={parks} wakes={wakes}"
    );
    client.shutdown();
    server.stop();
}

/// A bulk data protocol: each call blocks its handler for the requested
/// number of milliseconds. Deliberately *not* in `priority_protocols`.
struct BulkService;

impl RpcService for BulkService {
    fn protocol(&self) -> &'static str {
        "demo.BulkProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let mut arg = LongWritable::default();
        arg.read_fields(param).map_err(|e| e.to_string())?;
        match method {
            "transfer" => {
                std::thread::sleep(Duration::from_millis(arg.0 as u64));
                Ok(Box::new(LongWritable(arg.0)))
            }
            other => Err(format!("unknown method {other}")),
        }
    }
}

/// Part 3: heartbeats pop ahead of a single-handler bulk flood.
fn priority() {
    println!("== priority: heartbeats vs a bulk flood, 1 handler ==");
    let mut cfg = RpcConfig::rpcoib();
    cfg.handlers = 1;
    cfg.priority_protocols = vec!["demo.LookupProtocol".to_string()];

    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let server_node = fabric.add_node();
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(LookupService {
        parked_completions: AtomicU64::new(0),
    }));
    registry.register(Arc::new(BulkService));
    let server = Server::start(&fabric, server_node, 8020, cfg.clone(), registry).unwrap();
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();
    assert_eq!(ping(&client, &server, 0), 1);

    // Queue 20 blocking 50 ms transfers behind the single handler —
    // a full second of bulk backlog — then ask for one heartbeat.
    let floods: Vec<_> = (0..20)
        .map(|_| {
            let client = client.clone();
            let addr = server.addr();
            std::thread::spawn(move || {
                let _: LongWritable = client
                    .call(addr, "demo.BulkProtocol", "transfer", &LongWritable(50))
                    .unwrap();
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(75));
    let start = Instant::now();
    assert_eq!(ping(&client, &server, 7), 8);
    let hb = start.elapsed();
    for t in floods {
        t.join().unwrap();
    }
    assert!(
        hb < Duration::from_millis(600),
        "a priority-class call must not wait out the whole ~1 s flood ({hb:?})"
    );
    println!("  heartbeat answered in {hb:.1?} while 20 bulk transfers were queued");
    client.shutdown();
    server.stop();
}

fn main() {
    parity();
    elasticity();
    priority();
    println!("mn_drill: all assertions held");
}
