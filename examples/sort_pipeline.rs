//! MapReduce example: the paper's RandomWriter → Sort pipeline on a
//! simulated cluster, run under default Hadoop RPC and under RPCoIB,
//! with output validation.
//!
//! ```sh
//! cargo run --release --example sort_pipeline
//! ```

use std::time::{Duration, Instant};

use rpcoib_suite::mini_mapred::jobs::randomwriter;
use rpcoib_suite::mini_mapred::record::read_all;
use rpcoib_suite::mini_mapred::{JobConf, JobKind, MiniMr, MrConfig};
use rpcoib_suite::simnet::model;

fn run(name: &str, cfg: MrConfig) {
    let mut cfg = cfg;
    cfg.hdfs.block_size = 256 * 1024;
    let mr = MiniMr::start(model::IPOIB_QDR, 4, cfg).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    // Generate random records: 6 maps x 256 KB.
    let start = Instant::now();
    jobs.run(
        &JobConf {
            name: "randomwriter".into(),
            kind: JobKind::RandomWriter,
            input: Vec::new(),
            output: "/rw".into(),
            n_reduces: 0,
            n_maps: 6,
            params: vec![(randomwriter::BYTES_PER_MAP.into(), (256 * 1024).to_string())],
        },
        Duration::from_secs(300),
    )
    .unwrap();
    let rw = start.elapsed();

    // Sort them with 4 reduces (range-partitioned -> globally sorted).
    let input: Vec<String> = dfs
        .list("/rw")
        .unwrap()
        .iter()
        .map(|s| s.path.clone())
        .collect();
    let start = Instant::now();
    jobs.run(
        &JobConf {
            name: "sort".into(),
            kind: JobKind::Sort,
            input,
            output: "/sorted".into(),
            n_reduces: 4,
            n_maps: 0,
            params: Vec::new(),
        },
        Duration::from_secs(300),
    )
    .unwrap();
    let sort = start.elapsed();

    // Validate global order across concatenated reduce outputs.
    let mut all = Vec::new();
    for part in dfs.list("/sorted").unwrap() {
        all.extend(read_all(&dfs.read_file(&part.path).unwrap()).unwrap());
    }
    assert!(
        all.windows(2).all(|w| w[0].0 <= w[1].0),
        "output must be globally sorted"
    );
    println!(
        "{name:<22} randomwriter {rw:>7.2?}   sort {sort:>7.2?}   records {}",
        all.len()
    );
    mr.stop();
}

fn main() {
    println!("RandomWriter -> Sort on 4 workers (8 map / 4 reduce slots each):\n");
    run("Hadoop RPC / IPoIB", MrConfig::socket());
    run("RPCoIB", MrConfig::rpc_ib());
    println!("\nthe Sort gains more than RandomWriter: its reduce phase is RPC-intensive");
    println!("(getMapCompletionEvents, commitPending, canCommit, HDFS output metadata).");
}
