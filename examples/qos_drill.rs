//! QoS drill: drive the multi-tenant admission plane — a per-tenant
//! quota bouncing a flooder while a light tenant keeps getting served,
//! deadline propagation shedding queued work the caller has already
//! given up on, and the per-tenant counters that attribute both.
//!
//! ```sh
//! cargo run --release --example qos_drill
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rpcoib_suite::rpcoib::{
    Client, RetryPolicy, RpcConfig, RpcError, RpcService, Server, ServiceRegistry,
};
use rpcoib_suite::simnet::{model, Fabric, SimAddr};
use rpcoib_suite::wire::{DataInput, LongWritable, Writable};

/// `incr` mutates (so at-most-once is auditable), `slow` burns handler
/// time without mutating.
struct Counter {
    applied: Arc<AtomicU64>,
    delay: Duration,
}

impl RpcService for Counter {
    fn protocol(&self) -> &'static str {
        "drill.Counter"
    }
    fn call(
        &self,
        method: &str,
        _param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "incr" => {
                let n = self.applied.fetch_add(1, Ordering::AcqRel) + 1;
                Ok(Box::new(LongWritable(n as i64)))
            }
            "slow" => {
                std::thread::sleep(self.delay);
                Ok(Box::new(LongWritable(0)))
            }
            other => Err(format!("no such method {other}")),
        }
    }
}

fn start_server(fabric: &Fabric, cfg: &RpcConfig, delay: Duration) -> (Server, Arc<AtomicU64>) {
    let applied = Arc::new(AtomicU64::new(0));
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(Counter {
        applied: Arc::clone(&applied),
        delay,
    }));
    let server = Server::start(fabric, fabric.add_node(), 8020, cfg.clone(), registry).unwrap();
    (server, applied)
}

fn call(client: &Client, addr: SimAddr, method: &str) -> Result<LongWritable, RpcError> {
    client.call(addr, "drill.Counter", method, &LongWritable(1))
}

fn main() {
    let fabric = Fabric::new(model::IB_QDR_VERBS);

    println!("== tenant quota: the flooder bounces, the light tenant is served ==");
    let cfg = RpcConfig {
        handlers: 1,
        call_queue_len: 16,
        tenant_quota: 2,
        call_timeout: Duration::from_secs(5),
        retry: RetryPolicy::none(),
        ..RpcConfig::rpcoib()
    };
    let (server, _applied) = start_server(&fabric, &cfg, Duration::from_millis(300));
    let addr = server.addr();

    let flooder = Arc::new(Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap());
    let light = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    let workers: Vec<_> = (0..5)
        .map(|_| {
            let f = Arc::clone(&flooder);
            std::thread::spawn(move || call(&f, addr, "slow"))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50)); // let the flood queue up
    let t0 = Instant::now();
    call(&light, addr, "incr").expect("light tenant must be served under flood");
    let light_latency = t0.elapsed();

    let (mut ok, mut busy) = (0u64, 0u64);
    for w in workers {
        match w.join().unwrap() {
            Ok(_) => ok += 1,
            Err(RpcError::ServerBusy) => busy += 1,
            Err(e) => panic!("unexpected flooder error: {e}"),
        }
    }
    assert!(busy >= 1, "a 5-deep flood over quota 2 must see BUSY");
    let tenants = server.metrics_snapshot().tenants;
    let flood_row = tenants
        .iter()
        .find(|t| t.client_id == flooder.client_id())
        .expect("flooder must have a tenant row");
    assert_eq!(flood_row.busy_rejections, busy);
    assert!(!tenants
        .iter()
        .any(|t| t.client_id == light.client_id() && t.busy_rejections > 0));
    println!(
        "  flooder (id {:#x}): {ok} served, {busy} busy-rejected",
        flooder.client_id()
    );
    println!(
        "  light   (id {:#x}): served in {light_latency:.2?}, 0 rejections",
        light.client_id()
    );

    println!("== deadline shedding: expired queued work answers EXPIRED, never runs ==");
    let cfg = RpcConfig {
        handlers: 1,
        call_timeout: Duration::from_millis(100),
        retry: RetryPolicy::exponential(10, Duration::from_millis(10)),
        ..RpcConfig::rpcoib()
    };
    let (server, applied) = start_server(&fabric, &cfg, Duration::from_millis(500));
    let addr = server.addr();
    let blocker = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    let victim = Client::new(&fabric, fabric.add_node(), cfg.clone()).unwrap();
    let block = std::thread::spawn(move || {
        let r = call(&blocker, addr, "slow");
        drop(blocker);
        r
    });
    std::thread::sleep(Duration::from_millis(30)); // blocker occupies the one handler
    let err = call(&victim, addr, "incr").expect_err("queued past its budget");
    assert!(matches!(err, RpcError::DeadlineExpired), "got {err}");
    assert!(!err.is_retryable());
    block.join().unwrap().expect("blocker finishes normally");
    assert_eq!(
        applied.load(Ordering::Acquire),
        0,
        "shed call must not execute"
    );
    let sheds = server.metrics_snapshot().counters.deadline_sheds;
    assert!(sheds >= 1);
    println!("  victim: {err} (non-retryable), incr never applied, {sheds} shed(s) counted");

    println!("\nqos drill complete");
}
