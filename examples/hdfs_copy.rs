//! HDFS example: boot a mini-HDFS, write a file through the 3-replica
//! pipeline, read it back, survive a DataNode failure — on both the
//! socket data path and the RDMA ("HDFSoIB") data path.
//!
//! ```sh
//! cargo run --release --example hdfs_copy
//! ```

use std::time::Instant;

use rpcoib_suite::mini_hdfs::{HdfsConfig, MiniDfs};
use rpcoib_suite::simnet::model;

fn run(name: &str, cfg: HdfsConfig) {
    let cfg = HdfsConfig {
        block_size: 512 * 1024,
        ..cfg
    };
    let dfs = MiniDfs::start(model::IPOIB_QDR, 4, cfg).unwrap();
    let client = dfs.client().unwrap();

    // 2 MB file -> 4 blocks, 3 replicas each.
    let data: Vec<u8> = (0..2 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
    client.mkdirs("/demo").unwrap();

    let start = Instant::now();
    client.write_file("/demo/blob", &data).unwrap();
    let write = start.elapsed();

    let start = Instant::now();
    let back = client.read_file("/demo/blob").unwrap();
    let read = start.elapsed();
    assert_eq!(back, data);

    let located = client.get_block_locations("/demo/blob").unwrap();
    println!(
        "{name:<24} write {write:>8.1?}  read {read:>8.1?}  blocks {}  replicas/block {}",
        located.len(),
        located[0].targets.len()
    );

    // Kill the first replica holder; the read must fall back.
    let victim = located[0].targets[0].id;
    let idx = dfs
        .datanodes()
        .iter()
        .position(|dn| dn.id() == victim)
        .unwrap();
    dfs.cluster().kill_host(dfs.datanode_host(idx));
    let survived = client.read_file("/demo/blob").unwrap();
    assert_eq!(survived, data);
    println!("{name:<24} read OK after killing datanode {victim}");
    dfs.stop();
}

fn main() {
    println!("mini-HDFS write/read with replica-failure recovery:\n");
    run("socket data path", HdfsConfig::socket());
    run("HDFSoIB (RDMA data)", HdfsConfig::all_ib());
}
