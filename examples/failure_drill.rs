//! Failure drill: exercise every recovery path in one run —
//! HDFS replica failover + NameNode-driven re-replication, a network
//! partition routed around by pipeline exclusion, and an HBase region
//! server crash recovered via WAL replay from HDFS.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use std::time::{Duration, Instant};

use rpcoib_suite::mini_hbase::ycsb::key_of;
use rpcoib_suite::mini_hbase::{HBaseConfig, MiniHbase};
use rpcoib_suite::mini_hdfs::{HdfsConfig, MiniDfs};
use rpcoib_suite::simnet::{model, Host};

fn hdfs_drill() {
    println!("== HDFS drill ==");
    let cfg = HdfsConfig {
        block_size: 128 * 1024,
        dn_timeout: Duration::from_millis(900),
        ..HdfsConfig::socket()
    };
    let dfs = MiniDfs::start(model::IPOIB_QDR, 5, cfg.clone()).unwrap();
    let client = dfs.client().unwrap();
    let data: Vec<u8> = (0..300 * 1024u32).map(|i| (i % 251) as u8).collect();
    client.mkdirs("/drill").unwrap();
    client.write_file("/drill/blob", &data).unwrap();
    println!(
        "  wrote {} KB across {} blocks, replication 3",
        data.len() / 1024,
        3
    );

    // 1. Kill a replica holder: reads fail over, NameNode re-replicates.
    let victim = client.get_block_locations("/drill/blob").unwrap()[0].targets[0].id;
    let idx = dfs
        .datanodes()
        .iter()
        .position(|dn| dn.id() == victim)
        .unwrap();
    dfs.cluster().kill_host(dfs.datanode_host(idx));
    println!("  killed datanode {victim} (host of first replica)");
    assert_eq!(client.read_file("/drill/blob").unwrap(), data);
    println!("  read OK via surviving replicas");

    // Wait for the NameNode to detect the death (heartbeat timeout)...
    let start = Instant::now();
    while dfs.namenode().live_datanode_count() != 4 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "death not detected"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let detected = start.elapsed();
    // ...then for re-replication to restore full redundancy.
    while dfs.namenode().under_replicated_count() > 0 {
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "re-replication stuck"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    println!(
        "  death detected in {detected:?}; re-replication restored full redundancy in {:?}",
        start.elapsed()
    );

    // 2. Partition the client from another datanode: writes route around.
    let dn_node = dfs.cluster().eth_node(dfs.datanode_host(1));
    let client_node = dfs.cluster().eth_node(Host(1));
    dfs.cluster().eth().partition(client_node, dn_node);
    println!(
        "  partitioned client <-> datanode {}",
        dfs.datanodes()[1].id()
    );
    client
        .write_file("/drill/through-partition", &data)
        .unwrap();
    assert_eq!(client.read_file("/drill/through-partition").unwrap(), data);
    println!("  write + read OK through pipeline exclusion");
    dfs.cluster().eth().heal(client_node, dn_node);
    dfs.stop();
}

fn hbase_drill() {
    println!("== HBase drill ==");
    let cfg = HBaseConfig {
        memstore_flush_bytes: 16 * 1024,
        wal_roll_bytes: 2 * 1024,
        ..HBaseConfig::socket()
    };
    let hbase = MiniHbase::start(model::IPOIB_QDR, 3, cfg).unwrap();
    let client = hbase.client().unwrap();
    for id in 0..150usize {
        client
            .put(&key_of(id), format!("row-{id}").as_bytes())
            .unwrap();
    }
    // Durability covers what reached HDFS: force the WAL tails out with
    // filler traffic (a crash loses only the unrolled in-memory tail,
    // exactly like HBase).
    for id in 150..190usize {
        client.put(&key_of(id), &[0u8; 256]).unwrap();
    }
    println!("  loaded 150 rows (+ WAL-roll filler) over 3 region servers");

    let victim = &hbase.regionservers()[0];
    let buckets = victim.hosted_buckets();
    victim.stop();
    println!(
        "  crashed region server {} (buckets {buckets:?})",
        victim.id()
    );

    let start = Instant::now();
    for id in 0..150usize {
        let got = client.get(&key_of(id)).unwrap();
        assert_eq!(
            got.as_deref(),
            Some(format!("row-{id}").as_bytes()),
            "row {id}"
        );
    }
    println!(
        "  all 150 rows served after WAL replay + store-file reload ({:?} incl. reassignment)",
        start.elapsed()
    );
    client.shutdown();
    hbase.stop();
}

fn main() {
    hdfs_drill();
    hbase_drill();
    println!("\nall recovery paths exercised successfully");
}
