//! Iterative MapReduce: k-means clustering driven to convergence, one
//! job per Lloyd iteration, comparing the per-iteration cost of default
//! Hadoop RPC vs RPCoIB. Iterative workloads re-pay the whole job-setup
//! RPC cost (heartbeats, getTask, statusUpdate, output commit) every
//! iteration, which is exactly where a faster RPC layer compounds.
//!
//! ```sh
//! cargo run --release --example kmeans_clustering
//! ```

use std::time::Instant;

use rpcoib_suite::mini_mapred::jobs::kmeans;
use rpcoib_suite::mini_mapred::{MiniMr, MrConfig};
use rpcoib_suite::simnet::model;

fn run(name: &str, cfg: MrConfig) {
    let mut cfg = cfg;
    cfg.hdfs.block_size = 256 * 1024;
    let mr = MiniMr::start(model::IPOIB_QDR, 3, cfg).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    let (k, dim) = (4, 3);
    let (input, true_centers) =
        kmeans::generate_input(&dfs, "/points", 4, 120, k, dim, 99).unwrap();

    let start = Instant::now();
    let result = kmeans::drive(&jobs, &dfs, input, "/km", k, dim, 15, 1e-4, 5).unwrap();
    let elapsed = start.elapsed();

    // Quality: worst distance from a true center to its nearest centroid.
    let worst = true_centers
        .iter()
        .map(|center| {
            result
                .centroids
                .iter()
                .map(|c| {
                    c.iter()
                        .zip(center)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0f64, f64::max);

    println!(
        "{name:<22} {} iterations in {elapsed:>7.2?} ({:.2?}/iter)  converged={}  worst-center-error={worst:.4}",
        result.iterations,
        elapsed / result.iterations as u32,
        result.converged,
    );
    mr.stop();
}

fn main() {
    println!("k-means (4 clusters, 480 points, 3 workers), one MapReduce job per iteration:\n");
    run("Hadoop RPC / IPoIB", MrConfig::socket());
    run("RPCoIB", MrConfig::rpc_ib());
}
