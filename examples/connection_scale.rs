//! Connection-scale drill: drive the event-driven readiness layer —
//! park thousands of idle connections and show the active caller's
//! latency doesn't move, storm the accept path past `max_connections`
//! and watch the retryable busy cap + rejection counter, then drop the
//! population and verify the server reaps back to zero.
//!
//! ```sh
//! cargo run --release --example connection_scale
//! ```

use std::time::{Duration, Instant};

use rpcoib_suite::rpcoib::handshake::client_hello;
use rpcoib_suite::rpcoib::{Client, RpcConfig, RpcError, RpcService, Server, ServiceRegistry};
use rpcoib_suite::simnet::{model, Fabric, SimStream};
use rpcoib_suite::wire::{DataInput, IntWritable, Writable};
use std::sync::Arc;

struct Echo;

impl RpcService for Echo {
    fn protocol(&self) -> &'static str {
        "drill.Echo"
    }
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let mut v = IntWritable::default();
        v.read_fields(param).map_err(|e| e.to_string())?;
        match method {
            "echo" => Ok(Box::new(v)),
            other => Err(format!("no such method {other}")),
        }
    }
}

fn start(fabric: &Fabric, node: rpcoib_suite::simnet::NodeId, cfg: &RpcConfig) -> Server {
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(Echo));
    Server::start(fabric, node, 8020, cfg.clone(), registry).unwrap()
}

/// Median modeled-ns per call for one short burst from a fresh client.
fn median_call_ns(fabric: &Fabric, server: &Server, cfg: &RpcConfig) -> u64 {
    let node = fabric.add_node();
    let client = Client::new(fabric, node, cfg.clone()).unwrap();
    let mut samples = Vec::with_capacity(32);
    for i in 0..32 {
        let before = fabric.modeled_ns(node);
        let echoed: IntWritable = client
            .call(server.addr(), "drill.Echo", "echo", &IntWritable(i))
            .unwrap();
        assert_eq!(echoed.0, i);
        samples.push(fabric.modeled_ns(node) - before);
    }
    client.shutdown();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    rpcoib_suite::simnet::set_fast_forward(true);

    // ------------------------------------------------------------------
    println!("== idle connections are free (event-driven readiness) ==");
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let idle_node = fabric.add_node();
    let cfg = RpcConfig::socket();
    let server = start(&fabric, server_node, &cfg);

    let baseline = median_call_ns(&fabric, &server, &cfg);

    const IDLE: usize = 2_000;
    let parked: Vec<SimStream> = (0..IDLE)
        .map(|_| {
            let s = SimStream::connect(&fabric, idle_node, server.addr()).unwrap();
            client_hello(&s, 0, 3).unwrap();
            s
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.metrics_snapshot().connections < IDLE {
        assert!(Instant::now() < deadline, "idle conns never registered");
        std::thread::sleep(Duration::from_millis(5));
    }
    // A quiet server with 2 000 parked conns must charge itself nothing:
    // the readers block on their ready queues instead of sweeping.
    let quiet_before = fabric.modeled_ns(server_node);
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        fabric.modeled_ns(server_node) - quiet_before,
        0,
        "idle population charged the server ledger"
    );
    let loaded = median_call_ns(&fabric, &server, &cfg);
    println!(
        "  p50/call: {:.1}us with 0 idle conns, {:.1}us with {IDLE} parked (identical: {})",
        baseline as f64 / 1e3,
        loaded as f64 / 1e3,
        baseline == loaded,
    );
    assert_eq!(baseline, loaded, "idle conns must not move active p50");
    let snap = server.metrics_snapshot();
    println!(
        "  gauges: connections={} buffered_bytes={}",
        snap.connections, snap.conn_buffered_bytes
    );
    assert_eq!(snap.conn_buffered_bytes, 0);
    drop(parked);
    server.stop();

    // ------------------------------------------------------------------
    println!("== max_connections answers connect storms with retryable busy ==");
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let peer_node = fabric.add_node();
    let mut capped = RpcConfig::socket();
    capped.max_connections = 4;
    let server = start(&fabric, server_node, &capped);

    let held: Vec<SimStream> = (0..4)
        .map(|_| {
            let s = SimStream::connect(&fabric, peer_node, server.addr()).unwrap();
            client_hello(&s, 0, 3).unwrap();
            s
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.connection_count() < 4 {
        assert!(Instant::now() < deadline, "fill never registered");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut busy = 0;
    for _ in 0..6 {
        let s = SimStream::connect(&fabric, peer_node, server.addr()).unwrap();
        match client_hello(&s, 0, 3) {
            Err(e @ RpcError::ServerBusy) => {
                assert!(e.is_retryable());
                busy += 1;
            }
            other => panic!("expected ServerBusy past the cap, got {other:?}"),
        }
    }
    let rejections = server.metrics_snapshot().counters.accept_rejections;
    println!("  cap 4: 6 storm connects -> {busy} retryable busy, accept_rejections={rejections}");
    assert_eq!(busy, 6);
    assert!(rejections >= 6);

    // Freed capacity admits again: drop the holders, wait for the reap,
    // then a real client gets in.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.connection_count() > 0 {
        assert!(Instant::now() < deadline, "released conns never reaped");
        std::thread::sleep(Duration::from_millis(5));
    }
    let p50 = median_call_ns(&fabric, &server, &capped);
    println!(
        "  after release: connections reaped to 0, fresh client served ({:.1}us/call)",
        p50 as f64 / 1e3
    );
    server.stop();

    println!();
    println!("connection scale drill complete");
}
