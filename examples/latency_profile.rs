//! Latency profile: where does a call's time go? Drives an echo service
//! over both transports and prints the per-phase latency histograms —
//! serialize / wire / server queue / handler / deserialize — that both
//! engines record for every `<protocol, method>`, plus the RDMA buffer
//! pool's history counters from the same snapshot.
//!
//! ```sh
//! cargo run --release --example latency_profile
//! ```

use std::sync::Arc;

use rpcoib_suite::rpcoib::{
    Client, MetricsSnapshot, Phase, RpcConfig, RpcService, Server, ServiceRegistry,
};
use rpcoib_suite::simnet::{model, Fabric, NetworkModel};
use rpcoib_suite::wire::{BytesWritable, DataInput, Writable};

struct EchoService;

impl RpcService for EchoService {
    fn protocol(&self) -> &'static str {
        "demo.EchoProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "echo" => {
                let mut payload = BytesWritable::default();
                payload.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(payload))
            }
            other => Err(format!("unknown method {other}")),
        }
    }
}

fn phase_line(snap: &MetricsSnapshot, method: &str, phase: Phase) -> String {
    let hist = snap
        .phases
        .iter()
        .find(|((_, m), _)| m == method)
        .map(|(_, ps)| ps.get(phase));
    match hist {
        Some(h) if h.count > 0 => format!(
            "{:>12?}  n={:<4} p50 {:>8} ns   p99 {:>8} ns   max {:>8} ns",
            phase,
            h.count,
            h.quantile_ns(0.50),
            h.quantile_ns(0.99),
            h.max_ns
        ),
        _ => format!("{phase:>12?}  (not recorded on this side)"),
    }
}

fn profile(name: &str, net: NetworkModel, cfg: RpcConfig) {
    let fabric = Fabric::new(net);
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    let server = Server::start(&fabric, fabric.add_node(), 8020, cfg.clone(), registry).unwrap();
    let client = Client::new(&fabric, fabric.add_node(), cfg).unwrap();

    for _ in 0..200 {
        let _: BytesWritable = client
            .call(
                server.addr(),
                "demo.EchoProtocol",
                "echo",
                &BytesWritable(vec![0xAB; 4096]),
            )
            .unwrap();
    }

    let cli = client.metrics_snapshot();
    let srv = server.metrics_snapshot();

    println!("== {name}: demo.EchoProtocol/echo, 200 calls of 4 KB ==");
    println!("client:");
    for phase in [Phase::Serialize, Phase::Wire, Phase::Deserialize] {
        println!("  {}", phase_line(&cli, "echo", phase));
    }
    println!("server:");
    for phase in [Phase::ServerQueue, Phase::Handler] {
        println!("  {}", phase_line(&srv, "echo", phase));
    }
    for phase in [Phase::Serialize, Phase::Wire] {
        println!("  {} (response)", phase_line(&srv, "echo#resp", phase));
    }
    if let Some(pool) = cli.pool {
        let lookups = pool.history_hits + pool.grows + pool.shrinks + pool.cold;
        println!(
            "client pool: {} lookups, {:.1}% history hits, {} grows, {} shrinks, {} cold",
            lookups,
            100.0 * pool.history_hits as f64 / lookups.max(1) as f64,
            pool.grows,
            pool.shrinks,
            pool.cold
        );
    } else {
        println!("client pool: none (socket transport serializes into plain heap buffers)");
    }
    println!();

    // The snapshot is the contract the bench harness and tests build on:
    // every pipeline phase of a completed call must have been observed.
    for (snap, method, phases) in [
        (
            &cli,
            "echo",
            &[Phase::Serialize, Phase::Wire, Phase::Deserialize][..],
        ),
        (&srv, "echo", &[Phase::ServerQueue, Phase::Handler][..]),
        (&srv, "echo#resp", &[Phase::Serialize, Phase::Wire][..]),
    ] {
        for &phase in phases {
            let count = snap
                .phases
                .iter()
                .find(|((_, m), _)| m == method)
                .map(|(_, ps)| ps.get(phase).count)
                .unwrap_or(0);
            assert_eq!(count, 200, "{name}: {method} {phase:?} missing samples");
        }
    }

    client.shutdown();
    server.stop();
}

fn main() {
    profile("Hadoop RPC / IPoIB", model::IPOIB_QDR, RpcConfig::socket());
    profile(
        "RPCoIB / IB verbs",
        model::IB_QDR_VERBS,
        RpcConfig::rpcoib(),
    );
}
