//! HBase example: a key-value store with YCSB-style load + mixed
//! workload, showing where Put throughput comes from (WAL + memstore
//! flushes into HDFS) and what the RDMA operation plane changes.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use rpcoib_suite::mini_hbase::ycsb::{self, key_of, Workload};
use rpcoib_suite::mini_hbase::{HBaseConfig, MiniHbase};
use rpcoib_suite::simnet::model;

fn run(name: &str, cfg: HBaseConfig) {
    let cfg = HBaseConfig {
        memstore_flush_bytes: 32 * 1024,
        wal_roll_bytes: 16 * 1024,
        ..cfg
    };
    let hbase = MiniHbase::start(model::IPOIB_QDR, 3, cfg).unwrap();
    let client = hbase.client().unwrap();

    let workload = Workload {
        value_size: 512,
        ..Workload::mixed(400, 600)
    };
    ycsb::load(&client, &workload).unwrap();
    let report = ycsb::run(&client, &workload).unwrap();

    // Region servers persisted WAL segments + store files into HDFS.
    let dfs = hbase.dfs().client().unwrap();
    let mut hdfs_files = dfs.list("/hbase/wal").unwrap().len();
    for bucket in 0..hbase.regionservers().len() {
        hdfs_files += dfs
            .list(&format!("/hbase/region{bucket}"))
            .unwrap_or_default()
            .len();
    }

    println!(
        "{name:<24} {:.2} Kops/s   p50 {:?}   p99 {:?}   ({} gets / {} puts, {hdfs_files} HDFS files)",
        report.kops_per_sec(),
        report.latency_at(0.5),
        report.latency_at(0.99),
        report.gets,
        report.puts,
    );

    // Point reads still come back correctly after all the flushing.
    assert!(client.get(&key_of(0)).unwrap().is_some());
    client.shutdown();
    hbase.stop();
}

fn main() {
    println!("mini-HBase YCSB 50/50 mix on 3 region servers:\n");
    run("sockets everywhere", HBaseConfig::socket());
    run("HBaseoIB (RDMA ops)", HBaseConfig::ops_ib());
    run("HBaseoIB + RPCoIB", HBaseConfig::all_ib());
}
