//! Retry drill: drive the fault-injection + client-resilience surface —
//! injected connect refusals survived by backoff, a black-holed link
//! bounded by the per-call deadline, connection churn draining on the
//! server, and the resilience counters that make it all observable.
//!
//! ```sh
//! cargo run --release --example retry_drill
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rpcoib_suite::rpcoib::{Client, RetryPolicy, RpcConfig, RpcService, Server, ServiceRegistry};
use rpcoib_suite::simnet::{model, Fabric, FaultSpec};
use rpcoib_suite::wire::{BytesWritable, DataInput, Writable};

struct Echo;

impl RpcService for Echo {
    fn protocol(&self) -> &'static str {
        "drill.Echo"
    }
    fn call(
        &self,
        _method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let mut b = BytesWritable::default();
        b.read_fields(param).map_err(|e| e.to_string())?;
        Ok(Box::new(b))
    }
}

fn main() {
    let fabric = Fabric::new(model::IPOIB_QDR);
    let server_node = fabric.add_node();
    let cfg = RpcConfig::socket();
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(Echo));
    let server = Server::start(&fabric, server_node, 8020, cfg.clone(), registry).unwrap();
    let ping = |client: &Client| {
        client.call::<_, BytesWritable>(
            server.addr(),
            "drill.Echo",
            "echo",
            &BytesWritable(vec![7; 32]),
        )
    };

    println!("== injected connect refusals ==");
    let none = Client::new(
        &fabric,
        fabric.add_node(),
        RpcConfig {
            retry: RetryPolicy::none(),
            ..cfg.clone()
        },
    )
    .unwrap();
    fabric.fail_next_connects(server.addr(), 1);
    println!(
        "  RetryPolicy::none  -> {:?}",
        ping(&none).map(|b| b.0.len())
    );
    println!("  counters: {:?}", none.metrics().counters());
    none.shutdown();

    let retrying = Client::new(
        &fabric,
        fabric.add_node(),
        RpcConfig {
            retry: RetryPolicy::exponential(3, Duration::from_millis(5)),
            ..cfg.clone()
        },
    )
    .unwrap();
    fabric.fail_next_connects(server.addr(), 2);
    println!(
        "  exponential(3,5ms) -> {:?}",
        ping(&retrying).map(|b| b.0.len())
    );
    println!("  counters: {:?}", retrying.metrics().counters());

    println!("== deadline on a black-holed link ==");
    let deadlined = Client::new(
        &fabric,
        fabric.add_node(),
        RpcConfig {
            call_timeout: Duration::from_secs(10),
            retry: RetryPolicy::exponential(50, Duration::from_millis(10))
                .with_deadline(Duration::from_millis(400)),
            ..cfg.clone()
        },
    )
    .unwrap();
    ping(&deadlined).unwrap();
    fabric.set_link_fault(deadlined.node(), server_node, FaultSpec::drop_all());
    let start = Instant::now();
    let err = ping(&deadlined).unwrap_err();
    println!(
        "  call_timeout=10s, deadline=400ms -> {err} after {:?}",
        start.elapsed()
    );
    println!("  counters: {:?}", deadlined.metrics().counters());
    fabric.clear_link_fault(deadlined.node(), server_node);
    deadlined.shutdown();

    println!("== connection churn ==");
    let churn_node = fabric.add_node();
    for _ in 0..25 {
        let c = Client::new(&fabric, churn_node, cfg.clone()).unwrap();
        ping(&c).unwrap();
        c.shutdown();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.connection_count() > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "  after 25 cycles: live={} lifetime={}",
        server.connection_count(),
        server.lifetime_connection_count()
    );

    println!("== misconfiguration is rejected up front ==");
    let bad = Client::new(
        &fabric,
        fabric.add_node(),
        RpcConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..cfg.clone()
        },
    );
    println!("  max_attempts=0 -> {:?}", bad.err().map(|e| e.to_string()));

    retrying.shutdown();
    server.stop();
    println!("\nretry drill complete");
}
