//! Bulk drill: drive the one-sided large-frame data plane end to end.
//!
//! ```sh
//! cargo run --release --example bulk_drill
//! ```
//!
//! A blob service echoes multi-hundred-KiB payloads, so every call
//! crosses the RDMA crossover in both directions: the request rides the
//! client's slot ring into the server's large region, the response rides
//! back the other way. The drill checks the two properties the design
//! promises for lone transfers:
//!
//! * **slot-count parity** — a transfer with nothing to pipeline against
//!   costs exactly the same modeled time on a one-deep ring
//!   (`large_slots = 1`, the legacy credit gate) as on a multi-slot
//!   ring: the ring only changes what *concurrent* frames may do;
//! * **zero steady-state registrations** — after warmup, large calls
//!   are served entirely from pooled registered segments: the fabric's
//!   memory-registration counter must not move.

use std::sync::Arc;

use rpcoib_suite::rpcoib::{Client, RpcConfig, RpcService, Server, ServiceRegistry};
use rpcoib_suite::simnet::{model, Fabric};
use rpcoib_suite::wire::{BytesWritable, DataInput, Writable};

/// Echoes the payload back, byte for byte.
struct BlobService;

impl RpcService for BlobService {
    fn protocol(&self) -> &'static str {
        "demo.BlobProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "echo" => {
                let mut blob = BytesWritable::default();
                blob.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(blob))
            }
            other => Err(format!("unknown method {other}")),
        }
    }
}

/// Runs `calls` lone echo calls of `payload` bytes on a ring with
/// `slots` slots; returns (modeled ns per call, registrations during
/// the measured window).
fn drill(slots: usize, payload: usize, calls: u32) -> (u64, u64) {
    let cfg = RpcConfig {
        large_slots: slots,
        ..RpcConfig::rpcoib()
    };
    let fabric = Fabric::new(model::IB_QDR_VERBS);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();

    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(BlobService));
    let server = Server::start(&fabric, server_node, 8020, cfg.clone(), registry).unwrap();
    let client = Client::new(&fabric, client_node, cfg).unwrap();

    let blob = BytesWritable(vec![0xAB; payload]);
    // Warmup: bootstrap, size-history learning, and segment-pool fill —
    // all registrations must happen here.
    for _ in 0..4 {
        let echoed: BytesWritable = client
            .call(server.addr(), "demo.BlobProtocol", "echo", &blob)
            .unwrap();
        assert_eq!(echoed.0.len(), payload);
    }

    let (_, _, _, regs_before) = fabric.stats().snapshot();
    let start_ns = fabric.modeled_ns(client_node);
    for _ in 0..calls {
        let echoed: BytesWritable = client
            .call(server.addr(), "demo.BlobProtocol", "echo", &blob)
            .unwrap();
        assert_eq!(echoed.0.len(), payload);
    }
    let per_call = (fabric.modeled_ns(client_node) - start_ns) / u64::from(calls);
    let (_, _, _, regs_after) = fabric.stats().snapshot();

    client.shutdown();
    server.stop();
    (per_call, regs_after - regs_before)
}

fn main() {
    println!("lone large echoes through the bulk data plane:\n");
    println!(
        "{:>10}  {:>16}  {:>16}  {:>7}",
        "payload", "one-deep ring", "16-slot ring", "regs"
    );
    for &payload in &[65_536usize, 262_144, 1_048_576] {
        let (one_deep, regs_a) = drill(1, payload, 8);
        let (multi, regs_b) = drill(16, payload, 8);
        // Lone transfers never wait on ring credits, so slot count must
        // not change their modeled cost at all.
        assert_eq!(
            one_deep, multi,
            "lone-transfer cost must be slot-count invariant at {payload} B"
        );
        // Steady state registers nothing: segments come from the pool.
        assert_eq!(
            regs_a + regs_b,
            0,
            "steady-state large calls registered memory"
        );
        println!(
            "{:>9}K  {:>13.1}us  {:>13.1}us  {:>7}",
            payload / 1024,
            one_deep as f64 / 1000.0,
            multi as f64 / 1000.0,
            regs_a + regs_b,
        );
    }
    println!("\nlone-transfer parity holds (one-deep == multi-slot, to the ns)");
    println!("and the measured windows performed zero memory registrations —");
    println!("steady-state large calls gather straight from pooled segments.");
}
