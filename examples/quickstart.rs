//! Quickstart: define an RPC service, host it over both transports, and
//! compare a call's latency and buffer behaviour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Instant;

use rpcoib_suite::rpcoib::{Client, RpcConfig, RpcService, Server, ServiceRegistry};
use rpcoib_suite::simnet::{model, Fabric, NetworkModel};
use rpcoib_suite::wire::{DataInput, IntWritable, Text, Writable};

/// A toy metadata service, Hadoop-style: methods dispatched by name,
/// parameters and results are `Writable`s.
struct DirectoryService;

impl RpcService for DirectoryService {
    fn protocol(&self) -> &'static str {
        "demo.DirectoryProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            // lookup(path) -> uppercased path (stand-in for an inode).
            "lookup" => {
                let mut path = Text::default();
                path.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(Text(path.0.to_uppercase())))
            }
            // count(parts...) -> number of path components.
            "count" => {
                let mut path = Text::default();
                path.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(IntWritable(
                    path.0.split('/').filter(|p| !p.is_empty()).count() as i32,
                )))
            }
            other => Err(format!("unknown method {other}")),
        }
    }
}

fn demo(name: &str, net: NetworkModel, cfg: RpcConfig) {
    let fabric = Fabric::new(net);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();

    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(DirectoryService));
    let server = Server::start(&fabric, server_node, 8020, cfg.clone(), registry).unwrap();
    let client = Client::new(&fabric, client_node, cfg).unwrap();

    // Warm up (connection setup + buffer-size history learning).
    for _ in 0..20 {
        let _: Text = client
            .call(
                server.addr(),
                "demo.DirectoryProtocol",
                "lookup",
                &Text::from("/user/demo"),
            )
            .unwrap();
    }
    let start = Instant::now();
    let n = 200;
    for i in 0..n {
        let path = Text(format!("/user/demo/file-{i}"));
        let upper: Text = client
            .call(server.addr(), "demo.DirectoryProtocol", "lookup", &path)
            .unwrap();
        assert_eq!(upper.0, path.0.to_uppercase());
    }
    let per_call = start.elapsed() / n;
    let stats = client
        .metrics()
        .get("demo.DirectoryProtocol", "lookup")
        .unwrap();
    println!(
        "{name:<22} {per_call:>9.1?}/call   serialize {:.1}us   send {:.1}us   adjustments/call {:.2}",
        stats.avg_serialize_us(),
        stats.avg_send_us(),
        stats.avg_adjustments(),
    );
    client.shutdown();
    server.stop();
}

fn main() {
    println!("same service, two transports:\n");
    demo("Hadoop RPC / IPoIB", model::IPOIB_QDR, RpcConfig::socket());
    demo(
        "RPCoIB / IB verbs",
        model::IB_QDR_VERBS,
        RpcConfig::rpcoib(),
    );
    println!("\nRPCoIB serializes into pooled registered buffers (no per-call");
    println!("adjustments once the <protocol,method> size history is warm) and");
    println!("ships frames over verbs instead of the socket stack.");
}
