//! The DataNode: in-memory block store, streaming data-transfer service,
//! pipeline forwarding, heartbeats and block reports.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rpcoib::transport::rdma::RdmaConn;
use rpcoib::transport::socket::SocketConn;
use rpcoib::transport::Conn;
use rpcoib::{Client, RpcError, RpcResult};
use simnet::{SimAddr, SimListener};
use wire::{IntWritable, NullWritable};

use crate::config::{HdfsConfig, HostNet};
use crate::dataxfer::{
    recv_frame, send_ack, send_chunk, send_end, send_size, send_write_header, DataConnPool,
    DataFrame, ACK_CORRUPT, ACK_FAIL, ACK_OK, DATA_TIMEOUT,
};
use crate::types::{BlockReceivedArgs, BlockReportArgs, DatanodeInfo, DnCommand};
use crate::DATA_PORT;

const IDLE_SLICE: Duration = Duration::from_millis(100);
/// A full block report every this many heartbeats.
const REPORT_EVERY: u32 = 8;

/// A stored replica: the data plus the CRC-32 computed when the block was
/// received (the analogue of the `.meta` checksum file HDFS keeps next to
/// each block file). Reads and re-replication verify against it.
struct StoredBlock {
    data: Arc<Vec<u8>>,
    crc: u32,
}

impl StoredBlock {
    fn new(data: Vec<u8>) -> StoredBlock {
        let crc = wire::crc32(&data);
        StoredBlock {
            data: Arc::new(data),
            crc,
        }
    }

    fn is_intact(&self) -> bool {
        wire::crc32(&self.data) == self.crc
    }
}

struct DnState {
    cfg: HdfsConfig,
    id: u32,
    nn: SimAddr,
    rpc: Client,
    pool: DataConnPool,
    blocks: Mutex<HashMap<u64, StoredBlock>>,
    stop: AtomicBool,
}

/// A running DataNode.
pub struct DataNode {
    state: Arc<DnState>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl DataNode {
    /// Register with the NameNode at `nn` and start the data service on
    /// `(data_node, DATA_PORT)`.
    pub fn start(net: &HostNet, nn: SimAddr, cfg: HdfsConfig) -> RpcResult<DataNode> {
        let rpc = Client::new(&net.rpc_fabric, net.rpc_node, cfg.rpc.clone())?;
        let me = DatanodeInfo {
            id: 0,
            xfer_node: net.data_node.0,
            xfer_port: DATA_PORT,
        };
        let id: IntWritable = rpc.call(nn, "hdfs.DatanodeProtocol", "registerDatanode", &me)?;
        let pool = DataConnPool::new(&net.data_fabric, net.data_node, cfg.data_rpc_config())?;
        let listener = SimListener::bind(&net.data_fabric, SimAddr::new(net.data_node, DATA_PORT))?;

        let state = Arc::new(DnState {
            cfg,
            id: id.0 as u32,
            nn,
            rpc,
            pool,
            blocks: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dn{}-acceptor", state.id))
                    .spawn(move || acceptor_loop(state, listener))
                    .expect("spawn dn acceptor"),
            );
        }
        {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dn{}-heartbeat", state.id))
                    .spawn(move || heartbeat_loop(state))
                    .expect("spawn dn heartbeat"),
            );
        }
        Ok(DataNode {
            state,
            threads: Mutex::new(threads),
        })
    }

    /// The NameNode-assigned id of this DataNode.
    pub fn id(&self) -> u32 {
        self.state.id
    }

    /// Number of blocks stored locally.
    pub fn block_count(&self) -> usize {
        self.state.blocks.lock().len()
    }

    /// Total bytes stored locally.
    pub fn used_bytes(&self) -> usize {
        self.state
            .blocks
            .lock()
            .values()
            .map(|b| b.data.len())
            .sum()
    }

    /// Whether the local replica of `block` still matches its stored
    /// checksum (`None` if the block is not here) — what HDFS's block
    /// scanner reports per replica.
    pub fn block_is_intact(&self, block: u64) -> Option<bool> {
        self.state
            .blocks
            .lock()
            .get(&block)
            .map(StoredBlock::is_intact)
    }

    /// Failure injection: flip one byte of a stored replica without
    /// updating its stored checksum, so the next read or re-replication
    /// detects the corruption. Returns `false` if the block is not here.
    pub fn corrupt_block(&self, block: u64) -> bool {
        let mut blocks = self.state.blocks.lock();
        match blocks.get_mut(&block) {
            Some(stored) if !stored.data.is_empty() => {
                let mut data = stored.data.as_ref().clone();
                let mid = data.len() / 2;
                data[mid] ^= 0xFF;
                stored.data = Arc::new(data); // crc left stale on purpose
                true
            }
            _ => false,
        }
    }

    /// Stop all threads. Idempotent.
    pub fn stop(&self) {
        if self.state.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.state.rpc.shutdown();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for DataNode {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for DataNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataNode")
            .field("id", &self.state.id)
            .field("blocks", &self.block_count())
            .finish()
    }
}

fn heartbeat_loop(state: Arc<DnState>) {
    let mut ticks = 0u32;
    while !state.stop.load(Ordering::Acquire) {
        std::thread::sleep(state.cfg.heartbeat);
        let commands = state.rpc.call::<IntWritable, Vec<DnCommand>>(
            state.nn,
            "hdfs.DatanodeProtocol",
            "sendHeartbeat",
            &IntWritable(state.id as i32),
        );
        for command in commands.unwrap_or_default() {
            match command {
                DnCommand::Replicate { block, targets } => {
                    // Best-effort: a failed copy is retried by the
                    // NameNode once its pending entry expires.
                    let _ = replicate_block(&state, block, &targets);
                }
                DnCommand::None => {}
            }
        }
        ticks += 1;
        if ticks.is_multiple_of(REPORT_EVERY) {
            // Corrupt replicas are left out of the report, so the NameNode
            // sees them as missing and schedules re-replication from an
            // intact copy (HDFS reports them as corrupt; the effect — a
            // fresh replica elsewhere — is the same).
            let blocks: Vec<u64> = state
                .blocks
                .lock()
                .iter()
                .filter(|(_, stored)| stored.is_intact())
                .map(|(&id, _)| id)
                .collect();
            let _ = state.rpc.call::<BlockReportArgs, NullWritable>(
                state.nn,
                "hdfs.DatanodeProtocol",
                "blockReport",
                &BlockReportArgs {
                    dn_id: state.id,
                    blocks,
                },
            );
        }
    }
}

fn acceptor_loop(state: Arc<DnState>, listener: SimListener) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.stop.load(Ordering::Acquire) {
        match listener.try_accept() {
            Ok(Some((stream, _peer))) => {
                let state2 = Arc::clone(&state);
                let handle = std::thread::Builder::new()
                    .name(format!("dn{}-xceiver", state.id))
                    .spawn(move || {
                        let conn: Arc<dyn Conn> = if state2.cfg.data_rdma {
                            match state2.pool_ctx_bootstrap(&stream) {
                                Ok(c) => c,
                                Err(_) => return,
                            }
                        } else {
                            Arc::new(SocketConn::new(stream, 4096))
                        };
                        xceiver_loop(state2, conn);
                    })
                    .expect("spawn xceiver");
                handlers.push(handle);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(1)),
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

impl DnState {
    fn pool_ctx_bootstrap(&self, stream: &simnet::SimStream) -> RpcResult<Arc<dyn Conn>> {
        let ctx = self
            .pool
            .ib_context()
            .ok_or_else(|| RpcError::Config("data_rdma set but pool has no IB context".into()))?;
        Ok(Arc::new(RdmaConn::bootstrap(
            stream,
            ctx,
            &self.cfg.data_rpc_config(),
        )?))
    }
}

/// Per-connection server loop: one WRITE or READ operation at a time.
fn xceiver_loop(state: Arc<DnState>, conn: Arc<dyn Conn>) {
    while !state.stop.load(Ordering::Acquire) {
        let frame = match recv_frame(&conn, IDLE_SLICE) {
            Ok(f) => f,
            Err(RpcError::Timeout) => continue,
            Err(_) => return,
        };
        let result = match frame {
            DataFrame::Write { block, targets } => handle_write(&state, &conn, block, targets),
            DataFrame::Read { block, offset, len } => {
                handle_read(&state, &conn, block, offset, len)
            }
            _ => Err(RpcError::Protocol("unexpected leading frame".into())),
        };
        if result.is_err() {
            let _ = send_ack(&conn, ACK_FAIL);
            return; // drop a connection that broke mid-protocol
        }
    }
}

fn handle_write(
    state: &Arc<DnState>,
    upstream: &Arc<dyn Conn>,
    block: u64,
    targets: Vec<DatanodeInfo>,
) -> RpcResult<()> {
    // Open the downstream leg of the pipeline first.
    let mut downstream = match targets.split_first() {
        Some((next, rest)) => {
            let dc = state.pool.checkout(next.xfer_addr())?;
            send_write_header(dc.conn(), block, rest)?;
            Some(dc)
        }
        None => None,
    };

    let run = (|| -> RpcResult<usize> {
        let mut data = Vec::new();
        loop {
            match recv_frame(upstream, DATA_TIMEOUT)? {
                DataFrame::Data(chunk) => {
                    if let Some(d) = &downstream {
                        send_chunk(d.conn(), &chunk)?;
                    }
                    data.extend_from_slice(&chunk);
                }
                DataFrame::End => {
                    if let Some(d) = &downstream {
                        send_end(d.conn())?;
                    }
                    break;
                }
                _ => return Err(RpcError::Protocol("expected DATA or END".into())),
            }
        }
        let size = data.len();
        state.blocks.lock().insert(block, StoredBlock::new(data));
        // Report to the NameNode before acking (the paper: "once a block
        // is written to a DataNode, a block-report is sent").
        state.rpc.call::<BlockReceivedArgs, NullWritable>(
            state.nn,
            "hdfs.DatanodeProtocol",
            "blockReceived",
            &BlockReceivedArgs {
                dn_id: state.id,
                block,
                size: size as u64,
            },
        )?;
        // Wait for the downstream ack before acking upstream.
        if let Some(d) = &downstream {
            match recv_frame(d.conn(), DATA_TIMEOUT)? {
                DataFrame::Ack(ACK_OK) => {}
                DataFrame::Ack(_) => {
                    return Err(RpcError::Protocol("downstream replica failed".into()))
                }
                _ => return Err(RpcError::Protocol("expected ACK".into())),
            }
        }
        Ok(size)
    })();

    match run {
        Ok(_) => {
            send_ack(upstream, ACK_OK)?;
            Ok(())
        }
        Err(e) => {
            if let Some(d) = &mut downstream {
                d.poison();
            }
            Err(e)
        }
    }
}

/// Push a locally held block to `targets` through a write pipeline —
/// the DataNode side of NameNode-driven re-replication.
fn replicate_block(state: &Arc<DnState>, block: u64, targets: &[DatanodeInfo]) -> RpcResult<()> {
    let data = {
        let blocks = state.blocks.lock();
        let stored = blocks.get(&block).ok_or_else(|| {
            RpcError::Protocol(format!("asked to replicate unknown block {block}"))
        })?;
        // Never propagate a corrupt replica; the NameNode will retry the
        // replication from another source once its pending entry expires.
        if !stored.is_intact() {
            return Err(RpcError::Protocol(format!(
                "local replica of block {block} is corrupt"
            )));
        }
        Arc::clone(&stored.data)
    };
    let first = targets
        .first()
        .ok_or_else(|| RpcError::Protocol("replicate with no targets".into()))?;
    let mut conn = state.pool.checkout(first.xfer_addr())?;
    let run = (|| -> RpcResult<()> {
        send_write_header(conn.conn(), block, &targets[1..])?;
        for chunk in data.chunks(state.cfg.chunk) {
            send_chunk(conn.conn(), chunk)?;
        }
        send_end(conn.conn())?;
        match recv_frame(conn.conn(), DATA_TIMEOUT)? {
            DataFrame::Ack(ACK_OK) => Ok(()),
            _ => Err(RpcError::Protocol("replication pipeline failed".into())),
        }
    })();
    if run.is_err() {
        conn.poison();
    }
    run
}

fn handle_read(
    state: &Arc<DnState>,
    conn: &Arc<dyn Conn>,
    block: u64,
    offset: u64,
    len: u64,
) -> RpcResult<()> {
    let data = {
        let blocks = state.blocks.lock();
        match blocks.get(&block) {
            Some(stored) if stored.is_intact() => Arc::clone(&stored.data),
            Some(_) => {
                // Verified-on-read, like HDFS: a replica whose bytes no
                // longer match the stored checksum is never served; the
                // client fails over to another replica.
                drop(blocks);
                send_ack(conn, ACK_CORRUPT)?;
                return Ok(()); // connection stays usable
            }
            None => {
                drop(blocks);
                send_ack(conn, ACK_FAIL)?;
                return Ok(()); // connection stays usable
            }
        }
    };
    // Clamp the requested range to the block (len == u64::MAX reads to
    // the end; an offset past the end is an empty read, not an error).
    let start = (offset as usize).min(data.len());
    let end = match len {
        u64::MAX => data.len(),
        n => start.saturating_add(n as usize).min(data.len()),
    };
    let slice = &data[start..end];
    send_size(conn, slice.len() as u64)?;
    for chunk in slice.chunks(state.cfg.chunk) {
        send_chunk(conn, chunk)?;
    }
    send_end(conn)
}
