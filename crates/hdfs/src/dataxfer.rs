//! The DataNode data-transfer protocol and connection pooling.
//!
//! Block payloads do not travel over the RPC engine (exactly as in
//! Hadoop); they use a dedicated streaming protocol. Both the socket and
//! RDMA ("HDFSoIB") variants run over the message-oriented
//! [`rpcoib::transport::Conn`] interface, so the pipeline code is
//! transport-agnostic — chunks ride send/recv on the RDMA path.
//!
//! Frames (one `Conn` message each):
//!
//! * `WRITE` — `[op][block u64][vint n][targets…]`: open a write pipeline;
//!   the receiver forwards a `WRITE` with the remaining targets downstream;
//! * `DATA` — `[op][crc32 u32][len-prefixed bytes]`: one chunk, protected
//!   by a CRC-32 the receiver verifies (HDFS checksums every data chunk);
//! * `END` — `[op]`: end of block; receiver stores + reports, then waits
//!   for the downstream `ACK` before acking upstream;
//! * `ACK` — `[op][status u8]`;
//! * `READ` — `[op][block u64]`: fetch a block;
//! * `SIZE` — `[op][size u64]`: read response header, followed by `DATA`
//!   chunks and `END`.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rpcoib::transport::rdma::{IbContext, RdmaConn};
use rpcoib::transport::socket::SocketConn;
use rpcoib::transport::Conn;
use rpcoib::{RpcConfig, RpcError, RpcResult};
use simnet::{Fabric, NodeId, SimAddr, SimStream};
use wire::DataInput;

use crate::types::DatanodeInfo;

pub const OP_WRITE: u8 = 1;
pub const OP_DATA: u8 = 2;
pub const OP_END: u8 = 3;
pub const OP_ACK: u8 = 4;
pub const OP_READ: u8 = 5;
pub const OP_SIZE: u8 = 6;

/// Status byte carried by `ACK`.
pub const ACK_OK: u8 = 0;
pub const ACK_FAIL: u8 = 1;
/// The replica's stored data no longer matches its stored checksum (the
/// analogue of HDFS's `ChecksumException` on a corrupt replica).
pub const ACK_CORRUPT: u8 = 2;

/// Timeout for intra-pipeline waits (acks, next chunk).
pub const DATA_TIMEOUT: Duration = Duration::from_secs(20);

/// Pool of reusable data connections, keyed by destination. One checked
/// -out connection carries exactly one operation at a time (the protocol
/// is stateful), then returns for reuse — mirroring how HDFSoIB keeps
/// long-lived RDMA connections instead of paying setup per block.
pub struct DataConnPool {
    fabric: Fabric,
    local: NodeId,
    cfg: RpcConfig,
    ib: Option<IbContext>,
    idle: Mutex<HashMap<SimAddr, Vec<Arc<dyn Conn>>>>,
}

impl DataConnPool {
    /// Build a pool for one endpoint of the data plane. Opens the HCA when
    /// the data path is RDMA.
    pub fn new(fabric: &Fabric, local: NodeId, cfg: RpcConfig) -> RpcResult<DataConnPool> {
        let ib = if cfg.ib_enabled {
            Some(IbContext::new(fabric, local, &cfg)?)
        } else {
            None
        };
        Ok(DataConnPool {
            fabric: fabric.clone(),
            local,
            cfg,
            ib,
            idle: Mutex::new(HashMap::new()),
        })
    }

    /// Check out a connection to `addr`, reusing an idle one when possible.
    pub fn checkout(&self, addr: SimAddr) -> RpcResult<PooledConn<'_>> {
        if let Some(conn) = self.idle.lock().get_mut(&addr).and_then(Vec::pop) {
            return Ok(PooledConn {
                conn: Some(conn),
                addr,
                pool: self,
                reusable: true,
            });
        }
        let stream = SimStream::connect(&self.fabric, self.local, addr)?;
        let conn: Arc<dyn Conn> = match &self.ib {
            Some(ctx) => Arc::new(RdmaConn::bootstrap(&stream, ctx, &self.cfg)?),
            None => Arc::new(SocketConn::new(stream, 4096)),
        };
        Ok(PooledConn {
            conn: Some(conn),
            addr,
            pool: self,
            reusable: true,
        })
    }

    /// The IB context backing RDMA data connections (None on sockets).
    pub fn ib_context(&self) -> Option<&IbContext> {
        self.ib.as_ref()
    }

    fn checkin(&self, addr: SimAddr, conn: Arc<dyn Conn>) {
        self.idle.lock().entry(addr).or_default().push(conn);
    }
}

impl std::fmt::Debug for DataConnPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataConnPool")
            .field("local", &self.local)
            .field("rdma", &self.ib.is_some())
            .finish()
    }
}

/// A checked-out data connection; returns to the pool on drop unless
/// poisoned with [`PooledConn::poison`].
pub struct PooledConn<'a> {
    conn: Option<Arc<dyn Conn>>,
    addr: SimAddr,
    pool: &'a DataConnPool,
    reusable: bool,
}

impl PooledConn<'_> {
    /// The underlying connection.
    pub fn conn(&self) -> &Arc<dyn Conn> {
        self.conn.as_ref().expect("connection already returned")
    }

    /// Mark the connection as broken mid-protocol: it will be dropped
    /// instead of pooled (a half-finished stream cannot be reused).
    pub fn poison(&mut self) {
        self.reusable = false;
    }
}

impl Drop for PooledConn<'_> {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            if self.reusable {
                self.pool.checkin(self.addr, conn);
            } else {
                conn.close();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Frame helpers.
// ---------------------------------------------------------------------------

/// Send a `WRITE` header opening a pipeline for `block` to `targets`.
pub fn send_write_header(
    conn: &Arc<dyn Conn>,
    block: u64,
    targets: &[DatanodeInfo],
) -> RpcResult<()> {
    conn.send_msg(
        rpcoib::intern::method_key("hdfs.data", "write"),
        &mut |out| {
            out.write_u8(OP_WRITE)?;
            out.write_i64(block as i64)?;
            out.write_vint(targets.len() as i32)?;
            for t in targets {
                wire::Writable::write(t, out)?;
            }
            Ok(())
        },
    )
    .map(|_| ())
}

/// Send one data chunk, protected by a CRC-32 of its bytes.
pub fn send_chunk(conn: &Arc<dyn Conn>, chunk: &[u8]) -> RpcResult<()> {
    let crc = wire::crc32(chunk);
    conn.send_msg(
        rpcoib::intern::method_key("hdfs.data", "chunk"),
        &mut |out| {
            out.write_u8(OP_DATA)?;
            out.write_i32(crc as i32)?;
            out.write_len_bytes(chunk)
        },
    )
    .map(|_| ())
}

/// Send the end-of-block marker.
pub fn send_end(conn: &Arc<dyn Conn>) -> RpcResult<()> {
    conn.send_msg(rpcoib::intern::method_key("hdfs.data", "end"), &mut |out| {
        out.write_u8(OP_END)
    })
    .map(|_| ())
}

/// Send an `ACK` with `status`.
pub fn send_ack(conn: &Arc<dyn Conn>, status: u8) -> RpcResult<()> {
    conn.send_msg(rpcoib::intern::method_key("hdfs.data", "ack"), &mut |out| {
        out.write_u8(OP_ACK)?;
        out.write_u8(status)
    })
    .map(|_| ())
}

/// Send a `READ` request for `[offset, offset+len)` of `block`
/// (`len == u64::MAX` means "to the end of the block").
pub fn send_read(conn: &Arc<dyn Conn>, block: u64, offset: u64, len: u64) -> RpcResult<()> {
    conn.send_msg(
        rpcoib::intern::method_key("hdfs.data", "read"),
        &mut |out| {
            out.write_u8(OP_READ)?;
            out.write_i64(block as i64)?;
            out.write_vlong(offset as i64)?;
            out.write_i64(len as i64)
        },
    )
    .map(|_| ())
}

/// Send the `SIZE` response header of a read.
pub fn send_size(conn: &Arc<dyn Conn>, size: u64) -> RpcResult<()> {
    conn.send_msg(
        rpcoib::intern::method_key("hdfs.data", "size"),
        &mut |out| {
            out.write_u8(OP_SIZE)?;
            out.write_i64(size as i64)
        },
    )
    .map(|_| ())
}

/// A parsed data-plane frame.
#[derive(Debug)]
pub enum DataFrame {
    Write {
        block: u64,
        targets: Vec<DatanodeInfo>,
    },
    Data(Vec<u8>),
    End,
    Ack(u8),
    Read {
        block: u64,
        offset: u64,
        len: u64,
    },
    Size(u64),
}

/// Receive and parse the next data-plane frame.
pub fn recv_frame(conn: &Arc<dyn Conn>, timeout: Duration) -> RpcResult<DataFrame> {
    let (payload, _) = conn.recv_msg(timeout)?;
    let mut reader = payload.reader();
    parse_frame(&mut reader).map_err(|e| RpcError::Protocol(e.to_string()))
}

fn parse_frame(reader: &mut dyn DataInput) -> io::Result<DataFrame> {
    let op = reader.read_u8()?;
    Ok(match op {
        OP_WRITE => {
            let block = reader.read_i64()? as u64;
            let n = reader.read_vint()?;
            let mut targets = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let mut dn = DatanodeInfo::default();
                wire::Writable::read_fields(&mut dn, reader)?;
                targets.push(dn);
            }
            DataFrame::Write { block, targets }
        }
        OP_DATA => {
            let expected = reader.read_i32()? as u32;
            let chunk = reader.read_len_bytes()?;
            let actual = wire::crc32(&chunk);
            if actual != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "chunk checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                    ),
                ));
            }
            DataFrame::Data(chunk)
        }
        OP_END => DataFrame::End,
        OP_ACK => DataFrame::Ack(reader.read_u8()?),
        OP_READ => DataFrame::Read {
            block: reader.read_i64()? as u64,
            offset: reader.read_vlong()? as u64,
            len: reader.read_i64()? as u64,
        },
        OP_SIZE => DataFrame::Size(reader.read_i64()? as u64),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown data opcode {other}"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{model, SimListener};
    use std::thread;

    #[test]
    fn pool_reuses_connections() {
        let fabric = Fabric::new(model::TEN_GIG_E);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 50010);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let accepted = thread::spawn(move || {
            let (s1, _) = listener.accept().unwrap();
            // Keep the stream alive so the pooled conn stays usable.
            (listener, s1)
        });
        let pool = DataConnPool::new(&fabric, client, RpcConfig::socket()).unwrap();
        {
            let _c1 = pool.checkout(addr).unwrap();
        }
        let (_listener, _s1) = accepted.join().unwrap();
        // Second checkout must reuse, not reconnect (the listener would
        // block otherwise since nobody accepts).
        let _c2 = pool.checkout(addr).unwrap();
        assert!(pool.idle.lock().get(&addr).is_none_or(|v| v.is_empty()));
    }

    #[test]
    fn poisoned_connections_are_dropped() {
        let fabric = Fabric::new(model::TEN_GIG_E);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 50010);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let accepted = thread::spawn(move || listener.accept().unwrap());
        let pool = DataConnPool::new(&fabric, client, RpcConfig::socket()).unwrap();
        {
            let mut c = pool.checkout(addr).unwrap();
            c.poison();
        }
        accepted.join().unwrap();
        assert!(pool.idle.lock().get(&addr).is_none_or(|v| v.is_empty()));
    }

    #[test]
    fn corrupted_chunk_fails_checksum_verification() {
        use wire::DataOutput;
        // Hand-build a DATA frame whose payload is flipped after the CRC
        // was computed — the receive path must reject it.
        let chunk = vec![7u8; 64];
        let mut out = wire::DataOutputBuffer::new();
        out.write_u8(OP_DATA).unwrap();
        out.write_i32(wire::crc32(&chunk) as i32).unwrap();
        let mut corrupted = chunk.clone();
        corrupted[10] ^= 0xFF;
        out.write_len_bytes(&corrupted).unwrap();
        let err = parse_frame(&mut out.data()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // The untampered frame parses fine.
        let mut ok = wire::DataOutputBuffer::new();
        ok.write_u8(OP_DATA).unwrap();
        ok.write_i32(wire::crc32(&chunk) as i32).unwrap();
        ok.write_len_bytes(&chunk).unwrap();
        assert!(matches!(parse_frame(&mut ok.data()).unwrap(), DataFrame::Data(d) if d == chunk));
    }

    #[test]
    fn frames_roundtrip_over_a_socket_conn() {
        let fabric = Fabric::new(model::TEN_GIG_E);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 50010);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let srv = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let conn: Arc<dyn Conn> = Arc::new(SocketConn::new(stream, 4096));
            let mut frames = Vec::new();
            for _ in 0..4 {
                frames.push(recv_frame(&conn, Duration::from_secs(5)).unwrap());
            }
            frames
        });
        let pool = DataConnPool::new(&fabric, client, RpcConfig::socket()).unwrap();
        let c = pool.checkout(addr).unwrap();
        let targets = vec![DatanodeInfo {
            id: 1,
            xfer_node: 3,
            xfer_port: 50010,
        }];
        send_write_header(c.conn(), 42, &targets).unwrap();
        send_chunk(c.conn(), &[1, 2, 3]).unwrap();
        send_end(c.conn()).unwrap();
        send_ack(c.conn(), ACK_OK).unwrap();
        let frames = srv.join().unwrap();
        assert!(matches!(&frames[0], DataFrame::Write { block: 42, targets: t } if t == &targets));
        assert!(matches!(&frames[1], DataFrame::Data(d) if d == &vec![1, 2, 3]));
        assert!(matches!(frames[2], DataFrame::End));
        assert!(matches!(frames[3], DataFrame::Ack(ACK_OK)));
    }
}
