//! # mini-hdfs — a miniature HDFS whose control plane is `rpcoib`
//!
//! The paper's Table I and Figure 7 depend on the real RPC call mix of
//! HDFS: `create`, `addBlock`, `complete`, `blockReceived`, heartbeats and
//! block reports, all riding the Hadoop RPC engine. This crate implements
//! enough of HDFS (0.20.x shape) to generate that mix honestly:
//!
//! * [`NameNode`] — in-memory namespace + block map, hosting
//!   `hdfs.ClientProtocol` and `hdfs.DatanodeProtocol` on an
//!   [`rpcoib::Server`] (socket or RPCoIB, per configuration);
//! * [`DataNode`] — in-memory block store with a streaming data-transfer
//!   service and a 3-replica write pipeline, over sockets or RDMA
//!   (the "HDFSoIB" configuration of the paper's Figure 7);
//! * [`DfsClient`] — create/write/read/delete plus the metadata
//!   operations Table I profiles;
//! * [`MiniDfs`] — convenience harness that boots a NameNode and N
//!   DataNodes on a [`simnet::Cluster`].
//!
//! Block size, replication and chunk size are scaled down (defaults:
//! 2 MiB blocks, 3 replicas, 64 KiB chunks) so cluster-scale experiments
//! fit in one process; ratios between configurations are what the
//! benchmarks report.
//!
//! ```
//! use mini_hdfs::{HdfsConfig, MiniDfs};
//!
//! let dfs = MiniDfs::start(simnet::model::TEN_GIG_E, 3, HdfsConfig::socket()).unwrap();
//! let client = dfs.client().unwrap();
//! client.write_file("/hello", b"replicated three ways").unwrap();
//! assert_eq!(client.read_file("/hello").unwrap(), b"replicated three ways");
//! assert_eq!(dfs.namenode().fsck().missing, 0);
//! dfs.stop();
//! ```

pub mod client;
pub mod cluster;
pub mod config;
pub mod datanode;
pub mod dataxfer;
pub mod namenode;
pub mod types;

pub use client::DfsClient;
pub use cluster::MiniDfs;
pub use config::{HdfsConfig, HostNet};
pub use datanode::DataNode;
pub use namenode::{FsckReport, NameNode};
pub use types::{DatanodeInfo, FileStatus, LocatedBlock};

/// Default NameNode RPC port.
pub const NN_PORT: u16 = 8020;
/// Default DataNode data-transfer port.
pub const DATA_PORT: u16 = 50010;
