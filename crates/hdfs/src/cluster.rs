//! `MiniDfs`: boot a whole HDFS on a dual-rail simulated cluster.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rpcoib::{RpcError, RpcResult};
use simnet::{Cluster, Host, NetworkModel, SimAddr};

use crate::client::DfsClient;
use crate::config::{HdfsConfig, HostNet};
use crate::datanode::DataNode;
use crate::namenode::NameNode;

/// A booted mini-HDFS: one NameNode, N DataNodes, on `n + 2` hosts —
/// host 0 runs the NameNode, host 1 is reserved for a client (matching
/// the paper's Figure 7 setup where the NameNode and the client run on
/// nodes separate from the 32 DataNodes).
pub struct MiniDfs {
    cluster: Arc<Cluster>,
    cfg: HdfsConfig,
    namenode: NameNode,
    datanodes: Vec<DataNode>,
}

impl MiniDfs {
    /// Start with `n_datanodes` DataNodes; Ethernet rail runs `eth_model`.
    pub fn start(
        eth_model: NetworkModel,
        n_datanodes: usize,
        cfg: HdfsConfig,
    ) -> RpcResult<MiniDfs> {
        let cluster = Arc::new(Cluster::new(eth_model, n_datanodes + 2));
        Self::start_on(cluster, n_datanodes, cfg)
    }

    /// Start on an existing cluster (hosts `2..2+n` become DataNodes).
    pub fn start_on(
        cluster: Arc<Cluster>,
        n_datanodes: usize,
        cfg: HdfsConfig,
    ) -> RpcResult<MiniDfs> {
        assert!(
            cluster.len() >= n_datanodes + 2,
            "need n_datanodes + 2 hosts"
        );
        let nn_net = HostNet::of(&cluster, Host(0), &cfg);
        let namenode = NameNode::start(&nn_net.rpc_fabric, nn_net.rpc_node, cfg.clone())?;
        let nn_addr = namenode.addr();

        let mut datanodes = Vec::with_capacity(n_datanodes);
        for i in 0..n_datanodes {
            let net = HostNet::of(&cluster, Host(2 + i), &cfg);
            datanodes.push(DataNode::start(&net, nn_addr, cfg.clone())?);
        }

        let dfs = MiniDfs {
            cluster,
            cfg,
            namenode,
            datanodes,
        };
        dfs.await_datanodes(n_datanodes, Duration::from_secs(10))?;
        Ok(dfs)
    }

    fn await_datanodes(&self, want: usize, timeout: Duration) -> RpcResult<()> {
        let deadline = Instant::now() + timeout;
        while self.namenode.live_datanode_count() < want {
            if Instant::now() > deadline {
                return Err(RpcError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    /// The NameNode RPC address.
    pub fn nn_addr(&self) -> SimAddr {
        self.namenode.addr()
    }

    /// The underlying cluster (shared, cheap to clone the Arc).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The deployment configuration.
    pub fn config(&self) -> &HdfsConfig {
        &self.cfg
    }

    /// The NameNode.
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// The DataNodes, in host order.
    pub fn datanodes(&self) -> &[DataNode] {
        &self.datanodes
    }

    /// Which host a DataNode index lives on.
    pub fn datanode_host(&self, idx: usize) -> Host {
        Host(2 + idx)
    }

    /// A client on the reserved client host (host 1).
    pub fn client(&self) -> RpcResult<DfsClient> {
        self.client_on(Host(1))
    }

    /// A client on an arbitrary host.
    pub fn client_on(&self, host: Host) -> RpcResult<DfsClient> {
        let net = HostNet::of(&self.cluster, host, &self.cfg);
        DfsClient::new(&net, self.namenode.addr(), self.cfg.clone())
    }

    /// Stop every daemon.
    pub fn stop(&self) {
        for dn in &self.datanodes {
            dn.stop();
        }
        self.namenode.stop();
    }
}

impl std::fmt::Debug for MiniDfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiniDfs")
            .field("datanodes", &self.datanodes.len())
            .field("rpc_ib", &self.cfg.rpc.ib_enabled)
            .field("data_rdma", &self.cfg.data_rdma)
            .finish()
    }
}
