//! The DFS client: metadata operations over `hdfs.ClientProtocol` plus
//! the streaming write (3-replica pipeline) and read paths.

use std::io::{self, Write};

use rpcoib::{Client, RpcError, RpcResult};
use simnet::SimAddr;
use wire::{BooleanWritable, IntWritable, LongWritable, NullWritable, Text};

use crate::config::{HdfsConfig, HostNet};
use crate::dataxfer::{
    recv_frame, send_chunk, send_end, send_read, send_write_header, DataConnPool, DataFrame,
    ACK_CORRUPT, ACK_OK, DATA_TIMEOUT,
};
use crate::types::{AddBlockArgs, FileStatus, LocatedBlock};

const CLIENT_PROTOCOL: &str = "hdfs.ClientProtocol";
/// Pipeline attempts per block before giving up.
const WRITE_ATTEMPTS: usize = 4;

/// A mini-HDFS client.
pub struct DfsClient {
    rpc: Client,
    nn: SimAddr,
    pool: DataConnPool,
    cfg: HdfsConfig,
}

impl DfsClient {
    /// Create a client whose RPC and data planes follow `net`.
    pub fn new(net: &HostNet, nn: SimAddr, cfg: HdfsConfig) -> RpcResult<DfsClient> {
        let rpc = Client::new(&net.rpc_fabric, net.rpc_node, cfg.rpc.clone())?;
        let pool = DataConnPool::new(&net.data_fabric, net.data_node, cfg.data_rpc_config())?;
        Ok(DfsClient { rpc, nn, pool, cfg })
    }

    /// The underlying RPC client (its metrics feed Table I).
    pub fn rpc(&self) -> &Client {
        &self.rpc
    }

    /// Close the NameNode connection; in-flight calls fail. The data-plane
    /// connection pool drops with the client.
    pub fn shutdown(&self) {
        self.rpc.shutdown();
    }

    // --- Metadata operations (Table I's ClientProtocol rows). ---

    pub fn mkdirs(&self, path: &str) -> RpcResult<bool> {
        let ok: BooleanWritable =
            self.rpc
                .call(self.nn, CLIENT_PROTOCOL, "mkdirs", &Text::from(path))?;
        Ok(ok.0)
    }

    pub fn get_file_info(&self, path: &str) -> RpcResult<Option<FileStatus>> {
        self.rpc
            .call(self.nn, CLIENT_PROTOCOL, "getFileInfo", &Text::from(path))
    }

    pub fn list(&self, path: &str) -> RpcResult<Vec<FileStatus>> {
        self.rpc
            .call(self.nn, CLIENT_PROTOCOL, "getListing", &Text::from(path))
    }

    pub fn rename(&self, src: &str, dst: &str) -> RpcResult<bool> {
        let ok: BooleanWritable = self.rpc.call(
            self.nn,
            CLIENT_PROTOCOL,
            "rename",
            &(Text::from(src), Text::from(dst)),
        )?;
        Ok(ok.0)
    }

    pub fn delete(&self, path: &str) -> RpcResult<bool> {
        let ok: BooleanWritable =
            self.rpc
                .call(self.nn, CLIENT_PROTOCOL, "delete", &Text::from(path))?;
        Ok(ok.0)
    }

    pub fn renew_lease(&self, client_name: &str) -> RpcResult<()> {
        let _: NullWritable = self.rpc.call(
            self.nn,
            CLIENT_PROTOCOL,
            "renewLease",
            &Text::from(client_name),
        )?;
        Ok(())
    }

    pub fn get_block_locations(&self, path: &str) -> RpcResult<Vec<LocatedBlock>> {
        self.rpc.call(
            self.nn,
            CLIENT_PROTOCOL,
            "getBlockLocations",
            &Text::from(path),
        )
    }

    // --- Write path. ---

    /// Open a file for writing.
    pub fn create(&self, path: &str) -> RpcResult<DfsWriter<'_>> {
        let _: BooleanWritable = self.rpc.call(
            self.nn,
            CLIENT_PROTOCOL,
            "create",
            &(Text::from(path), IntWritable(self.cfg.replication as i32)),
        )?;
        Ok(DfsWriter {
            client: self,
            path: path.to_owned(),
            buf: Vec::with_capacity(self.cfg.block_size),
            closed: false,
        })
    }

    /// Convenience: create + write + close.
    pub fn write_file(&self, path: &str, data: &[u8]) -> RpcResult<()> {
        let mut writer = self.create(path)?;
        writer
            .write_all(data)
            .map_err(|e| RpcError::Io(e.to_string()))?;
        writer.close()
    }

    /// Read a whole file back. Like Hadoop's `FileSystem.open`, this
    /// first asks the NameNode for the file's status (`getFileInfo` —
    /// one of the Table I / Figure 3 call kinds), then for its blocks.
    pub fn read_file(&self, path: &str) -> RpcResult<Vec<u8>> {
        let status = self.get_file_info(path)?;
        match status {
            Some(info) if !info.is_dir => {}
            Some(_) => return Err(RpcError::Remote(format!("is a directory: {path}"))),
            None => return Err(RpcError::Remote(format!("no such file: {path}"))),
        }
        let blocks = self.get_block_locations(path)?;
        let mut out = Vec::new();
        for lb in blocks {
            out.extend(self.read_block(&lb)?);
        }
        Ok(out)
    }

    fn read_block(&self, lb: &LocatedBlock) -> RpcResult<Vec<u8>> {
        self.read_block_range(lb, 0, u64::MAX)
    }

    /// Read `[offset, offset+len)` of one block, trying each replica.
    fn read_block_range(&self, lb: &LocatedBlock, offset: u64, len: u64) -> RpcResult<Vec<u8>> {
        let mut last_err = RpcError::Protocol(format!("block {} has no locations", lb.block));
        for target in &lb.targets {
            match self.try_read_block_from(lb.block, target.xfer_addr(), offset, len) {
                Ok(data) => return Ok(data),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn try_read_block_from(
        &self,
        block: u64,
        addr: SimAddr,
        offset: u64,
        len: u64,
    ) -> RpcResult<Vec<u8>> {
        let mut conn = self.pool.checkout(addr)?;
        let run = (|| -> RpcResult<Vec<u8>> {
            send_read(conn.conn(), block, offset, len)?;
            let size = match recv_frame(conn.conn(), DATA_TIMEOUT)? {
                DataFrame::Size(size) => size as usize,
                DataFrame::Ack(ACK_CORRUPT) => {
                    return Err(RpcError::Protocol(format!(
                        "replica of block {block} failed checksum verification"
                    )))
                }
                DataFrame::Ack(_) => {
                    return Err(RpcError::Protocol(format!("replica missing block {block}")))
                }
                _ => return Err(RpcError::Protocol("expected SIZE".into())),
            };
            let mut data = Vec::with_capacity(size);
            loop {
                match recv_frame(conn.conn(), DATA_TIMEOUT)? {
                    DataFrame::Data(chunk) => data.extend_from_slice(&chunk),
                    DataFrame::End => break,
                    _ => return Err(RpcError::Protocol("expected DATA or END".into())),
                }
            }
            if data.len() != size {
                return Err(RpcError::Protocol(format!(
                    "short block read: {} of {size}",
                    data.len()
                )));
            }
            Ok(data)
        })();
        if run.is_err() {
            conn.poison();
        }
        run
    }

    /// Read `len` bytes starting at byte `offset` of a file (pread).
    /// Short reads happen only at end of file.
    pub fn read_range(&self, path: &str, offset: u64, len: u64) -> RpcResult<Vec<u8>> {
        let blocks = self.get_block_locations(path)?;
        let mut out = Vec::new();
        let mut cursor = 0u64; // absolute file offset of the current block
        let mut want_start = offset;
        let mut remaining = len;
        for lb in &blocks {
            let block_len = lb.size;
            let block_end = cursor + block_len;
            if remaining == 0 {
                break;
            }
            if want_start < block_end {
                let in_block_off = want_start - cursor;
                let take = remaining.min(block_end - want_start);
                out.extend(self.read_block_range(lb, in_block_off, take)?);
                want_start += take;
                remaining -= take;
            }
            cursor = block_end;
        }
        Ok(out)
    }

    /// Open a file for streaming reads.
    pub fn open(&self, path: &str) -> RpcResult<DfsReader<'_>> {
        match self.get_file_info(path)? {
            Some(info) if !info.is_dir => {}
            Some(_) => return Err(RpcError::Remote(format!("is a directory: {path}"))),
            None => return Err(RpcError::Remote(format!("no such file: {path}"))),
        }
        let blocks = self.get_block_locations(path)?;
        Ok(DfsReader {
            client: self,
            blocks,
            block_idx: 0,
            buf: Vec::new(),
            buf_pos: 0,
        })
    }

    /// Write one block's worth of data through a fresh pipeline, retrying
    /// with exclusions when a replica fails mid-stream.
    fn write_block(&self, path: &str, data: &[u8], exclude: &mut Vec<u32>) -> RpcResult<()> {
        let mut last_err = RpcError::Protocol("no write attempts made".into());
        for _attempt in 0..WRITE_ATTEMPTS {
            let lb: LocatedBlock = self.rpc.call(
                self.nn,
                CLIENT_PROTOCOL,
                "addBlock",
                &AddBlockArgs {
                    path: path.to_owned(),
                    exclude: exclude.clone(),
                },
            )?;
            match self.try_pipeline(&lb, data) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    // Conservatively exclude every target of the failed
                    // attempt; the NameNode will re-include nodes that are
                    // still heartbeating on a later file.
                    for t in &lb.targets {
                        if !exclude.contains(&t.id) {
                            exclude.push(t.id);
                        }
                    }
                    let _: BooleanWritable = self.rpc.call(
                        self.nn,
                        CLIENT_PROTOCOL,
                        "abandonBlock",
                        &(Text::from(path), LongWritable(lb.block as i64)),
                    )?;
                    last_err = e;
                    std::thread::sleep(self.cfg.heartbeat);
                }
            }
        }
        Err(last_err)
    }

    fn try_pipeline(&self, lb: &LocatedBlock, data: &[u8]) -> RpcResult<()> {
        let first = lb
            .targets
            .first()
            .ok_or_else(|| RpcError::Protocol("empty pipeline".into()))?;
        let mut conn = self.pool.checkout(first.xfer_addr())?;
        let run = (|| -> RpcResult<()> {
            send_write_header(conn.conn(), lb.block, &lb.targets[1..])?;
            for chunk in data.chunks(self.cfg.chunk) {
                send_chunk(conn.conn(), chunk)?;
            }
            send_end(conn.conn())?;
            match recv_frame(conn.conn(), DATA_TIMEOUT)? {
                DataFrame::Ack(ACK_OK) => Ok(()),
                DataFrame::Ack(_) => Err(RpcError::Protocol("pipeline reported failure".into())),
                _ => Err(RpcError::Protocol("expected ACK".into())),
            }
        })();
        if run.is_err() {
            conn.poison();
        }
        run
    }

    fn complete(&self, path: &str) -> RpcResult<()> {
        let _: BooleanWritable =
            self.rpc
                .call(self.nn, CLIENT_PROTOCOL, "complete", &Text::from(path))?;
        Ok(())
    }
}

impl std::fmt::Debug for DfsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DfsClient").field("nn", &self.nn).finish()
    }
}

/// A file open for writing. Data is buffered into block-size units, each
/// written through a replica pipeline. Call [`DfsWriter::close`].
pub struct DfsWriter<'a> {
    client: &'a DfsClient,
    path: String,
    buf: Vec<u8>,
    closed: bool,
}

impl DfsWriter<'_> {
    /// Flush any buffered data as a final (possibly short) block and mark
    /// the file complete.
    pub fn close(mut self) -> RpcResult<()> {
        self.closed = true;
        let mut exclude = Vec::new();
        if !self.buf.is_empty() {
            let data = std::mem::take(&mut self.buf);
            self.client.write_block(&self.path, &data, &mut exclude)?;
        }
        self.client.complete(&self.path)
    }
}

impl Write for DfsWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        let block_size = self.client.cfg.block_size;
        let mut exclude = Vec::new();
        while self.buf.len() >= block_size {
            let rest = self.buf.split_off(block_size);
            let full = std::mem::replace(&mut self.buf, rest);
            self.client
                .write_block(&self.path, &full, &mut exclude)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for DfsWriter<'_> {
    fn drop(&mut self) {
        debug_assert!(
            self.closed || self.buf.is_empty(),
            "DfsWriter dropped without close()"
        );
    }
}

/// A file open for streaming reads: blocks are fetched lazily, one at a
/// time, with per-replica failover.
pub struct DfsReader<'a> {
    client: &'a DfsClient,
    blocks: Vec<LocatedBlock>,
    block_idx: usize,
    buf: Vec<u8>,
    buf_pos: usize,
}

impl DfsReader<'_> {
    /// Total file length according to the NameNode's block map.
    pub fn len(&self) -> u64 {
        self.blocks.iter().map(|b| b.size).sum()
    }

    /// True for zero-length files.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl io::Read for DfsReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.buf_pos == self.buf.len() {
            let Some(lb) = self.blocks.get(self.block_idx) else {
                return Ok(0); // EOF
            };
            self.buf = self
                .client
                .read_block(lb)
                .map_err(|e| io::Error::other(e.to_string()))?;
            self.buf_pos = 0;
            self.block_idx += 1;
        }
        let n = (self.buf.len() - self.buf_pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + n]);
        self.buf_pos += n;
        Ok(n)
    }
}
