//! Protocol data types exchanged over `hdfs.ClientProtocol` and
//! `hdfs.DatanodeProtocol`, with Hadoop-`Writable` wire formats.

use std::io;

use simnet::{NodeId, SimAddr};
use wire::{DataInput, DataOutput, Writable};

/// Identity + data-transfer address of a DataNode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatanodeInfo {
    /// NameNode-assigned registration id.
    pub id: u32,
    /// Node id on the data fabric.
    pub xfer_node: u32,
    /// Data-transfer port.
    pub xfer_port: u16,
}

impl DatanodeInfo {
    /// The address the data-transfer service listens on.
    pub fn xfer_addr(&self) -> SimAddr {
        SimAddr::new(NodeId(self.xfer_node), self.xfer_port)
    }
}

impl Writable for DatanodeInfo {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_i32(self.id as i32)?;
        out.write_i32(self.xfer_node as i32)?;
        out.write_u16(self.xfer_port)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.id = input.read_i32()? as u32;
        self.xfer_node = input.read_i32()? as u32;
        self.xfer_port = input.read_u16()?;
        Ok(())
    }
}

/// A block id plus the DataNodes holding (or designated to hold) it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocatedBlock {
    pub block: u64,
    pub size: u64,
    pub targets: Vec<DatanodeInfo>,
}

impl Writable for LocatedBlock {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_i64(self.block as i64)?;
        out.write_i64(self.size as i64)?;
        self.targets.write(out)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.block = input.read_i64()? as u64;
        self.size = input.read_i64()? as u64;
        self.targets.read_fields(input)
    }
}

/// Metadata returned by `getFileInfo` / `getListing`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileStatus {
    pub path: String,
    pub is_dir: bool,
    pub len: u64,
    pub replication: u32,
    pub block_size: u64,
}

impl Writable for FileStatus {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_string(&self.path)?;
        out.write_bool(self.is_dir)?;
        out.write_vlong(self.len as i64)?;
        out.write_vint(self.replication as i32)?;
        out.write_vlong(self.block_size as i64)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.path = input.read_string()?;
        self.is_dir = input.read_bool()?;
        self.len = input.read_vlong()? as u64;
        self.replication = input.read_vint()? as u32;
        self.block_size = input.read_vlong()? as u64;
        Ok(())
    }
}

/// Parameter of `addBlock`: path plus DataNodes the client wants excluded
/// (ones it has observed failing mid-pipeline).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddBlockArgs {
    pub path: String,
    pub exclude: Vec<u32>,
}

impl Writable for AddBlockArgs {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_string(&self.path)?;
        out.write_vint(self.exclude.len() as i32)?;
        for id in &self.exclude {
            out.write_vint(*id as i32)?;
        }
        Ok(())
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.path = input.read_string()?;
        let n = input.read_vint()?;
        self.exclude = (0..n)
            .map(|_| input.read_vint().map(|v| v as u32))
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

/// Parameter of `blockReceived`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockReceivedArgs {
    pub dn_id: u32,
    pub block: u64,
    pub size: u64,
}

impl Writable for BlockReceivedArgs {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vint(self.dn_id as i32)?;
        out.write_i64(self.block as i64)?;
        out.write_vlong(self.size as i64)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.dn_id = input.read_vint()? as u32;
        self.block = input.read_i64()? as u64;
        self.size = input.read_vlong()? as u64;
        Ok(())
    }
}

/// Parameter of `blockReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockReportArgs {
    pub dn_id: u32,
    pub blocks: Vec<u64>,
}

impl Writable for BlockReportArgs {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vint(self.dn_id as i32)?;
        out.write_vint(self.blocks.len() as i32)?;
        for b in &self.blocks {
            out.write_i64(*b as i64)?;
        }
        Ok(())
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.dn_id = input.read_vint()? as u32;
        let n = input.read_vint()?;
        self.blocks = (0..n)
            .map(|_| input.read_i64().map(|v| v as u64))
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

/// A command returned to a DataNode in its heartbeat response — the
/// mechanism HDFS uses to drive re-replication of under-replicated
/// blocks after a DataNode death.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DnCommand {
    /// No-op (placeholder for unknown future commands).
    #[default]
    None,
    /// Copy a locally held block to `targets` via a write pipeline.
    Replicate {
        block: u64,
        targets: Vec<DatanodeInfo>,
    },
}

impl Writable for DnCommand {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        match self {
            DnCommand::None => out.write_u8(0),
            DnCommand::Replicate { block, targets } => {
                out.write_u8(1)?;
                out.write_i64(*block as i64)?;
                targets.write(out)
            }
        }
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        *self = match input.read_u8()? {
            0 => DnCommand::None,
            1 => {
                let block = input.read_i64()? as u64;
                let mut targets = Vec::new();
                targets.read_fields(input)?;
                DnCommand::Replicate { block, targets }
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad DnCommand tag {other}"),
                ))
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{from_bytes, to_bytes};

    fn roundtrip<W: Writable + Default + PartialEq + std::fmt::Debug>(v: W) {
        let back: W = from_bytes(&to_bytes(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn protocol_types_roundtrip() {
        roundtrip(DatanodeInfo {
            id: 3,
            xfer_node: 17,
            xfer_port: 50010,
        });
        roundtrip(LocatedBlock {
            block: 42,
            size: 1 << 21,
            targets: vec![
                DatanodeInfo {
                    id: 1,
                    xfer_node: 5,
                    xfer_port: 50010,
                },
                DatanodeInfo {
                    id: 2,
                    xfer_node: 6,
                    xfer_port: 50010,
                },
            ],
        });
        roundtrip(FileStatus {
            path: "/user/data/part-00000".into(),
            is_dir: false,
            len: 123456789,
            replication: 3,
            block_size: 2 << 20,
        });
        roundtrip(AddBlockArgs {
            path: "/f".into(),
            exclude: vec![7, 9],
        });
        roundtrip(BlockReceivedArgs {
            dn_id: 2,
            block: 99,
            size: 4096,
        });
        roundtrip(BlockReportArgs {
            dn_id: 1,
            blocks: vec![1, 2, 3],
        });
        roundtrip(DnCommand::None);
        roundtrip(DnCommand::Replicate {
            block: 7,
            targets: vec![DatanodeInfo {
                id: 4,
                xfer_node: 8,
                xfer_port: 50010,
            }],
        });
    }

    #[test]
    fn xfer_addr_is_derived() {
        let dn = DatanodeInfo {
            id: 0,
            xfer_node: 9,
            xfer_port: 50010,
        };
        assert_eq!(dn.xfer_addr(), SimAddr::new(NodeId(9), 50010));
    }

    #[test]
    fn block_received_size_is_typical_430_bytes_order() {
        // Sanity for the paper's §III-C observation: blockReceived frames
        // are small and steady. Ours is smaller than Java's (no class
        // names on the wire) but must stay well under one size class.
        let bytes = to_bytes(&BlockReceivedArgs {
            dn_id: 3,
            block: 1 << 40,
            size: 1 << 21,
        })
        .unwrap();
        assert!(
            bytes.len() < 128,
            "blockReceived fits in the smallest class"
        );
    }
}
