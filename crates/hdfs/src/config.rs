//! HDFS configuration and host networking selection.

use std::time::Duration;

use rpcoib::RpcConfig;
use simnet::{Cluster, Fabric, Host, NodeId};

/// Configuration for a mini-HDFS deployment.
#[derive(Debug, Clone)]
pub struct HdfsConfig {
    /// Control-plane RPC configuration. `rpc.ib_enabled` selects default
    /// Hadoop RPC vs RPCoIB — the axis Figure 7 sweeps.
    pub rpc: RpcConfig,
    /// Data path over RDMA (the paper's "HDFSoIB") instead of sockets.
    pub data_rdma: bool,
    /// Block size (scaled down from Hadoop's 64 MB default).
    pub block_size: usize,
    /// Replication factor (the paper uses 3).
    pub replication: usize,
    /// Data-transfer chunk ("packet") size.
    pub chunk: usize,
    /// DataNode heartbeat interval.
    pub heartbeat: Duration,
    /// After this long without a heartbeat a DataNode is considered dead.
    pub dn_timeout: Duration,
    /// An un-renewed write lease expires after this long; the NameNode
    /// then recovers it by force-completing the abandoned file.
    pub lease_timeout: Duration,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            rpc: RpcConfig::socket(),
            data_rdma: false,
            block_size: 2 * 1024 * 1024,
            replication: 3,
            chunk: 64 * 1024,
            heartbeat: Duration::from_millis(300),
            dn_timeout: Duration::from_millis(1500),
            lease_timeout: Duration::from_secs(30),
        }
    }
}

impl HdfsConfig {
    /// Everything over sockets (baseline).
    pub fn socket() -> Self {
        HdfsConfig::default()
    }

    /// RPCoIB control plane, socket data path ("HDFS(x)-RPCoIB").
    pub fn rpc_ib() -> Self {
        HdfsConfig {
            rpc: RpcConfig::rpcoib(),
            ..HdfsConfig::default()
        }
    }

    /// RDMA data path, socket RPC ("HDFSoIB-RPC(x)").
    pub fn data_ib() -> Self {
        HdfsConfig {
            data_rdma: true,
            ..HdfsConfig::default()
        }
    }

    /// Fully RDMA: HDFSoIB + RPCoIB — the paper's best configuration.
    pub fn all_ib() -> Self {
        HdfsConfig {
            rpc: RpcConfig::rpcoib(),
            data_rdma: true,
            ..HdfsConfig::default()
        }
    }

    /// The transport configuration used by data-transfer connections:
    /// chunks travel as send/recv messages, so the threshold is set to the
    /// chunk size and buffers are sized accordingly.
    pub fn data_rpc_config(&self) -> RpcConfig {
        RpcConfig {
            ib_enabled: self.data_rdma,
            rdma_threshold: self.chunk + 256,
            recv_buf_bytes: (self.chunk + 256).next_power_of_two(),
            posted_recvs: 32,
            large_region_bytes: ((self.chunk + 256).next_power_of_two() * 4).max(1024 * 1024),
            prefill_per_class: 2,
            ..RpcConfig::default()
        }
    }
}

/// The fabric/node pair a host uses for each plane, derived from the
/// dual-rail [`Cluster`] and the configuration.
#[derive(Clone)]
pub struct HostNet {
    pub rpc_fabric: Fabric,
    pub rpc_node: NodeId,
    pub data_fabric: Fabric,
    pub data_node: NodeId,
}

impl HostNet {
    /// Resolve the rails for `host`: RPC rides IB when RPCoIB is enabled,
    /// data rides IB when HDFSoIB is enabled, otherwise the Ethernet rail.
    pub fn of(cluster: &Cluster, host: Host, cfg: &HdfsConfig) -> HostNet {
        let (rpc_fabric, rpc_node) = if cfg.rpc.ib_enabled {
            (cluster.ib().clone(), cluster.ib_node(host))
        } else {
            (cluster.eth().clone(), cluster.eth_node(host))
        };
        let (data_fabric, data_node) = if cfg.data_rdma {
            (cluster.ib().clone(), cluster.ib_node(host))
        } else {
            (cluster.eth().clone(), cluster.eth_node(host))
        };
        HostNet {
            rpc_fabric,
            rpc_node,
            data_fabric,
            data_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::model;

    #[test]
    fn preset_configurations_match_paper_axes() {
        assert!(!HdfsConfig::socket().rpc.ib_enabled && !HdfsConfig::socket().data_rdma);
        assert!(HdfsConfig::rpc_ib().rpc.ib_enabled && !HdfsConfig::rpc_ib().data_rdma);
        assert!(!HdfsConfig::data_ib().rpc.ib_enabled && HdfsConfig::data_ib().data_rdma);
        assert!(HdfsConfig::all_ib().rpc.ib_enabled && HdfsConfig::all_ib().data_rdma);
    }

    #[test]
    fn data_rpc_config_is_valid_and_fits_chunks() {
        for cfg in [HdfsConfig::socket(), HdfsConfig::all_ib()] {
            let data = cfg.data_rpc_config();
            data.validate().unwrap();
            assert!(data.rdma_threshold > cfg.chunk);
            assert!(data.recv_buf_bytes >= data.rdma_threshold);
        }
    }

    #[test]
    fn host_net_selects_rails() {
        let cluster = Cluster::new(model::IPOIB_QDR, 2);
        let h = Host(0);
        let net = HostNet::of(&cluster, h, &HdfsConfig::socket());
        assert!(!net.rpc_fabric.model().rdma_capable);
        assert!(!net.data_fabric.model().rdma_capable);
        let net = HostNet::of(&cluster, h, &HdfsConfig::all_ib());
        assert!(net.rpc_fabric.model().rdma_capable);
        assert!(net.data_fabric.model().rdma_capable);
        let net = HostNet::of(&cluster, h, &HdfsConfig::data_ib());
        assert!(!net.rpc_fabric.model().rdma_capable);
        assert!(net.data_fabric.model().rdma_capable);
    }
}
