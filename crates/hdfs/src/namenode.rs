//! The NameNode: in-memory namespace, block map, DataNode registry, and
//! the two RPC protocols Table I profiles (`hdfs.ClientProtocol`,
//! `hdfs.DatanodeProtocol`).

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rpcoib::{RpcResult, RpcService, Server, ServiceRegistry};
use simnet::{Fabric, NodeId};
use wire::{BooleanWritable, DataInput, IntWritable, NullWritable, Text, Writable};

use crate::config::HdfsConfig;
use crate::types::{
    AddBlockArgs, BlockReceivedArgs, BlockReportArgs, DatanodeInfo, DnCommand, FileStatus,
    LocatedBlock,
};
use crate::NN_PORT;

#[derive(Debug, Clone)]
enum INode {
    Dir,
    File {
        blocks: Vec<u64>,
        replication: u32,
        complete: bool,
    },
}

#[derive(Debug, Clone, Default)]
struct BlockMeta {
    size: u64,
    locations: Vec<u32>,
}

struct DnReg {
    info: DatanodeInfo,
    last_heartbeat: Instant,
}

pub(crate) struct NnState {
    cfg: HdfsConfig,
    namespace: Mutex<HashMap<String, INode>>,
    blocks: Mutex<HashMap<u64, BlockMeta>>,
    datanodes: Mutex<HashMap<u32, DnReg>>,
    leases: Mutex<HashMap<String, (String, Instant)>>,
    /// Blocks with a replication command in flight (avoid re-issuing
    /// every heartbeat while the copy is still running).
    replication_pending: Mutex<HashMap<u64, Instant>>,
    next_block: AtomicU64,
    next_dn: AtomicU32,
    placement_cursor: AtomicUsize,
}

impl NnState {
    fn live_datanodes(&self, exclude: &[u32]) -> Vec<DatanodeInfo> {
        let now = Instant::now();
        let mut dns: Vec<_> = self
            .datanodes
            .lock()
            .values()
            .filter(|dn| now.duration_since(dn.last_heartbeat) < self.cfg.dn_timeout)
            .filter(|dn| !exclude.contains(&dn.info.id))
            .map(|dn| dn.info)
            .collect();
        dns.sort_by_key(|dn| dn.id);
        dns
    }

    /// Round-robin placement over live DataNodes (excluding `exclude`).
    fn place(&self, exclude: &[u32]) -> Result<Vec<DatanodeInfo>, String> {
        let live = self.live_datanodes(exclude);
        if live.is_empty() {
            return Err("no live datanodes".into());
        }
        let want = self.cfg.replication.min(live.len());
        let start = self.placement_cursor.fetch_add(1, Ordering::Relaxed);
        Ok((0..want).map(|i| live[(start + i) % live.len()]).collect())
    }

    fn file_len(&self, blocks: &[u64]) -> u64 {
        let map = self.blocks.lock();
        blocks
            .iter()
            .map(|b| map.get(b).map_or(0, |m| m.size))
            .sum()
    }

    fn status_of(&self, path: &str, node: &INode) -> FileStatus {
        match node {
            INode::Dir => FileStatus {
                path: path.to_owned(),
                is_dir: true,
                len: 0,
                replication: 0,
                block_size: self.cfg.block_size as u64,
            },
            INode::File {
                blocks,
                replication,
                ..
            } => FileStatus {
                path: path.to_owned(),
                is_dir: false,
                len: self.file_len(blocks),
                replication: *replication,
                block_size: self.cfg.block_size as u64,
            },
        }
    }

    fn parent_dirs_exist(&self, ns: &HashMap<String, INode>, path: &str) -> bool {
        match path.rsplit_once('/') {
            None | Some(("", _)) => true, // parent is the root
            Some((parent, _)) => matches!(ns.get(parent), Some(INode::Dir)),
        }
    }

    /// Lease recovery: force-complete files whose writer stopped
    /// renewing its lease (crashed clients must not hold files open
    /// forever). Piggy-backed on DataNode heartbeats, like replication.
    fn recover_expired_leases(&self) {
        let now = Instant::now();
        let expired: Vec<String> = {
            let leases = self.leases.lock();
            leases
                .iter()
                .filter(|(_, (_, renewed))| now.duration_since(*renewed) > self.cfg.lease_timeout)
                .map(|(path, _)| path.clone())
                .collect()
        };
        if expired.is_empty() {
            return;
        }
        let mut ns = self.namespace.lock();
        let mut leases = self.leases.lock();
        for path in expired {
            if let Some(INode::File { complete, .. }) = ns.get_mut(&path) {
                *complete = true;
            }
            leases.remove(&path);
        }
    }

    /// Replication commands for the heartbeating DataNode `dn_id`: for
    /// each under-replicated block it holds, pick fresh live targets.
    /// This is how HDFS recovers replication after a DataNode death.
    fn replication_work(&self, dn_id: u32) -> Vec<DnCommand> {
        let now = Instant::now();
        let live: Vec<u32> = self.live_datanodes(&[]).iter().map(|dn| dn.id).collect();
        if !live.contains(&dn_id) {
            return Vec::new();
        }
        let mut pending = self.replication_pending.lock();
        pending.retain(|_, deadline| *deadline > now);

        let mut commands = Vec::new();
        let blocks = self.blocks.lock();
        for (block, meta) in blocks.iter() {
            if commands.len() >= 4 {
                break; // bounded work per heartbeat, like HDFS
            }
            if meta.size == 0 || !meta.locations.contains(&dn_id) {
                continue;
            }
            if pending.contains_key(block) {
                continue;
            }
            let live_holders: Vec<u32> = meta
                .locations
                .iter()
                .copied()
                .filter(|id| live.contains(id))
                .collect();
            let missing = self.cfg.replication.saturating_sub(live_holders.len());
            if missing == 0 {
                continue;
            }
            // Exclude every current holder (live or not) from targets.
            let targets: Vec<DatanodeInfo> = match self.place(&meta.locations) {
                Ok(t) => t.into_iter().take(missing).collect(),
                Err(_) => continue,
            };
            if targets.is_empty() {
                continue;
            }
            pending.insert(*block, now + self.cfg.dn_timeout * 4);
            commands.push(DnCommand::Replicate {
                block: *block,
                targets,
            });
        }
        commands
    }

    fn mkdirs(&self, path: &str) -> bool {
        let mut ns = self.namespace.lock();
        let mut prefix = String::new();
        for part in path.split('/').filter(|p| !p.is_empty()) {
            prefix.push('/');
            prefix.push_str(part);
            match ns.get(&prefix) {
                Some(INode::Dir) => {}
                Some(INode::File { .. }) => return false,
                None => {
                    ns.insert(prefix.clone(), INode::Dir);
                }
            }
        }
        true
    }
}

/// `hdfs.ClientProtocol` — the client-facing metadata service.
struct ClientProtocol {
    state: Arc<NnState>,
}

fn ioerr(e: io::Error) -> String {
    e.to_string()
}

impl RpcService for ClientProtocol {
    fn protocol(&self) -> &'static str {
        "hdfs.ClientProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let state = &self.state;
        match method {
            "getFileInfo" => {
                let mut path = Text::default();
                path.read_fields(param).map_err(ioerr)?;
                let ns = state.namespace.lock();
                let status = ns.get(&path.0).map(|node| state.status_of(&path.0, node));
                drop(ns);
                Ok(Box::new(status))
            }
            "mkdirs" => {
                let mut path = Text::default();
                path.read_fields(param).map_err(ioerr)?;
                Ok(Box::new(BooleanWritable(state.mkdirs(&path.0))))
            }
            "create" => {
                let mut path = Text::default();
                let mut replication = IntWritable::default();
                path.read_fields(param).map_err(ioerr)?;
                replication.read_fields(param).map_err(ioerr)?;
                let mut ns = state.namespace.lock();
                if ns.contains_key(&path.0) {
                    return Err(format!("file exists: {}", path.0));
                }
                if !state.parent_dirs_exist(&ns, &path.0) {
                    return Err(format!("parent directory missing for {}", path.0));
                }
                ns.insert(
                    path.0.clone(),
                    INode::File {
                        blocks: Vec::new(),
                        replication: replication.0 as u32,
                        complete: false,
                    },
                );
                drop(ns);
                state
                    .leases
                    .lock()
                    .insert(path.0.clone(), ("client".into(), Instant::now()));
                Ok(Box::new(BooleanWritable(true)))
            }
            "addBlock" => {
                let mut args = AddBlockArgs::default();
                args.read_fields(param).map_err(ioerr)?;
                let targets = state.place(&args.exclude)?;
                let block = state.next_block.fetch_add(1, Ordering::Relaxed);
                let mut ns = state.namespace.lock();
                match ns.get_mut(&args.path) {
                    Some(INode::File {
                        blocks,
                        complete: false,
                        ..
                    }) => blocks.push(block),
                    Some(_) => return Err(format!("not an open file: {}", args.path)),
                    None => return Err(format!("no such file: {}", args.path)),
                }
                drop(ns);
                state.blocks.lock().insert(block, BlockMeta::default());
                Ok(Box::new(LocatedBlock {
                    block,
                    size: 0,
                    targets,
                }))
            }
            "abandonBlock" => {
                let mut path = Text::default();
                path.read_fields(param).map_err(ioerr)?;
                let block = {
                    let mut b = wire::LongWritable::default();
                    b.read_fields(param).map_err(ioerr)?;
                    b.0 as u64
                };
                let mut ns = state.namespace.lock();
                if let Some(INode::File { blocks, .. }) = ns.get_mut(&path.0) {
                    blocks.retain(|b| *b != block);
                }
                drop(ns);
                state.blocks.lock().remove(&block);
                Ok(Box::new(BooleanWritable(true)))
            }
            "complete" => {
                let mut path = Text::default();
                path.read_fields(param).map_err(ioerr)?;
                let mut ns = state.namespace.lock();
                match ns.get_mut(&path.0) {
                    Some(INode::File { complete, .. }) => {
                        *complete = true;
                        drop(ns);
                        state.leases.lock().remove(&path.0);
                        Ok(Box::new(BooleanWritable(true)))
                    }
                    _ => Err(format!("no such file: {}", path.0)),
                }
            }
            "getBlockLocations" => {
                let mut path = Text::default();
                path.read_fields(param).map_err(ioerr)?;
                let ns = state.namespace.lock();
                let blocks = match ns.get(&path.0) {
                    Some(INode::File { blocks, .. }) => blocks.clone(),
                    Some(INode::Dir) => return Err(format!("is a directory: {}", path.0)),
                    None => return Err(format!("no such file: {}", path.0)),
                };
                drop(ns);
                let dn_map = state.datanodes.lock();
                let block_map = state.blocks.lock();
                let located: Vec<LocatedBlock> = blocks
                    .iter()
                    .map(|b| {
                        let meta = block_map.get(b).cloned().unwrap_or_default();
                        LocatedBlock {
                            block: *b,
                            size: meta.size,
                            targets: meta
                                .locations
                                .iter()
                                .filter_map(|id| dn_map.get(id).map(|dn| dn.info))
                                .collect(),
                        }
                    })
                    .collect();
                Ok(Box::new(located))
            }
            "getListing" => {
                let mut path = Text::default();
                path.read_fields(param).map_err(ioerr)?;
                let prefix = if path.0.ends_with('/') {
                    path.0.clone()
                } else {
                    format!("{}/", path.0)
                };
                let ns = state.namespace.lock();
                let mut listing: Vec<FileStatus> = ns
                    .iter()
                    .filter(|(p, _)| p.starts_with(&prefix) && !p[prefix.len()..].contains('/'))
                    .map(|(p, node)| state.status_of(p, node))
                    .collect();
                listing.sort_by(|a, b| a.path.cmp(&b.path));
                Ok(Box::new(listing))
            }
            "rename" => {
                let mut src = Text::default();
                let mut dst = Text::default();
                src.read_fields(param).map_err(ioerr)?;
                dst.read_fields(param).map_err(ioerr)?;
                let mut ns = state.namespace.lock();
                if ns.contains_key(&dst.0) || !ns.contains_key(&src.0) {
                    return Ok(Box::new(BooleanWritable(false)));
                }
                // Move the node and any children (directory rename).
                let moved: Vec<(String, INode)> = ns
                    .iter()
                    .filter(|(p, _)| **p == src.0 || p.starts_with(&format!("{}/", src.0)))
                    .map(|(p, n)| (p.clone(), n.clone()))
                    .collect();
                for (p, node) in moved {
                    ns.remove(&p);
                    let new_path = format!("{}{}", dst.0, &p[src.0.len()..]);
                    ns.insert(new_path, node);
                }
                Ok(Box::new(BooleanWritable(true)))
            }
            "delete" => {
                let mut path = Text::default();
                path.read_fields(param).map_err(ioerr)?;
                let mut ns = state.namespace.lock();
                let doomed: Vec<String> = ns
                    .keys()
                    .filter(|p| **p == path.0 || p.starts_with(&format!("{}/", path.0)))
                    .cloned()
                    .collect();
                if doomed.is_empty() {
                    return Ok(Box::new(BooleanWritable(false)));
                }
                let mut block_map = state.blocks.lock();
                for p in &doomed {
                    if let Some(INode::File { blocks, .. }) = ns.remove(p) {
                        for b in blocks {
                            block_map.remove(&b);
                        }
                    }
                }
                Ok(Box::new(BooleanWritable(true)))
            }
            "renewLease" => {
                let mut client = Text::default();
                client.read_fields(param).map_err(ioerr)?;
                let now = Instant::now();
                for lease in state.leases.lock().values_mut() {
                    if lease.0 == client.0 {
                        lease.1 = now;
                    }
                }
                Ok(Box::new(NullWritable))
            }
            other => Err(format!("ClientProtocol has no method {other}")),
        }
    }
}

/// `hdfs.DatanodeProtocol` — DataNode-facing registration + reports.
struct DatanodeProtocol {
    state: Arc<NnState>,
}

impl RpcService for DatanodeProtocol {
    fn protocol(&self) -> &'static str {
        "hdfs.DatanodeProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let state = &self.state;
        match method {
            "registerDatanode" => {
                let mut info = DatanodeInfo::default();
                info.read_fields(param).map_err(ioerr)?;
                let id = state.next_dn.fetch_add(1, Ordering::Relaxed);
                info.id = id;
                state.datanodes.lock().insert(
                    id,
                    DnReg {
                        info,
                        last_heartbeat: Instant::now(),
                    },
                );
                Ok(Box::new(IntWritable(id as i32)))
            }
            "sendHeartbeat" => {
                let mut id = IntWritable::default();
                id.read_fields(param).map_err(ioerr)?;
                let dn_id = id.0 as u32;
                match state.datanodes.lock().get_mut(&dn_id) {
                    Some(dn) => dn.last_heartbeat = Instant::now(),
                    None => return Err(format!("unregistered datanode {}", id.0)),
                }
                // Piggy-back lease recovery + replication work on the
                // heartbeat response.
                state.recover_expired_leases();
                Ok(Box::new(state.replication_work(dn_id)))
            }
            "blockReceived" => {
                let mut args = BlockReceivedArgs::default();
                args.read_fields(param).map_err(ioerr)?;
                let mut blocks = state.blocks.lock();
                let meta = blocks.entry(args.block).or_default();
                meta.size = meta.size.max(args.size);
                if !meta.locations.contains(&args.dn_id) {
                    meta.locations.push(args.dn_id);
                }
                Ok(Box::new(NullWritable))
            }
            "blockReport" => {
                let mut args = BlockReportArgs::default();
                args.read_fields(param).map_err(ioerr)?;
                let mut blocks = state.blocks.lock();
                for b in &args.blocks {
                    let meta = blocks.entry(*b).or_default();
                    if !meta.locations.contains(&args.dn_id) {
                        meta.locations.push(args.dn_id);
                    }
                }
                // The report is authoritative for this DataNode: a replica
                // it no longer reports (deleted or detected corrupt) is
                // dropped, which is what makes the block under-replicated
                // and drives re-replication from an intact copy.
                let reported: std::collections::HashSet<u64> =
                    args.blocks.iter().copied().collect();
                for (block, meta) in blocks.iter_mut() {
                    if !reported.contains(block) {
                        meta.locations.retain(|&id| id != args.dn_id);
                    }
                }
                Ok(Box::new(NullWritable))
            }
            other => Err(format!("DatanodeProtocol has no method {other}")),
        }
    }
}

/// Filesystem health summary (the `hdfs fsck` essentials).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    pub files: usize,
    pub directories: usize,
    pub blocks: usize,
    pub total_bytes: u64,
    pub live_datanodes: usize,
    pub under_replicated: usize,
    /// Blocks with zero live replicas — data loss.
    pub missing: usize,
}

/// A running NameNode.
pub struct NameNode {
    server: Server,
    state: Arc<NnState>,
}

impl NameNode {
    /// Start a NameNode on `(node, NN_PORT)` of `fabric` (the RPC rail).
    pub fn start(fabric: &Fabric, node: NodeId, cfg: HdfsConfig) -> RpcResult<NameNode> {
        let state = Arc::new(NnState {
            cfg: cfg.clone(),
            namespace: Mutex::new(HashMap::new()),
            blocks: Mutex::new(HashMap::new()),
            datanodes: Mutex::new(HashMap::new()),
            leases: Mutex::new(HashMap::new()),
            replication_pending: Mutex::new(HashMap::new()),
            next_block: AtomicU64::new(1),
            next_dn: AtomicU32::new(0),
            placement_cursor: AtomicUsize::new(0),
        });
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(ClientProtocol {
            state: Arc::clone(&state),
        }));
        registry.register(Arc::new(DatanodeProtocol {
            state: Arc::clone(&state),
        }));
        let server = Server::start(fabric, node, NN_PORT, cfg.rpc, registry)?;
        Ok(NameNode { server, state })
    }

    /// The RPC address of this NameNode.
    pub fn addr(&self) -> simnet::SimAddr {
        self.server.addr()
    }

    /// Server-side RPC metrics.
    pub fn metrics(&self) -> &rpcoib::MetricsRegistry {
        self.server.metrics()
    }

    /// Number of currently live (heartbeating) DataNodes.
    pub fn live_datanode_count(&self) -> usize {
        self.state.live_datanodes(&[]).len()
    }

    /// Count of blocks whose live replica count is below the configured
    /// replication factor (fsck-style health signal).
    pub fn under_replicated_count(&self) -> usize {
        self.fsck().under_replicated
    }

    /// Number of currently outstanding write leases.
    pub fn lease_count(&self) -> usize {
        self.state.leases.lock().len()
    }

    /// Full filesystem health report (the `hdfs fsck` essentials).
    pub fn fsck(&self) -> FsckReport {
        let live: Vec<u32> = self
            .state
            .live_datanodes(&[])
            .iter()
            .map(|dn| dn.id)
            .collect();
        let mut report = FsckReport {
            live_datanodes: live.len(),
            ..FsckReport::default()
        };
        {
            let ns = self.state.namespace.lock();
            for node in ns.values() {
                match node {
                    INode::Dir => report.directories += 1,
                    INode::File { .. } => report.files += 1,
                }
            }
        }
        let blocks = self.state.blocks.lock();
        for meta in blocks.values() {
            if meta.size == 0 {
                continue;
            }
            report.blocks += 1;
            report.total_bytes += meta.size;
            let live_replicas = meta.locations.iter().filter(|id| live.contains(id)).count();
            if live_replicas == 0 {
                report.missing += 1;
            }
            if live_replicas < self.state.cfg.replication {
                report.under_replicated += 1;
            }
        }
        report
    }

    /// Stop the RPC server.
    pub fn stop(&self) {
        self.server.stop();
    }
}

impl std::fmt::Debug for NameNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameNode")
            .field("addr", &self.server.addr())
            .finish()
    }
}
