//! Mini-HDFS integration tests: the four Figure-7 transport
//! configurations, metadata semantics, replication, and failure recovery.

use mini_hdfs::{HdfsConfig, MiniDfs};
use rand::{rngs::StdRng, RngCore, SeedableRng};
use simnet::model;

fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0u8; n];
    rng.fill_bytes(&mut data);
    data
}

fn small_cfg(base: HdfsConfig) -> HdfsConfig {
    HdfsConfig {
        block_size: 64 * 1024,
        chunk: 16 * 1024,
        ..base
    }
}

fn write_read_roundtrip(cfg: HdfsConfig) {
    let dfs = MiniDfs::start(model::IPOIB_QDR, 4, small_cfg(cfg)).unwrap();
    let client = dfs.client().unwrap();
    // Spans multiple blocks (64 KiB blocks, 200 KiB file).
    let data = random_bytes(200 * 1024, 42);
    client.mkdirs("/user").unwrap();
    client.write_file("/user/blob", &data).unwrap();
    let back = client.read_file("/user/blob").unwrap();
    assert_eq!(back.len(), data.len());
    assert_eq!(back, data);
    let info = client.get_file_info("/user/blob").unwrap().unwrap();
    assert!(!info.is_dir);
    assert_eq!(info.len, data.len() as u64);
    dfs.stop();
}

#[test]
fn roundtrip_all_sockets() {
    write_read_roundtrip(HdfsConfig::socket());
}

#[test]
fn roundtrip_rpcoib_control_plane() {
    write_read_roundtrip(HdfsConfig::rpc_ib());
}

#[test]
fn roundtrip_hdfsoib_data_plane() {
    write_read_roundtrip(HdfsConfig::data_ib());
}

#[test]
fn roundtrip_fully_rdma() {
    write_read_roundtrip(HdfsConfig::all_ib());
}

#[test]
fn empty_file_roundtrip() {
    let dfs = MiniDfs::start(model::IPOIB_QDR, 3, small_cfg(HdfsConfig::socket())).unwrap();
    let client = dfs.client().unwrap();
    client.write_file("/empty", &[]).unwrap();
    assert_eq!(client.read_file("/empty").unwrap(), Vec::<u8>::new());
    let info = client.get_file_info("/empty").unwrap().unwrap();
    assert_eq!(info.len, 0);
    dfs.stop();
}

#[test]
fn exact_block_boundary_file() {
    let cfg = small_cfg(HdfsConfig::socket());
    let block = cfg.block_size;
    let dfs = MiniDfs::start(model::IPOIB_QDR, 3, cfg).unwrap();
    let client = dfs.client().unwrap();
    let data = random_bytes(2 * block, 7);
    client.write_file("/two-blocks", &data).unwrap();
    assert_eq!(client.read_file("/two-blocks").unwrap(), data);
    let located = client.get_block_locations("/two-blocks").unwrap();
    assert_eq!(located.len(), 2, "exactly two blocks, no empty tail block");
    dfs.stop();
}

#[test]
fn blocks_are_replicated_three_ways() {
    let dfs = MiniDfs::start(model::IPOIB_QDR, 4, small_cfg(HdfsConfig::socket())).unwrap();
    let client = dfs.client().unwrap();
    let data = random_bytes(50 * 1024, 9);
    client.write_file("/replicated", &data).unwrap();
    let located = client.get_block_locations("/replicated").unwrap();
    assert_eq!(located.len(), 1);
    assert_eq!(located[0].targets.len(), 3, "replication factor 3");
    // Three distinct datanodes hold the bytes.
    let total_copies: usize = dfs.datanodes().iter().map(|dn| dn.block_count()).sum();
    assert_eq!(total_copies, 3);
    dfs.stop();
}

#[test]
fn metadata_operations() {
    let dfs = MiniDfs::start(model::IPOIB_QDR, 3, small_cfg(HdfsConfig::socket())).unwrap();
    let client = dfs.client().unwrap();

    assert!(client.mkdirs("/a/b/c").unwrap());
    let info = client.get_file_info("/a/b").unwrap().unwrap();
    assert!(info.is_dir);

    client.write_file("/a/b/c/one", b"1").unwrap();
    client.write_file("/a/b/c/two", b"22").unwrap();
    let listing = client.list("/a/b/c").unwrap();
    assert_eq!(listing.len(), 2);
    assert_eq!(listing[0].path, "/a/b/c/one");
    assert_eq!(listing[1].path, "/a/b/c/two");

    assert!(client.rename("/a/b/c/one", "/a/b/c/uno").unwrap());
    assert!(client.get_file_info("/a/b/c/one").unwrap().is_none());
    assert_eq!(client.read_file("/a/b/c/uno").unwrap(), b"1");

    assert!(client.delete("/a/b/c/uno").unwrap());
    assert!(client.get_file_info("/a/b/c/uno").unwrap().is_none());
    assert!(!client.delete("/nonexistent").unwrap());

    // Directory rename carries children.
    assert!(client.rename("/a/b", "/moved").unwrap());
    assert_eq!(client.read_file("/moved/c/two").unwrap(), b"22");

    client.renew_lease("client").unwrap();
    dfs.stop();
}

#[test]
fn create_existing_file_fails() {
    let dfs = MiniDfs::start(model::IPOIB_QDR, 3, small_cfg(HdfsConfig::socket())).unwrap();
    let client = dfs.client().unwrap();
    client.write_file("/dup", b"x").unwrap();
    let err = client.write_file("/dup", b"y").err().unwrap();
    assert!(
        matches!(err, rpcoib::RpcError::Remote(ref m) if m.contains("exists")),
        "{err}"
    );
    dfs.stop();
}

#[test]
fn read_of_missing_file_fails() {
    let dfs = MiniDfs::start(model::IPOIB_QDR, 3, small_cfg(HdfsConfig::socket())).unwrap();
    let client = dfs.client().unwrap();
    assert!(client.read_file("/ghost").is_err());
    dfs.stop();
}

#[test]
fn write_survives_datanode_failure() {
    let cfg = small_cfg(HdfsConfig::socket());
    let dfs = MiniDfs::start(model::IPOIB_QDR, 5, cfg.clone()).unwrap();
    let client = dfs.client().unwrap();

    // Warm write.
    client
        .write_file("/before", &random_bytes(cfg.block_size, 1))
        .unwrap();

    // Kill one datanode's host outright.
    dfs.cluster().kill_host(dfs.datanode_host(0));
    // Give the NameNode a chance to notice via missed heartbeats.
    std::thread::sleep(cfg.dn_timeout + cfg.heartbeat);

    let data = random_bytes(3 * cfg.block_size, 2);
    client.write_file("/after-failure", &data).unwrap();
    assert_eq!(client.read_file("/after-failure").unwrap(), data);
    dfs.stop();
}

#[test]
fn read_falls_back_to_surviving_replicas() {
    let cfg = small_cfg(HdfsConfig::socket());
    let dfs = MiniDfs::start(model::IPOIB_QDR, 4, cfg.clone()).unwrap();
    let client = dfs.client().unwrap();
    let data = random_bytes(cfg.block_size, 3);
    client.write_file("/durable", &data).unwrap();

    // Kill the first replica holder of the block.
    let located = client.get_block_locations("/durable").unwrap();
    let first_dn = located[0].targets[0].id;
    let idx = dfs
        .datanodes()
        .iter()
        .position(|dn| dn.id() == first_dn)
        .expect("replica datanode present");
    dfs.cluster().kill_host(dfs.datanode_host(idx));

    assert_eq!(
        client.read_file("/durable").unwrap(),
        data,
        "must read from replica 2 or 3"
    );
    dfs.stop();
}

#[test]
fn rpcoib_hdfs_records_table1_call_mix() {
    // The RPC call mix of a write (create, addBlock, complete,
    // blockReceived, heartbeats) is the input to the Table I harness.
    let dfs = MiniDfs::start(model::IPOIB_QDR, 3, small_cfg(HdfsConfig::socket())).unwrap();
    let client = dfs.client().unwrap();
    client
        .write_file("/mix", &random_bytes(150 * 1024, 5))
        .unwrap();
    let metrics = client.rpc().metrics().snapshot();
    let methods: Vec<&str> = metrics
        .iter()
        .filter(|((p, _), _)| p == "hdfs.ClientProtocol")
        .map(|((_, m), _)| m.as_str())
        .collect();
    for expected in ["create", "addBlock", "complete"] {
        assert!(
            methods.contains(&expected),
            "missing {expected} in {methods:?}"
        );
    }
    // The server observed DatanodeProtocol traffic too.
    let nn_metrics = dfs.namenode().metrics().snapshot();
    assert!(nn_metrics
        .iter()
        .any(|((p, m), _)| p == "hdfs.DatanodeProtocol" && m == "blockReceived"));
    dfs.stop();
}

#[test]
fn range_reads_cross_block_boundaries() {
    let cfg = small_cfg(HdfsConfig::socket());
    let block = cfg.block_size as u64;
    let dfs = MiniDfs::start(model::IPOIB_QDR, 3, cfg).unwrap();
    let client = dfs.client().unwrap();
    let data = random_bytes(3 * block as usize + 500, 21);
    client.write_file("/ranged", &data).unwrap();

    // Within one block.
    assert_eq!(
        client.read_range("/ranged", 10, 100).unwrap(),
        &data[10..110]
    );
    // Spanning a block boundary.
    let span = client.read_range("/ranged", block - 50, 200).unwrap();
    assert_eq!(span, &data[(block - 50) as usize..(block + 150) as usize]);
    // Tail read past EOF is truncated, not an error.
    let tail = client
        .read_range("/ranged", data.len() as u64 - 10, 1000)
        .unwrap();
    assert_eq!(tail, &data[data.len() - 10..]);
    // Fully past EOF is empty.
    assert!(client
        .read_range("/ranged", data.len() as u64 + 5, 10)
        .unwrap()
        .is_empty());
    dfs.stop();
}

#[test]
fn streaming_reader_matches_bulk_read() {
    use std::io::Read;
    let cfg = small_cfg(HdfsConfig::socket());
    let dfs = MiniDfs::start(model::IPOIB_QDR, 3, cfg).unwrap();
    let client = dfs.client().unwrap();
    let data = random_bytes(150 * 1024, 33);
    client.write_file("/streamed", &data).unwrap();

    let mut reader = client.open("/streamed").unwrap();
    assert_eq!(reader.len(), data.len() as u64);
    let mut out = Vec::new();
    let mut chunk = [0u8; 1000];
    loop {
        let n = reader.read(&mut chunk).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(out, data);
    assert!(client.open("/no-such-file").is_err());
    dfs.stop();
}

#[test]
fn write_survives_network_partition_to_datanode() {
    let cfg = small_cfg(HdfsConfig::socket());
    let dfs = MiniDfs::start(model::IPOIB_QDR, 5, cfg.clone()).unwrap();
    let client = dfs.client().unwrap();
    client
        .write_file("/pre", &random_bytes(cfg.block_size, 1))
        .unwrap();

    // Cut the client host <-> first datanode host link only. The datanode
    // keeps heartbeating (NameNode link intact), so only the client's
    // pipeline exclusion can route around it.
    let cluster = dfs.cluster();
    let client_node = cluster.eth_node(simnet::Host(1));
    let dn_node = cluster.eth_node(dfs.datanode_host(0));
    cluster.eth().partition(client_node, dn_node);

    let data = random_bytes(2 * cfg.block_size, 2);
    client.write_file("/partitioned", &data).unwrap();
    assert_eq!(client.read_file("/partitioned").unwrap(), data);

    cluster.eth().heal(client_node, dn_node);
    dfs.stop();
}

#[test]
fn under_replicated_blocks_are_re_replicated() {
    let mut cfg = small_cfg(HdfsConfig::socket());
    cfg.dn_timeout = std::time::Duration::from_millis(900);
    let dfs = MiniDfs::start(model::IPOIB_QDR, 5, cfg.clone()).unwrap();
    let client = dfs.client().unwrap();
    let data = random_bytes(2 * cfg.block_size, 77);
    client.write_file("/precious", &data).unwrap();
    assert_eq!(dfs.namenode().under_replicated_count(), 0);

    // Kill one replica holder.
    let located = client.get_block_locations("/precious").unwrap();
    let victim = located[0].targets[0].id;
    let idx = dfs
        .datanodes()
        .iter()
        .position(|dn| dn.id() == victim)
        .unwrap();
    dfs.cluster().kill_host(dfs.datanode_host(idx));

    // The NameNode must notice (heartbeat timeout), hand replication
    // commands to surviving holders, and the copies must land.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        // The dead node must be counted as under-replication first.
        if dfs.namenode().under_replicated_count() == 0 && dfs.namenode().live_datanode_count() == 4
        {
            // Verify the new replicas are real: every block has 3 *live*
            // holders and the data reads back.
            let located = client.get_block_locations("/precious").unwrap();
            let all_healthy = located
                .iter()
                .all(|lb| lb.targets.iter().filter(|t| t.id != victim).count() >= 3);
            if all_healthy {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "re-replication did not complete: {} under-replicated",
            dfs.namenode().under_replicated_count()
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert_eq!(client.read_file("/precious").unwrap(), data);
    dfs.stop();
}

#[test]
fn fsck_reports_health() {
    let cfg = small_cfg(HdfsConfig::socket());
    let dfs = MiniDfs::start(model::IPOIB_QDR, 4, cfg.clone()).unwrap();
    let client = dfs.client().unwrap();
    client.mkdirs("/a/b").unwrap();
    client
        .write_file("/a/b/one", &random_bytes(cfg.block_size + 10, 1))
        .unwrap();
    client
        .write_file("/a/b/two", &random_bytes(100, 2))
        .unwrap();

    let report = dfs.namenode().fsck();
    assert_eq!(report.files, 2);
    assert_eq!(report.directories, 2);
    assert_eq!(report.blocks, 3, "2 blocks + 1 block");
    assert_eq!(report.total_bytes, (cfg.block_size + 10 + 100) as u64);
    assert_eq!(report.live_datanodes, 4);
    assert_eq!(report.under_replicated, 0);
    assert_eq!(report.missing, 0);
    dfs.stop();
}

#[test]
fn expired_leases_are_recovered() {
    let cfg = HdfsConfig {
        lease_timeout: std::time::Duration::from_millis(400),
        ..small_cfg(HdfsConfig::socket())
    };
    let dfs = MiniDfs::start(model::IPOIB_QDR, 3, cfg.clone()).unwrap();
    let client = dfs.client().unwrap();

    // Open a file and "crash" without completing it.
    {
        use std::io::Write;
        let mut writer = client.create("/abandoned").unwrap();
        writer.write_all(&random_bytes(cfg.block_size, 8)).unwrap();
        std::mem::forget(writer); // never close()
    }
    assert_eq!(dfs.namenode().lease_count(), 1);

    // Heartbeats drive lease recovery once the lease expires.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while dfs.namenode().lease_count() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "lease never recovered"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    // The file was force-completed with whatever blocks had been written.
    let info = client.get_file_info("/abandoned").unwrap().unwrap();
    assert_eq!(info.len, cfg.block_size as u64);
    assert_eq!(
        client.read_file("/abandoned").unwrap().len(),
        cfg.block_size
    );
    // A renewed lease, by contrast, stays alive: create and keep renewing.
    let _writer = client.create("/active").unwrap();
    for _ in 0..4 {
        client.renew_lease("client").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(150));
    }
    assert_eq!(
        dfs.namenode().lease_count(),
        1,
        "renewed lease must survive"
    );
    dfs.stop();
}

#[test]
fn read_fails_over_from_corrupt_replica() {
    let dfs = MiniDfs::start(model::IPOIB_QDR, 4, small_cfg(HdfsConfig::socket())).unwrap();
    let client = dfs.client().unwrap();
    let data = random_bytes(48 * 1024, 77); // single block, 3 replicas
    client.write_file("/checked", &data).unwrap();

    let lb = &client.get_block_locations("/checked").unwrap()[0];
    assert!(lb.targets.len() >= 2, "need replicas to fail over between");

    // Corrupt the replica on the FIRST target — the one the client tries
    // first — so the read must detect the mismatch and fail over.
    let first_dn = dfs
        .datanodes()
        .iter()
        .find(|dn| dn.id() == lb.targets[0].id)
        .expect("first target datanode");
    assert!(first_dn.corrupt_block(lb.block));

    let back = client.read_file("/checked").unwrap();
    assert_eq!(back, data, "failover read must return the intact bytes");
    dfs.stop();
}

#[test]
fn read_fails_when_every_replica_is_corrupt() {
    let dfs = MiniDfs::start(model::IPOIB_QDR, 4, small_cfg(HdfsConfig::socket())).unwrap();
    let client = dfs.client().unwrap();
    let data = random_bytes(32 * 1024, 78);
    client.write_file("/doomed", &data).unwrap();

    let lb = &client.get_block_locations("/doomed").unwrap()[0];
    for target in &lb.targets {
        let dn = dfs
            .datanodes()
            .iter()
            .find(|dn| dn.id() == target.id)
            .expect("target datanode");
        assert!(dn.corrupt_block(lb.block));
    }

    let err = client.read_file("/doomed").unwrap_err();
    assert!(
        err.to_string().contains("checksum"),
        "expected a checksum failure, got: {err}"
    );
    dfs.stop();
}

#[test]
fn corrupt_replica_is_re_replicated_from_an_intact_copy() {
    let mut cfg = small_cfg(HdfsConfig::socket());
    cfg.heartbeat = std::time::Duration::from_millis(50);
    let dfs = MiniDfs::start(model::IPOIB_QDR, 4, cfg).unwrap();
    let client = dfs.client().unwrap();
    let data = random_bytes(32 * 1024, 79);
    client.write_file("/healing", &data).unwrap();

    let lb = &client.get_block_locations("/healing").unwrap()[0];
    let replicas_before = lb.targets.len();
    let victim = dfs
        .datanodes()
        .iter()
        .find(|dn| dn.id() == lb.targets[0].id)
        .expect("target datanode");
    assert!(victim.corrupt_block(lb.block));

    // The victim's next block report omits the corrupt replica (reports
    // are authoritative), the NameNode sees the block under-replicated,
    // and an intact holder pushes a fresh copy — possibly back onto the
    // victim, overwriting the bad bytes. Wait for the end state: full
    // replication with every listed replica passing verification.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let lb = &client.get_block_locations("/healing").unwrap()[0];
        let healed = lb.targets.len() >= replicas_before
            && lb.targets.iter().all(|t| {
                dfs.datanodes()
                    .iter()
                    .find(|dn| dn.id() == t.id)
                    .is_some_and(|dn| dn.block_is_intact(lb.block) == Some(true))
            });
        if healed {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "block never healed");
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert_eq!(client.read_file("/healing").unwrap(), data);
    dfs.stop();
}
