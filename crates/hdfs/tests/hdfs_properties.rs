//! Property tests: files of arbitrary sizes (straddling every block
//! boundary case) round-trip through mini-HDFS, and range reads agree
//! with slices of the whole file.

use std::sync::OnceLock;

use mini_hdfs::{HdfsConfig, MiniDfs};
use proptest::prelude::*;

const BLOCK: usize = 32 * 1024;

fn dfs() -> &'static MiniDfs {
    static DFS: OnceLock<MiniDfs> = OnceLock::new();
    DFS.get_or_init(|| {
        let cfg = HdfsConfig {
            block_size: BLOCK,
            chunk: 8 * 1024,
            ..HdfsConfig::socket()
        };
        MiniDfs::start(simnet::model::TEN_GIG_E, 3, cfg).expect("cluster")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any file size — empty, sub-block, exact multiples, off-by-one —
    /// reads back byte-identical.
    #[test]
    fn files_roundtrip(
        // Bias sizes toward block boundaries.
        base in 0usize..3,
        delta in -1isize..2,
        fill in any::<u8>(),
        tag in 0u32..1_000_000,
    ) {
        let size = (base * BLOCK).saturating_add_signed(delta);
        let data = vec![fill; size];
        let path = format!("/prop/file-{tag}-{size}");
        let client = dfs().client().unwrap();
        client.mkdirs("/prop").unwrap();
        client.write_file(&path, &data).unwrap();
        let back = client.read_file(&path).unwrap();
        prop_assert_eq!(back, data);
        let info = client.get_file_info(&path).unwrap().unwrap();
        prop_assert_eq!(info.len, size as u64);
        client.delete(&path).unwrap();
    }

    /// read_range(offset, len) == whole[offset..offset+len] for arbitrary
    /// in- and out-of-bounds ranges.
    #[test]
    fn range_reads_agree_with_slices(
        offset in 0u64..(3 * BLOCK as u64 + 100),
        len in 0u64..(2 * BLOCK as u64),
        tag in 0u32..1_000_000,
    ) {
        let size = 2 * BLOCK + 777;
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let path = format!("/prop/ranged-{tag}");
        let client = dfs().client().unwrap();
        client.mkdirs("/prop").unwrap();
        client.write_file(&path, &data).unwrap();

        let got = client.read_range(&path, offset, len).unwrap();
        let start = (offset as usize).min(size);
        let end = (offset as usize).saturating_add(len as usize).min(size);
        prop_assert_eq!(got, data[start..end].to_vec());
        client.delete(&path).unwrap();
    }
}
