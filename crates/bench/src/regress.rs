//! Baseline comparison for `bench --check`: fail when p99 regresses
//! beyond a configurable tolerance.
//!
//! Rows are matched by a composite key (`transport` plus whichever sweep
//! axis the figure uses — `payload`, `mix`, `handlers`, or the shard
//! sweep's `point`), so adding new rows to a sweep never breaks an old
//! baseline; only rows the baseline *has* must still exist and stay
//! within tolerance.

use crate::json::Json;

/// Result of one baseline comparison.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Rows compared (present in both baseline and current).
    pub compared: usize,
    /// Human-readable failure descriptions; empty means the check passed.
    pub failures: Vec<String>,
}

impl CheckOutcome {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The identity of a row within its figure: transport + sweep axis.
fn row_key(row: &Json) -> Option<String> {
    let transport = row.get("transport")?.as_str()?;
    for axis in ["payload", "mix", "handlers", "point"] {
        if let Some(v) = row.get(axis) {
            let v = match v {
                Json::U64(n) => n.to_string(),
                Json::Str(s) => s.clone(),
                _ => continue,
            };
            return Some(format!("{transport}/{axis}={v}"));
        }
    }
    None
}

/// Compare `current` against `baseline` (both full `BENCH_*.json`
/// documents of the same figure). A row fails when its current `p99_ns`
/// exceeds the baseline's by more than `tolerance_pct` percent, or when
/// a baseline row disappeared from the current run.
pub fn check_regression(
    current: &Json,
    baseline: &Json,
    tolerance_pct: u64,
) -> Result<CheckOutcome, String> {
    let fig_cur = current
        .get("figure")
        .and_then(Json::as_str)
        .ok_or("current run has no figure field")?;
    let fig_base = baseline
        .get("figure")
        .and_then(Json::as_str)
        .ok_or("baseline has no figure field")?;
    if fig_cur != fig_base {
        return Err(format!(
            "figure mismatch: current is {fig_cur}, baseline is {fig_base}"
        ));
    }
    let rows = |doc: &Json| -> Result<Vec<Json>, String> {
        Ok(doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("missing rows array")?
            .to_vec())
    };
    let current_rows = rows(current)?;
    let baseline_rows = rows(baseline)?;

    let mut outcome = CheckOutcome {
        compared: 0,
        failures: Vec::new(),
    };
    for base_row in &baseline_rows {
        let Some(key) = row_key(base_row) else {
            continue;
        };
        let Some(cur_row) = current_rows
            .iter()
            .find(|r| row_key(r).as_deref() == Some(key.as_str()))
        else {
            outcome.failures.push(format!(
                "{key}: present in baseline but missing from current run"
            ));
            continue;
        };
        let base_p99 = base_row.get("p99_ns").and_then(Json::as_u64);
        let cur_p99 = cur_row.get("p99_ns").and_then(Json::as_u64);
        let (Some(base_p99), Some(cur_p99)) = (base_p99, cur_p99) else {
            outcome.failures.push(format!("{key}: missing p99_ns"));
            continue;
        };
        outcome.compared += 1;
        // Integer-only: cur > base * (100 + tol) / 100, without division.
        if cur_p99 * 100 > base_p99 * (100 + tolerance_pct) {
            outcome.failures.push(format!(
                "{key}: p99 regressed {base_p99} ns -> {cur_p99} ns (> +{tolerance_pct}%)"
            ));
        }
    }
    if outcome.compared == 0 && outcome.failures.is_empty() {
        return Err("no comparable rows between baseline and current run".into());
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc(fig: &str, rows: &[(&str, u64, u64)]) -> Json {
        let rows = rows
            .iter()
            .map(|(t, payload, p99)| {
                Json::obj()
                    .field("transport", *t)
                    .field("payload", *payload)
                    .field("p99_ns", *p99)
            })
            .collect();
        Json::obj()
            .field("figure", fig)
            .field("rows", Json::Arr(rows))
    }

    #[test]
    fn within_tolerance_passes() {
        let base = doc("pingpong", &[("socket", 512, 1000), ("verbs", 512, 400)]);
        let cur = doc("pingpong", &[("socket", 512, 1200), ("verbs", 512, 380)]);
        let out = check_regression(&cur, &base, 25).unwrap();
        assert_eq!(out.compared, 2);
        assert!(out.passed(), "{:?}", out.failures);
    }

    #[test]
    fn beyond_tolerance_fails() {
        let base = doc("pingpong", &[("socket", 512, 1000)]);
        let cur = doc("pingpong", &[("socket", 512, 1251)]);
        let out = check_regression(&cur, &base, 25).unwrap();
        assert!(!out.passed());
        assert!(out.failures[0].contains("regressed"));
    }

    #[test]
    fn missing_row_fails_and_new_rows_are_ignored() {
        let base = doc("pingpong", &[("socket", 512, 1000)]);
        let cur = doc("pingpong", &[("socket", 4096, 900), ("verbs", 512, 100)]);
        let out = check_regression(&cur, &base, 25).unwrap();
        assert!(!out.passed());
        assert!(out.failures[0].contains("missing"));
    }

    #[test]
    fn figure_mismatch_is_an_error() {
        let base = doc("pingpong", &[("socket", 512, 1000)]);
        let cur = doc("bufpool", &[("socket", 512, 1000)]);
        assert!(check_regression(&cur, &base, 25).is_err());
    }

    #[test]
    fn parses_real_shape() {
        let text = r#"{"figure": "handlers", "rows": [
            {"transport": "verbs", "handlers": 4, "p99_ns": 5000}
        ]}"#;
        let cur = parse(text).unwrap();
        let out = check_regression(&cur, &cur, 0).unwrap();
        assert_eq!(out.compared, 1);
        assert!(out.passed());
    }
}
