//! Figure 7: HDFS write latency vs file size under the paper's seven
//! transport configurations, crossing the HDFS data plane (1GigE /
//! IPoIB / RDMA "HDFSoIB") with the RPC plane (1GigE / IPoIB / RPCoIB).
//!
//! Paper setup: 32 DataNodes (one disk each), replication 3, NameNode
//! and client on separate nodes, files 1–5 GB. Here DataNode count and
//! file sizes scale down ("GB*" below); the ordering — HDFSoIB-RPCoIB
//! fastest, ~10% ahead of HDFSoIB-RPC(IPoIB) — is the reproduced result.

use std::time::Instant;

use mini_hdfs::{HdfsConfig, MiniDfs};
use rand::{rngs::StdRng, RngCore, SeedableRng};
use rpcoib::RpcConfig;
use rpcoib_bench::harness::{print_table, BenchScale};
use simnet::{model, NetworkModel};

struct Config7 {
    name: &'static str,
    eth: NetworkModel,
    hdfs: HdfsConfig,
}

fn configs() -> Vec<Config7> {
    let base = |rpc_ib: bool, data_ib: bool| -> HdfsConfig {
        HdfsConfig {
            rpc: if rpc_ib {
                RpcConfig::rpcoib()
            } else {
                RpcConfig::socket()
            },
            data_rdma: data_ib,
            block_size: 1 << 20,
            ..HdfsConfig::default()
        }
    };
    vec![
        Config7 {
            name: "HDFS(1GigE)-RPC(1GigE)",
            eth: model::GIG_E,
            hdfs: base(false, false),
        },
        Config7 {
            name: "HDFS(1GigE)-RPCoIB",
            eth: model::GIG_E,
            hdfs: base(true, false),
        },
        Config7 {
            name: "HDFS(IPoIB)-RPC(IPoIB)",
            eth: model::IPOIB_QDR,
            hdfs: base(false, false),
        },
        Config7 {
            name: "HDFS(IPoIB)-RPCoIB",
            eth: model::IPOIB_QDR,
            hdfs: base(true, false),
        },
        Config7 {
            name: "HDFSoIB-RPC(1GigE)",
            eth: model::GIG_E,
            hdfs: base(false, true),
        },
        Config7 {
            name: "HDFSoIB-RPC(IPoIB)",
            eth: model::IPOIB_QDR,
            hdfs: base(false, true),
        },
        Config7 {
            name: "HDFSoIB-RPCoIB",
            eth: model::IPOIB_QDR,
            hdfs: base(true, true),
        },
    ]
}

fn main() {
    let scale = BenchScale::from_args();
    let datanodes = scale.pick(4, 8, 32);
    let gb_unit: usize = scale.pick(2 << 20, 4 << 20, 64 << 20); // bytes per "GB*"
    let sizes: Vec<usize> = (1..=5).collect();

    let mut rng = StdRng::seed_from_u64(99);
    let mut payload = vec![0u8; 5 * gb_unit];
    rng.fill_bytes(&mut payload);

    let mut rows: Vec<Vec<String>> = sizes.iter().map(|s| vec![format!("{s} GB*")]).collect();

    let reps = scale.pick(2, 3, 5);
    let mut header: Vec<String> = vec!["File size".into()];
    for cfg in configs() {
        header.push(cfg.name.into());
        println!("measuring {} ...", cfg.name);
        let dfs = MiniDfs::start(cfg.eth, datanodes, cfg.hdfs.clone()).expect("cluster");
        let client = dfs.client().expect("client");
        // Warm the data-plane connection pools before timing.
        client
            .write_file("/warmup", &payload[..gb_unit / 4])
            .expect("warmup write");
        for (i, s) in sizes.iter().enumerate() {
            let data = &payload[..s * gb_unit];
            let mut samples: Vec<f64> = (0..reps)
                .map(|r| {
                    let start = Instant::now();
                    client
                        .write_file(&format!("/bench-{s}-{r}"), data)
                        .expect("write");
                    start.elapsed().as_secs_f64()
                })
                .collect();
            samples.sort_by(|a, b| a.total_cmp(b));
            rows[i].push(format!("{:.2}", samples[samples.len() / 2]));
        }
        dfs.stop();
    }

    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        &format!("Figure 7: HDFS write time (seconds), {datanodes} DataNodes, replication 3"),
        &header_refs,
        &rows,
    );
    println!(
        "\npaper: HDFSoIB-RPCoIB fastest; ~10% faster than HDFSoIB-RPC(IPoIB); \
         socket-HDFS configurations ordered 1GigE slowest, then IPoIB"
    );
}
