//! Figure 6(a): RandomWriter and Sort job execution time under default
//! Hadoop RPC over IPoIB vs RPCoIB, swept over data size.
//!
//! The paper runs 32/64/128 GB on 1 master + 64 slaves and reports
//! RandomWriter improving 9.1→12% and Sort 12.3→15.2% as data grows.
//! Scaled here: worker count and data sizes shrink (see `--full` for the
//! 64-slave shape), the improvement *trend* (Sort > RandomWriter, both
//! growing with data size) is what reproduces.

use std::time::{Duration, Instant};

use mini_mapred::jobs::randomwriter;
use mini_mapred::{JobConf, JobKind, MiniMr, MrConfig};
use rpcoib_bench::harness::{improvement_pct, print_table, BenchScale};
use simnet::model;

struct RunResult {
    rw_secs: f64,
    sort_secs: f64,
}

fn run_jobs(cfg: MrConfig, workers: usize, maps: u32, bytes_per_map: u64) -> RunResult {
    let mr = MiniMr::start(model::IPOIB_QDR, workers, cfg).expect("cluster");
    let jobs = mr.job_client().expect("job client");
    let dfs = mr.dfs_client().expect("dfs client");

    let rw = JobConf {
        name: "randomwriter".into(),
        kind: JobKind::RandomWriter,
        input: Vec::new(),
        output: "/rw".into(),
        n_reduces: 0,
        n_maps: maps,
        params: vec![
            (
                randomwriter::BYTES_PER_MAP.into(),
                bytes_per_map.to_string(),
            ),
            (randomwriter::SEED.into(), "7".into()),
        ],
    };
    let start = Instant::now();
    jobs.run(&rw, Duration::from_secs(1800))
        .expect("randomwriter");
    let rw_secs = start.elapsed().as_secs_f64();

    let input: Vec<String> = dfs
        .list("/rw")
        .expect("list")
        .iter()
        .map(|s| s.path.clone())
        .collect();
    let sort = JobConf {
        name: "sort".into(),
        kind: JobKind::Sort,
        input,
        output: "/sorted".into(),
        n_reduces: (workers * 2) as u32,
        n_maps: 0,
        params: Vec::new(),
    };
    let start = Instant::now();
    jobs.run(&sort, Duration::from_secs(1800)).expect("sort");
    let sort_secs = start.elapsed().as_secs_f64();

    mr.stop();
    RunResult { rw_secs, sort_secs }
}

fn main() {
    let scale = BenchScale::from_args();
    let workers = scale.pick(4, 8, 64);
    // "32 / 64 / 128 GB" scaled down; maps per the paper's 8-per-node.
    let data_sizes: Vec<(&str, u64)> = match scale {
        BenchScale::Quick => vec![("32GB*", 2 << 20), ("64GB*", 4 << 20)],
        BenchScale::Normal => vec![("32GB*", 4 << 20), ("64GB*", 8 << 20), ("128GB*", 16 << 20)],
        BenchScale::Full => vec![
            ("32GB*", 64 << 20),
            ("64GB*", 128 << 20),
            ("128GB*", 256 << 20),
        ],
    };

    let mut cfg_ipoib = MrConfig::socket();
    cfg_ipoib.hdfs.block_size = 512 * 1024;
    let mut cfg_rpcoib = MrConfig::rpc_ib();
    cfg_rpcoib.hdfs.block_size = 512 * 1024;

    // Like Hadoop, splits are fixed-size: more data means more map tasks
    // (the paper: "with increase in data size, more maps and reduces
    // cause more RPC invocations").
    let split_bytes: u64 = 512 * 1024;

    // Best-of-N: on an oversubscribed host, scheduler noise only ever
    // inflates a run, so the minimum is the cleanest estimate.
    let reps = scale.pick(1, 2, 3);
    let best = |cfg: &MrConfig, maps: u32| -> RunResult {
        (0..reps)
            .map(|_| run_jobs(cfg.clone(), workers, maps, split_bytes))
            .reduce(|a, b| RunResult {
                rw_secs: a.rw_secs.min(b.rw_secs),
                sort_secs: a.sort_secs.min(b.sort_secs),
            })
            .expect("at least one rep")
    };

    let mut rows = Vec::new();
    for (label, total_bytes) in &data_sizes {
        let maps = (total_bytes / split_bytes).max(1) as u32;
        println!("running {label} ({total_bytes} bytes, {maps} maps) over IPoIB...");
        let ipoib = best(&cfg_ipoib, maps);
        println!("running {label} over RPCoIB...");
        let rpcoib = best(&cfg_rpcoib, maps);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", ipoib.rw_secs),
            format!("{:.2}", rpcoib.rw_secs),
            format!("{:.1}%", improvement_pct(ipoib.rw_secs, rpcoib.rw_secs)),
            format!("{:.2}", ipoib.sort_secs),
            format!("{:.2}", rpcoib.sort_secs),
            format!("{:.1}%", improvement_pct(ipoib.sort_secs, rpcoib.sort_secs)),
        ]);
    }
    print_table(
        &format!("Figure 6(a): RandomWriter & Sort on {workers} workers (seconds; * = scaled)"),
        &[
            "Data",
            "RW IPoIB",
            "RW RPCoIB",
            "RW gain",
            "Sort IPoIB",
            "Sort RPCoIB",
            "Sort gain",
        ],
        &rows,
    );
    println!(
        "\npaper (64 slaves): RandomWriter gains 9.1%->12%, Sort gains 12.3%->15.2% as data \
         grows; Sort > RandomWriter because the reduce phase is more RPC-intensive"
    );
}
