//! Figure 5(a): ping-pong latency, single server (8 handlers) / single
//! client, payload 1 B … 4 KB, for RPC-10GigE, RPC-IPoIB and RPCoIB.
//! Also prints the §IV-B headline reductions (paper: 42–49% vs 10GigE,
//! 46–50% vs IPoIB) and the 1GigE speedup (paper: 1.42–2.48x).

use rpcoib_bench::harness::{improvement_pct, median_us, print_table, BenchScale};
use rpcoib_bench::pingpong::{latency_samples, setup_pingpong, BenchConfig};

fn main() {
    let scale = BenchScale::from_args();
    let iters = scale.pick(50, 300, 2000);
    let warmup = scale.pick(10, 50, 200);
    let payloads: &[usize] = &[1, 4, 16, 64, 256, 1024, 4096];

    let configs = [
        BenchConfig::rpc_1gige(),
        BenchConfig::rpc_10gige(),
        BenchConfig::rpc_ipoib(),
        BenchConfig::rpcoib(),
    ];

    // medians[config][payload]
    let mut medians = vec![vec![0.0f64; payloads.len()]; configs.len()];
    for (ci, cfg) in configs.iter().enumerate() {
        let env = setup_pingpong(cfg);
        for (pi, &payload) in payloads.iter().enumerate() {
            let mut samples = latency_samples(&env, cfg, payload, warmup, iters);
            medians[ci][pi] = median_us(&mut samples);
        }
        env.server.stop();
    }

    let mut rows = Vec::new();
    for (pi, payload) in payloads.iter().enumerate() {
        let mut row = vec![format!("{payload}")];
        for median in &medians {
            row.push(format!("{:.1}", median[pi]));
        }
        row.push(format!(
            "{:.0}%",
            improvement_pct(medians[1][pi], medians[3][pi])
        ));
        row.push(format!(
            "{:.0}%",
            improvement_pct(medians[2][pi], medians[3][pi])
        ));
        row.push(format!("{:.2}x", medians[0][pi] / medians[3][pi]));
        rows.push(row);
    }
    print_table(
        "Figure 5(a): RPC ping-pong latency (us, median)",
        &[
            "Payload (B)",
            "RPC-1GigE",
            "RPC-10GigE",
            "RPC-IPoIB",
            "RPCoIB",
            "vs 10GigE",
            "vs IPoIB",
            "vs 1GigE",
        ],
        &rows,
    );
    println!(
        "\npaper: RPCoIB cuts latency 42-49% vs 10GigE and 46-50% vs IPoIB \
         (1-byte 39us, 4KB 52us); speedup over 1GigE 1.42-2.48x"
    );
}
