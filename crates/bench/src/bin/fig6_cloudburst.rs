//! Figure 6(b): CloudBurst application time (Alignment job, Filtering
//! job, Total) under default Hadoop RPC over IPoIB vs RPCoIB, on the
//! paper's 1 master + 8 slaves.
//!
//! The paper's run: Alignment with 240 maps / 48 reduces, Filtering with
//! 24 / 24; RPCoIB improves Alignment by 10.7% and the total by ~10%.
//! The 10:1 job-size ratio is kept; absolute sizes are scaled.

use std::time::{Duration, Instant};

use mini_mapred::jobs::cloudburst;
use mini_mapred::{JobConf, JobKind, MiniMr, MrConfig};
use rpcoib_bench::harness::{improvement_pct, print_table, BenchScale};
use simnet::model;

struct CbTimes {
    align: f64,
    filter: f64,
}

fn run_cloudburst(cfg: MrConfig, scale: BenchScale) -> CbTimes {
    let workers = 8;
    let mr = MiniMr::start(model::IPOIB_QDR, workers, cfg).expect("cluster");
    let jobs = mr.job_client().expect("job client");
    let dfs = mr.dfs_client().expect("dfs client");

    let (genome, read_files, reads_per_file) = match scale {
        BenchScale::Quick => (20_000, 6, 60),
        BenchScale::Normal => (60_000, 12, 120),
        BenchScale::Full => (400_000, 48, 500),
    };
    let (ref_files, reads, ref_path) = cloudburst::generate_input(
        &dfs,
        "/cb",
        genome,
        genome / 8, // 8 reference chunks
        read_files,
        reads_per_file,
        36,
        1234,
    )
    .expect("generate input");
    let mut align_input = ref_files;
    align_input.extend(reads);

    // Alignment: the big job (10x the reduce width of Filtering).
    let align = JobConf {
        name: "cb-align".into(),
        kind: JobKind::CloudburstAlign,
        input: align_input,
        output: "/cb-align".into(),
        n_reduces: (workers * 2) as u32,
        n_maps: 0,
        params: vec![
            (cloudburst::KMER.into(), "12".into()),
            (cloudburst::MAX_MISMATCHES.into(), "2".into()),
            (cloudburst::REF_PATH.into(), ref_path),
        ],
    };
    let start = Instant::now();
    jobs.run(&align, Duration::from_secs(1800))
        .expect("alignment");
    let align_secs = start.elapsed().as_secs_f64();

    let filter_input: Vec<String> = dfs
        .list("/cb-align")
        .expect("list")
        .iter()
        .map(|s| s.path.clone())
        .collect();
    let filter = JobConf {
        name: "cb-filter".into(),
        kind: JobKind::CloudburstFilter,
        input: filter_input,
        output: "/cb-best".into(),
        n_reduces: 2,
        n_maps: 0,
        params: Vec::new(),
    };
    let start = Instant::now();
    jobs.run(&filter, Duration::from_secs(1800))
        .expect("filtering");
    let filter_secs = start.elapsed().as_secs_f64();

    mr.stop();
    CbTimes {
        align: align_secs,
        filter: filter_secs,
    }
}

fn main() {
    let scale = BenchScale::from_args();
    println!("CloudBurst over IPoIB (default RPC)...");
    let ipoib = run_cloudburst(MrConfig::socket(), scale);
    println!("CloudBurst over RPCoIB...");
    let rpcoib = run_cloudburst(MrConfig::rpc_ib(), scale);

    let rows = vec![
        vec![
            "Alignment".into(),
            format!("{:.2}", ipoib.align),
            format!("{:.2}", rpcoib.align),
            format!("{:.1}%", improvement_pct(ipoib.align, rpcoib.align)),
        ],
        vec![
            "Filtering".into(),
            format!("{:.2}", ipoib.filter),
            format!("{:.2}", rpcoib.filter),
            format!("{:.1}%", improvement_pct(ipoib.filter, rpcoib.filter)),
        ],
        vec![
            "Total".into(),
            format!("{:.2}", ipoib.align + ipoib.filter),
            format!("{:.2}", rpcoib.align + rpcoib.filter),
            format!(
                "{:.1}%",
                improvement_pct(ipoib.align + ipoib.filter, rpcoib.align + rpcoib.filter)
            ),
        ],
    ];
    print_table(
        "Figure 6(b): CloudBurst on 1 master + 8 slaves (seconds)",
        &["Phase", "Hadoop (IPoIB)", "Hadoop (RPCoIB)", "gain"],
        &rows,
    );
    println!("\npaper: Alignment gains 10.7%, overall ~10%; the bigger job gains more");
}
