//! Ablation A3: what pre-registration buys.
//!
//! RPCoIB's pool registers its buffers with the HCA at startup
//! (Section III-B: "pre-allocated and pre-registered when the RPCoIB
//! library loads"). This ablation sweeps the prefill depth and reports
//! the cold-start tail: with no prefill, early calls pay inline
//! registration (~60 µs per ring buffer at our QDR model's cost) on the
//! receive path; with a full prefill the first call is already
//! steady-state.

use std::time::Instant;

use rpcoib::{Client, RpcConfig};
use rpcoib_bench::harness::{print_table, BenchScale};
use rpcoib_bench::pingpong::{setup_pingpong, BenchConfig};
use simnet::model;
use wire::BytesWritable;

fn main() {
    let scale = BenchScale::from_args();
    let calls = scale.pick(60, 200, 1000);

    let mut rows = Vec::new();
    for prefill in [0usize, 2, 8, 40] {
        let cfg = BenchConfig {
            name: "prefill",
            model: model::IB_QDR_VERBS,
            rpc: RpcConfig {
                prefill_per_class: prefill,
                ..RpcConfig::rpcoib()
            },
        };
        let env = setup_pingpong(&cfg);
        let node = env.fabric.add_node();
        let setup_start = Instant::now();
        let client = Client::new(&env.fabric, node, cfg.rpc.clone()).expect("client");
        let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;
        let body = BytesWritable(vec![3u8; 512]);
        // One call to establish the connection (QP + large-region
        // registration dominate it in every configuration).
        let _: BytesWritable = client
            .call(env.addr, "bench.PingPongProtocol", "pingpong", &body)
            .expect("bootstrap call");
        let misses_after_connect = client.pool_stats().expect("rdma pool").1;
        let mut samples: Vec<f64> = (0..calls)
            .map(|_| {
                let t = Instant::now();
                let _: BytesWritable = client
                    .call(env.addr, "bench.PingPongProtocol", "pingpong", &body)
                    .expect("call");
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        let (hits, misses, _, _) = client.pool_stats().expect("rdma pool");
        let inline_registrations = misses - misses_after_connect;
        samples.sort_by(f64::total_cmp);
        rows.push(vec![
            format!("{prefill}"),
            format!("{setup_ms:.2}"),
            format!("{:.1}", samples[samples.len() / 2]),
            format!("{inline_registrations}"),
            format!("{misses}"),
            format!("{hits}"),
        ]);
        client.shutdown();
        env.server.stop();
    }
    print_table(
        "Ablation A3: pool prefill depth vs cold-start cost (512B ping-pong)",
        &[
            "Prefill/class",
            "client setup (ms)",
            "steady median (us)",
            "inline registrations",
            "total misses",
            "pool hits",
        ],
        &rows,
    );
    println!(
        "\nexpectation: prefill moves registration cost into client setup — with \
         prefill > 0 the call path performs zero inline registrations"
    );
}
