//! Figure 8: HBase YCSB throughput (Kops/sec) vs record count under the
//! paper's five transport configurations, for 100% Get (a), 100% Put (b),
//! and the 50/50 mix (c).
//!
//! Paper setup: 16 region servers + 16 clients, 1 KB records, 100–300 K
//! records, 640 K operations. Scaled here (see `--full`); the ordering —
//! HBaseoIB-RPCoIB on top, with the largest RPC-plane gain on the mix
//! workload (~24% in the paper) — is the reproduced shape.
//!
//! Usage: `fig8_hbase [get|put|mix|all] [--quick|--full]`

use std::sync::Arc;

use mini_hbase::ycsb::{self, Workload};
use mini_hbase::{HBaseConfig, MiniHbase};
use rpcoib::RpcConfig;
use rpcoib_bench::harness::{print_table, BenchScale};
use simnet::{model, Host, NetworkModel};

struct Config8 {
    name: &'static str,
    eth: NetworkModel,
    hbase: HBaseConfig,
}

fn configs() -> Vec<Config8> {
    let base = |ops_ib: bool, rpc_ib: bool| -> HBaseConfig {
        let mut cfg = HBaseConfig {
            ops_rdma: ops_ib,
            rpc: if rpc_ib {
                RpcConfig::rpcoib()
            } else {
                RpcConfig::socket()
            },
            memstore_flush_bytes: 64 * 1024,
            wal_roll_bytes: 32 * 1024,
            ..HBaseConfig::default()
        };
        cfg.hdfs.rpc = cfg.rpc.clone();
        cfg
    };
    vec![
        Config8 {
            name: "HBase(1GigE)-RPC(1GigE)",
            eth: model::GIG_E,
            hbase: base(false, false),
        },
        Config8 {
            name: "HBaseoIB-RPC(1GigE)",
            eth: model::GIG_E,
            hbase: base(true, false),
        },
        Config8 {
            name: "HBase(IPoIB)-RPC(IPoIB)",
            eth: model::IPOIB_QDR,
            hbase: base(false, false),
        },
        Config8 {
            name: "HBaseoIB-RPC(IPoIB)",
            eth: model::IPOIB_QDR,
            hbase: base(true, false),
        },
        Config8 {
            name: "HBaseoIB-RPCoIB",
            eth: model::IPOIB_QDR,
            hbase: base(true, true),
        },
    ]
}

fn run_one(cfg: &Config8, servers: usize, clients: usize, workload: &Workload) -> f64 {
    let hbase = MiniHbase::start(cfg.eth, servers, cfg.hbase.clone()).expect("cluster");
    // Load phase from the dedicated client host.
    let loader = hbase.client().expect("loader");
    ycsb::load(&loader, workload).expect("load");
    loader.shutdown();

    // Run phase: N clients co-located with the region-server hosts (the
    // paper runs 16 clients against 16 region servers).
    let hbase = Arc::new(hbase);
    let ops_per_client = workload.operation_count / clients;
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let hbase = Arc::clone(&hbase);
            let mut wl = workload.clone();
            wl.operation_count = ops_per_client;
            wl.seed = workload.seed.wrapping_add(c as u64 * 31);
            std::thread::spawn(move || {
                let client = hbase
                    .client_on(Host(2 + c % (hbase.regionservers().len())))
                    .expect("client");
                let report = ycsb::run(&client, &wl).expect("run");
                client.shutdown();
                report
            })
        })
        .collect();
    let reports: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    // Aggregate throughput: total ops / wall time of the slowest client.
    let total_ops: usize = reports.iter().map(|r| r.operations).sum();
    let wall = reports.iter().map(|r| r.elapsed).max().unwrap();
    let kops = total_ops as f64 / wall.as_secs_f64() / 1e3;
    hbase.stop();
    kops
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let scale = BenchScale::from_args();

    let servers = scale.pick(3, 4, 16);
    let clients = scale.pick(3, 4, 16);
    let record_counts: Vec<usize> = match scale {
        BenchScale::Quick => vec![500, 1000],
        BenchScale::Normal => vec![1000, 2000, 3000],
        BenchScale::Full => vec![100_000, 200_000, 300_000],
    };
    let ops = scale.pick(2000, 12_000, 640_000);

    type MakeWorkload = fn(usize, usize) -> Workload;
    let workloads: Vec<(&str, MakeWorkload)> = match which {
        "get" => vec![("100% Get", Workload::get_only as MakeWorkload)],
        "put" => vec![("100% Put", Workload::put_only)],
        "mix" => vec![("50% Get / 50% Put", Workload::mixed)],
        _ => vec![
            ("100% Get", Workload::get_only as MakeWorkload),
            ("100% Put", Workload::put_only),
            ("50% Get / 50% Put", Workload::mixed),
        ],
    };

    for (wl_name, make) in workloads {
        let mut rows: Vec<Vec<String>> =
            record_counts.iter().map(|r| vec![format!("{r}")]).collect();
        let mut header: Vec<String> = vec!["Records".into()];
        for cfg in configs() {
            header.push(cfg.name.into());
            for (i, &records) in record_counts.iter().enumerate() {
                println!("{wl_name}: {} @ {records} records ...", cfg.name);
                // Best-of-2: scheduler noise only deflates throughput.
                let kops = (0..2)
                    .map(|_| run_one(&cfg, servers, clients, &make(records, ops)))
                    .fold(0.0f64, f64::max);
                rows[i].push(format!("{kops:.2}"));
            }
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(
            &format!(
                "Figure 8 ({wl_name}): YCSB throughput (Kops/sec), {servers} region servers, \
                 {clients} clients, 1KB records"
            ),
            &header_refs,
            &rows,
        );
    }
    println!(
        "\npaper: HBaseoIB-RPCoIB gains +16% (Put), +6% (Get) and +24% (mix) over \
         HBaseoIB-RPC(IPoIB); Get benefits least because it triggers the least HDFS RPC"
    );
}
