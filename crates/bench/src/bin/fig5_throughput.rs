//! Figure 5(b): ping-pong throughput, single server (8 handlers, 512-byte
//! payload), concurrent clients 8…64 spread uniformly over 8 client
//! nodes — for RPC-10GigE, RPC-IPoIB and RPCoIB.
//! Paper: RPCoIB peaks at ~135 Kops/s, +82% over 10GigE, +64% over IPoIB.

use std::time::Duration;

use rpcoib_bench::harness::{print_table, BenchScale};
use rpcoib_bench::pingpong::{setup_pingpong, throughput_kops, BenchConfig};

fn main() {
    let scale = BenchScale::from_args();
    let window = Duration::from_millis(scale.pick(500, 1500, 4000));
    // Note: the paper's x-axis starts at 8 clients; with the whole
    // cluster simulated on few cores the server saturates earlier, so we
    // extend the axis downward to keep the rise-then-plateau shape
    // visible.
    let client_counts: Vec<usize> = match scale {
        BenchScale::Quick => vec![1, 4, 16, 48],
        _ => vec![1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64],
    };

    let configs = [
        BenchConfig::rpc_10gige(),
        BenchConfig::rpc_ipoib(),
        BenchConfig::rpcoib(),
    ];
    let mut results = vec![vec![0.0f64; client_counts.len()]; configs.len()];
    for (ci, cfg) in configs.iter().enumerate() {
        for (ni, &n) in client_counts.iter().enumerate() {
            let env = setup_pingpong(cfg);
            results[ci][ni] = throughput_kops(&env, cfg, n, 8, 512, window);
            env.server.stop();
        }
    }

    let mut rows = Vec::new();
    for (ni, n) in client_counts.iter().enumerate() {
        rows.push(vec![
            format!("{n}"),
            format!("{:.1}", results[0][ni]),
            format!("{:.1}", results[1][ni]),
            format!("{:.1}", results[2][ni]),
        ]);
    }
    print_table(
        "Figure 5(b): RPC throughput (Kops/sec), 512B payload, 8 handlers",
        &["Clients", "RPC-10GigE", "RPC-IPoIB", "RPCoIB"],
        &rows,
    );

    let peak = |ci: usize| results[ci].iter().cloned().fold(0.0f64, f64::max);
    let (p10, pip, poib) = (peak(0), peak(1), peak(2));
    println!(
        "\npeaks: 10GigE {:.1} Kops/s, IPoIB {:.1} Kops/s, RPCoIB {:.1} Kops/s \
         => +{:.0}% vs 10GigE, +{:.0}% vs IPoIB",
        p10,
        pip,
        poib,
        (poib / p10 - 1.0) * 100.0,
        (poib / pip - 1.0) * 100.0
    );
    println!("paper: peak 135.22 Kops/s, +82% vs 10GigE, +64% vs IPoIB");
}
