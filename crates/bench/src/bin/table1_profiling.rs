//! Table I: RPC invocation profiling during a Sort MapReduce job on
//! 1 master + 8 slaves with the default (socket) Hadoop RPC design.
//!
//! Reports, per `<protocol, method>`: average memory-adjustment count
//! (Algorithm 1 reallocations), average serialization time, and average
//! send time — aggregated across the umbilical, JobTracker, and HDFS
//! client conversations of the whole job, exactly the populations the
//! paper samples.

use std::time::Duration;

use mini_mapred::jobs::randomwriter;
use mini_mapred::{JobConf, JobKind, MiniMr, MrConfig};
use rpcoib::MethodStats;
use rpcoib_bench::harness::{print_table, BenchScale};
use simnet::model;

fn main() {
    let scale = BenchScale::from_args();
    let workers = 8; // the paper's 1 master + 8 slaves
    let maps = scale.pick(4, 8, 16) as u32;
    let bytes_per_map = scale.pick(128 * 1024, 512 * 1024, 4 << 20) as u64;

    let mut cfg = MrConfig::socket();
    cfg.hdfs.block_size = 256 * 1024;
    cfg.heartbeat = Duration::from_millis(100);
    let mr = MiniMr::start(model::IPOIB_QDR, workers, cfg).expect("cluster");
    let jobs = mr.job_client().expect("job client");
    let dfs = mr.dfs_client().expect("dfs client");

    println!("running RandomWriter ({maps} maps x {bytes_per_map} bytes) + Sort on 8 slaves...");
    jobs.run(
        &JobConf {
            name: "randomwriter".into(),
            kind: JobKind::RandomWriter,
            input: Vec::new(),
            output: "/rw".into(),
            n_reduces: 0,
            n_maps: maps,
            params: vec![(
                randomwriter::BYTES_PER_MAP.into(),
                bytes_per_map.to_string(),
            )],
        },
        Duration::from_secs(600),
    )
    .expect("randomwriter");
    let input: Vec<String> = dfs
        .list("/rw")
        .expect("list")
        .iter()
        .map(|s| s.path.clone())
        .collect();
    jobs.run(
        &JobConf {
            name: "sort".into(),
            kind: JobKind::Sort,
            input,
            output: "/sorted".into(),
            n_reduces: 4,
            n_maps: 0,
            params: Vec::new(),
        },
        Duration::from_secs(600),
    )
    .expect("sort");

    // Aggregate client-side metrics across every RPC client the job
    // exercised: umbilical + JobTracker clients on each TaskTracker, and
    // the HDFS clients the tasks used.
    let mut merged: std::collections::BTreeMap<(String, String), MethodStats> =
        std::collections::BTreeMap::new();
    let mut merge = |snapshot: Vec<((String, String), MethodStats)>| {
        for (key, stats) in snapshot {
            let entry = merged.entry(key).or_default();
            entry.calls += stats.calls;
            entry.serialize_ns += stats.serialize_ns;
            entry.send_ns += stats.send_ns;
            entry.adjustments += stats.adjustments;
        }
    };
    for tt in mr.tasktrackers() {
        merge(tt.umbilical_metrics().snapshot());
        merge(tt.jt_metrics().snapshot());
        merge(tt.dfs().rpc().metrics().snapshot());
    }
    merge(dfs.rpc().metrics().snapshot());

    let rows: Vec<Vec<String>> = merged
        .iter()
        .filter(|(_, stats)| stats.calls > 0)
        .map(|((protocol, method), stats)| {
            vec![
                protocol.clone(),
                method.clone(),
                format!("{}", stats.calls),
                format!("{:.1}", stats.avg_adjustments()),
                format!("{:.0}", stats.avg_serialize_us()),
                format!("{:.0}", stats.avg_send_us()),
            ]
        })
        .collect();
    print_table(
        "Table I: RPC invocation profiling in a MapReduce Sort job (default socket RPC)",
        &[
            "Protocol",
            "Method",
            "Calls",
            "Avg Mem Adjustments",
            "Avg Serialization (us)",
            "Avg Send (us)",
        ],
        &rows,
    );
    println!(
        "\npaper: adjustments 2-5 per call; serialization 31-696us; send 19-114us; \
         statusUpdate/commitPending are the adjustment-heavy methods"
    );
    mr.stop();
}
