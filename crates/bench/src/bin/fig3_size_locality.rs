//! Figure 3: message size locality. Traces the serialized request size
//! of three call kinds across a running Sort job — `heartbeat` at the
//! JobTracker, `statusUpdate` at the TaskTracker umbilical, and
//! `getFileInfo` at the NameNode — and maps each to its buffer size
//! class (128 B, 256 B, 512 B, 1 KB, …), showing that consecutive calls
//! of one kind land in the same class.

use std::time::Duration;

use bufpool::{class_capacity, class_for};
use mini_mapred::jobs::randomwriter;
use mini_mapred::{JobConf, JobKind, MiniMr, MrConfig};
use rpcoib_bench::harness::{print_table, BenchScale};
use simnet::model;

fn main() {
    let scale = BenchScale::from_args();
    let mut cfg = MrConfig::socket();
    cfg.rpc.trace_sizes = true;
    cfg.hdfs.rpc.trace_sizes = true;
    cfg.hdfs.block_size = 256 * 1024;
    cfg.heartbeat = Duration::from_millis(100);
    let maps = scale.pick(4, 8, 16) as u32;

    let mr = MiniMr::start(model::IPOIB_QDR, 4, cfg).expect("cluster");
    let jobs = mr.job_client().expect("job client");
    let dfs = mr.dfs_client().expect("dfs client");
    println!("running RandomWriter + Sort to generate call traffic...");
    jobs.run(
        &JobConf {
            name: "randomwriter".into(),
            kind: JobKind::RandomWriter,
            input: Vec::new(),
            output: "/rw".into(),
            n_reduces: 0,
            n_maps: maps,
            params: vec![(randomwriter::BYTES_PER_MAP.into(), (256 * 1024).to_string())],
        },
        Duration::from_secs(600),
    )
    .expect("randomwriter");
    let input: Vec<String> = dfs
        .list("/rw")
        .expect("list")
        .iter()
        .map(|s| s.path.clone())
        .collect();
    jobs.run(
        &JobConf {
            name: "sort".into(),
            kind: JobKind::Sort,
            input,
            output: "/sorted".into(),
            n_reduces: 4,
            n_maps: 0,
            params: Vec::new(),
        },
        Duration::from_secs(600),
    )
    .expect("sort");

    // Collect traces for the three Figure 3 call kinds.
    let mut heartbeat_sizes = Vec::new();
    let mut status_sizes = Vec::new();
    let mut getfileinfo_sizes = Vec::new();
    for tt in mr.tasktrackers() {
        if let Some(stats) = tt
            .jt_metrics()
            .get("mapred.InterTrackerProtocol", "heartbeat")
        {
            heartbeat_sizes.extend(stats.sizes);
        }
        if let Some(stats) = tt
            .umbilical_metrics()
            .get("mapred.TaskUmbilicalProtocol", "statusUpdate")
        {
            status_sizes.extend(stats.sizes);
        }
        if let Some(stats) = tt
            .dfs()
            .rpc()
            .metrics()
            .get("hdfs.ClientProtocol", "getFileInfo")
        {
            getfileinfo_sizes.extend(stats.sizes);
        }
    }
    if let Some(stats) = dfs
        .rpc()
        .metrics()
        .get("hdfs.ClientProtocol", "getFileInfo")
    {
        getfileinfo_sizes.extend(stats.sizes);
    }

    let show = |name: &str, sizes: &[u32]| {
        let n = sizes.len();
        if n == 0 {
            println!("\n{name}: no calls traced");
            return;
        }
        // Locality metric: fraction of consecutive call pairs whose sizes
        // fall in the same size class.
        let same_class = sizes
            .windows(2)
            .filter(|w| class_for(w[0] as usize) == class_for(w[1] as usize))
            .count();
        let locality = same_class as f64 / (n - 1).max(1) as f64 * 100.0;
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        let sample: Vec<String> = sizes
            .iter()
            .take(16)
            .map(|s| format!("{s}B(c{})", class_capacity(class_for(*s as usize))))
            .collect();
        let rows = vec![
            vec!["calls traced".into(), format!("{n}")],
            vec!["size range".into(), format!("{min}B - {max}B")],
            vec![
                "same-class consecutive pairs".into(),
                format!("{locality:.1}%"),
            ],
            vec!["first calls (size(class))".into(), sample.join(" ")],
        ];
        print_table(
            &format!("Figure 3 trace: {name}"),
            &["metric", "value"],
            &rows,
        );
    };
    show("JT_heartbeat", &heartbeat_sizes);
    show("TT_statusUpdate", &status_sizes);
    show("NN_getFileInfo", &getfileinfo_sizes);
    println!(
        "\npaper: sizes vary widely (especially heartbeat and getFileInfo) but consecutive \
         calls of one kind overwhelmingly fall into the same size class — message size locality"
    );
    mr.stop();
}
