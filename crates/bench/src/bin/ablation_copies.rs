//! Ablation A2: copy/allocation accounting — the mechanism behind the
//! latency gap.
//!
//! The workload serializes structured payloads (`Vec<LongWritable>`,
//! i.e. many small field writes, like `statusUpdate` and friends) over
//! both transports and reports per call: Algorithm-1 buffer adjustments
//! and the bytes those adjustments copied (socket baseline, from the
//! process-wide `wire` counters) vs pool re-gets (RPCoIB, from the
//! client metrics — zero once the size history is warm).

use rpcoib::RpcConfig;
use rpcoib_bench::harness::{print_table, BenchScale};
use rpcoib_bench::pingpong::{setup_pingpong, BenchConfig};
use simnet::model;
use wire::buffer::snapshot;
use wire::LongWritable;

fn structured_payload(bytes: usize) -> Vec<LongWritable> {
    (0..bytes / 8).map(|i| LongWritable(i as i64)).collect()
}

fn drive(
    cfg: &BenchConfig,
    payload_bytes: usize,
    warmup: usize,
    iters: usize,
) -> (f64, rpcoib::MethodStats) {
    let env = setup_pingpong(cfg);
    let node = env.fabric.add_node();
    let client = rpcoib::Client::new(&env.fabric, node, cfg.rpc.clone()).expect("client");
    let body = structured_payload(payload_bytes);
    for _ in 0..warmup {
        let _: Vec<LongWritable> = client
            .call(env.addr, "bench.PingPongProtocol", "echoLongs", &body)
            .expect("warmup");
    }
    let before = snapshot();
    for _ in 0..iters {
        let _: Vec<LongWritable> = client
            .call(env.addr, "bench.PingPongProtocol", "echoLongs", &body)
            .expect("call");
    }
    let delta = snapshot().since(&before);
    let copied_per_call = delta.bytes_copied as f64 / iters as f64;
    let stats = client
        .metrics()
        .get("bench.PingPongProtocol", "echoLongs")
        .expect("stats");
    client.shutdown();
    env.server.stop();
    (copied_per_call, stats)
}

fn main() {
    let scale = BenchScale::from_args();
    let iters = scale.pick(100, 500, 2000);
    let payloads: &[usize] = &[128, 1024, 16 * 1024, 128 * 1024];

    let mut rows = Vec::new();
    for &payload in payloads {
        let socket_cfg = BenchConfig {
            name: "socket",
            model: model::IPOIB_QDR,
            rpc: RpcConfig::socket(),
        };
        let (socket_copied, socket_stats) = drive(&socket_cfg, payload, 5, iters);

        let rpcoib_cfg = BenchConfig {
            name: "rpcoib",
            model: model::IB_QDR_VERBS,
            rpc: RpcConfig::rpcoib(),
        };
        let (_, rpcoib_stats) = drive(&rpcoib_cfg, payload, 5, iters);

        rows.push(vec![
            format!("{payload}"),
            format!("{:.2}", socket_stats.avg_adjustments()),
            format!("{socket_copied:.0}"),
            format!("{:.1}", socket_stats.avg_serialize_us()),
            format!("{:.3}", rpcoib_stats.avg_adjustments()),
            format!("{:.1}", rpcoib_stats.avg_serialize_us()),
        ]);
    }
    print_table(
        "Ablation A2: per-call serialization buffer work (structured payloads)",
        &[
            "Payload (B)",
            "socket adjusts/call",
            "socket bytes copied/call",
            "socket serialize us",
            "rpcoib re-gets/call",
            "rpcoib serialize us",
        ],
        &rows,
    );
    println!(
        "\nexpectation: socket adjustments grow ~log2(size/32) and copied bytes ~2x payload; \
         warm RPCoIB does zero buffer work per call (history hit)"
    );
}
