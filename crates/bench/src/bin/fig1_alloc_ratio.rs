//! Figure 1: ratio of receive-side buffer-allocation time to total call-
//! receive time on the server, for the default (socket) RPC design over
//! 1GigE and IPoIB, payloads 1 KB … 4 MB.
//!
//! The paper's point: on the slow network the wire dominates and the
//! per-call `ByteBuffer.allocate(len)` is invisible (~0), while on IPoIB
//! it grows to ~30% at 2 MB. Our Rust allocator is cheaper than a JVM
//! heap allocation, so the absolute ratio is smaller, but the *shape* —
//! near-zero on 1GigE, growing with payload on IPoIB — reproduces.

use rpcoib_bench::harness::{print_table, BenchScale};
use rpcoib_bench::pingpong::{latency_samples, setup_pingpong, BenchConfig};

fn main() {
    let scale = BenchScale::from_args();
    let iters = scale.pick(5, 20, 60);
    let payloads: &[usize] = &[
        1 << 10,
        8 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
    ];

    let configs = [BenchConfig::rpc_1gige(), BenchConfig::rpc_ipoib()];
    let mut ratios = vec![vec![0.0f64; payloads.len()]; configs.len()];
    for (ci, cfg) in configs.iter().enumerate() {
        for (pi, &payload) in payloads.iter().enumerate() {
            let env = setup_pingpong(cfg);
            let _ = latency_samples(&env, cfg, payload, 2, iters);
            let stats = env
                .server
                .metrics()
                .get("bench.PingPongProtocol", "pingpong")
                .expect("server saw the calls");
            ratios[ci][pi] = stats.alloc_ratio();
            env.server.stop();
        }
    }

    let rows: Vec<Vec<String>> = payloads
        .iter()
        .enumerate()
        .map(|(pi, payload)| {
            vec![
                format!("{}K", payload / 1024),
                format!("{:.4}", ratios[0][pi]),
                format!("{:.4}", ratios[1][pi]),
            ]
        })
        .collect();
    print_table(
        "Figure 1: buffer-allocation time / call-receive time (server side, default RPC)",
        &["Payload", "1GigE", "IPoIB"],
        &rows,
    );
    println!("\npaper: ~0 on 1GigE at all sizes; ~0.30 at 2MB on IPoIB");
}
