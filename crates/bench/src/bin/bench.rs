//! The figure-sweep regression driver (EXPERIMENTS.md "Bench regression
//! harness"): reruns the paper-figure sweeps under seeded modeled time,
//! writes `results/BENCH_<figure>.json`, and optionally gates against a
//! committed baseline.
//!
//! ```text
//! bench [--quick|--full] [--seed N] [--out DIR] [--fast]
//!       [--figure pingpong|bufpool|handlers|shards|smallcall|batching|qos|connections|bulk|handlers_mn|all]
//!       [--check BASELINE.json] [--tolerance PCT]
//! ```
//!
//! * `--quick` — CI-sized iteration counts (the committed baselines are
//!   quick runs at seed 42).
//! * `--seed` — fault-RNG seed; same seed ⇒ byte-identical files.
//! * `--fast` — enable simnet fast-forward: modeled delays are charged
//!   to the ledger but not spun, so sweeps finish in wall-seconds.
//!   Serialized results are identical with or without it.
//! * `--check` — after running, compare the matching figure against the
//!   given baseline file; exit 1 if any p99 regressed beyond
//!   `--tolerance` percent (default 25).

use std::path::PathBuf;
use std::process::ExitCode;

use rpcoib_bench::figures::{self, RunOpts};
use rpcoib_bench::json;
use rpcoib_bench::regress::check_regression;

struct Args {
    opts: RunOpts,
    out_dir: PathBuf,
    figure: String,
    fast: bool,
    check: Option<PathBuf>,
    tolerance_pct: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: RunOpts {
            quick: false,
            seed: 42,
        },
        out_dir: PathBuf::from("results"),
        figure: "all".to_string(),
        fast: false,
        check: None,
        tolerance_pct: 25,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--quick" => args.opts.quick = true,
            "--full" => args.opts.quick = false,
            "--fast" => args.fast = true,
            "--seed" => {
                args.opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => args.out_dir = PathBuf::from(value("--out")?),
            "--figure" => args.figure = value("--figure")?,
            "--check" => args.check = Some(PathBuf::from(value("--check")?)),
            "--tolerance" => {
                args.tolerance_pct = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench [--quick|--full] [--seed N] [--out DIR] [--fast] \
                     [--figure pingpong|bufpool|handlers|shards|smallcall|batching|qos|connections|bulk|handlers_mn|all] \
                     [--check BASELINE.json] [--tolerance PCT]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.fast {
        simnet::set_fast_forward(true);
    }

    // With --check, only the baseline's figure needs to run.
    let mut figure = args.figure.clone();
    let baseline = match &args.check {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bench: cannot read baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            let doc = match json::parse(&text) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("bench: cannot parse baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            if figure == "all" {
                if let Some(f) = doc.get("figure").and_then(json::Json::as_str) {
                    figure = f.to_string();
                }
            }
            Some(doc)
        }
        None => None,
    };

    let git_rev = figures::git_rev();
    type FigureFn = fn(&RunOpts, &str) -> json::Json;
    let runs: Vec<(&str, FigureFn)> = match figure.as_str() {
        "pingpong" => vec![("pingpong", figures::run_pingpong)],
        "bufpool" => vec![("bufpool", figures::run_bufpool)],
        "handlers" => vec![("handlers", figures::run_handlers)],
        "shards" => vec![("shards", figures::run_shards)],
        "smallcall" => vec![("smallcall", figures::run_smallcall)],
        "batching" => vec![("batching", figures::run_batching)],
        "qos" => vec![("qos", figures::run_qos)],
        "connections" => vec![("connections", figures::run_connections)],
        "bulk" => vec![("bulk", figures::run_bulk)],
        "handlers_mn" => vec![("handlers_mn", figures::run_handlers_mn)],
        "all" => vec![
            ("pingpong", figures::run_pingpong),
            ("bufpool", figures::run_bufpool),
            ("handlers", figures::run_handlers),
            ("shards", figures::run_shards),
            ("smallcall", figures::run_smallcall),
            ("batching", figures::run_batching),
            ("qos", figures::run_qos),
            ("connections", figures::run_connections),
            ("bulk", figures::run_bulk),
            ("handlers_mn", figures::run_handlers_mn),
        ],
        other => {
            eprintln!("bench: unknown figure {other}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("bench: cannot create {}: {e}", args.out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut produced = Vec::new();
    for (name, run) in runs {
        eprintln!(
            "bench: running figure {name} (quick={}, seed={})",
            args.opts.quick, args.opts.seed
        );
        let doc = run(&args.opts, &git_rev);
        let path = args.out_dir.join(format!("BENCH_{name}.json"));
        if let Err(e) = std::fs::write(&path, doc.pretty()) {
            eprintln!("bench: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench: wrote {}", path.display());
        produced.push(doc);
    }

    if let Some(baseline) = baseline {
        let fig = baseline
            .get("figure")
            .and_then(json::Json::as_str)
            .unwrap_or("?");
        let Some(current) = produced
            .iter()
            .find(|d| d.get("figure").and_then(json::Json::as_str) == Some(fig))
        else {
            eprintln!("bench: no current run matches baseline figure {fig}");
            return ExitCode::FAILURE;
        };
        match check_regression(current, &baseline, args.tolerance_pct) {
            Ok(outcome) if outcome.passed() => {
                eprintln!(
                    "bench: check passed — {} rows within +{}% of baseline p99",
                    outcome.compared, args.tolerance_pct
                );
            }
            Ok(outcome) => {
                for f in &outcome.failures {
                    eprintln!("bench: REGRESSION {f}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("bench: check error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
