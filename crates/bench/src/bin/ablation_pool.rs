//! Ablation A1: how much of RPCoIB's win comes from the history-based
//! two-level pool, and where the send/recv ↔ RDMA-write threshold should
//! sit.
//!
//! Part 1 — size history on/off: with history disabled every call starts
//! from the 128-byte class and "re-gets by doubling", reintroducing
//! adjustment work on the fast path.
//!
//! Part 2 — threshold sweep: a fixed 32 KB payload is pushed through
//! thresholds on both sides of its size, switching it between the
//! send/recv path (pre-posted buffers) and the one-sided RDMA-write path
//! (credit-gated large region).

use rpcoib::RpcConfig;
use rpcoib_bench::harness::{median_us, print_table, BenchScale};
use rpcoib_bench::pingpong::{latency_samples, setup_pingpong, BenchConfig};
use simnet::model;

fn main() {
    let scale = BenchScale::from_args();
    let iters = scale.pick(50, 300, 1500);
    let warmup = scale.pick(10, 50, 150);

    // --- Part 1: history on/off across payload sizes. ---
    let payloads: &[usize] = &[100, 430, 1500, 6000];
    let mut rows = Vec::new();
    for &payload in payloads {
        let mut by_mode = Vec::new();
        for use_history in [true, false] {
            let cfg = BenchConfig {
                name: if use_history { "history" } else { "no-history" },
                model: model::IB_QDR_VERBS,
                rpc: RpcConfig {
                    use_size_history: use_history,
                    ..RpcConfig::rpcoib()
                },
            };
            let env = setup_pingpong(&cfg);
            let fabric = env.fabric.clone();
            let node = fabric.add_node();
            let client = rpcoib::Client::new(&fabric, node, cfg.rpc.clone()).expect("client");
            let body = wire::BytesWritable(vec![1u8; payload]);
            for _ in 0..warmup {
                let _: wire::BytesWritable = client
                    .call(env.addr, "bench.PingPongProtocol", "pingpong", &body)
                    .expect("warmup");
            }
            let mut samples: Vec<std::time::Duration> = (0..iters)
                .map(|_| {
                    let start = std::time::Instant::now();
                    let _: wire::BytesWritable = client
                        .call(env.addr, "bench.PingPongProtocol", "pingpong", &body)
                        .expect("call");
                    start.elapsed()
                })
                .collect();
            let stats = client
                .metrics()
                .get("bench.PingPongProtocol", "pingpong")
                .expect("stats");
            by_mode.push((median_us(&mut samples), stats.avg_adjustments()));
            client.shutdown();
            env.server.stop();
        }
        rows.push(vec![
            format!("{payload}"),
            format!("{:.1}", by_mode[0].0),
            format!("{:.2}", by_mode[0].1),
            format!("{:.1}", by_mode[1].0),
            format!("{:.2}", by_mode[1].1),
        ]);
    }
    print_table(
        "Ablation A1.1: RPCoIB with vs without the <protocol,method> size history",
        &[
            "Payload (B)",
            "latency us (history)",
            "re-gets/call (history)",
            "latency us (no history)",
            "re-gets/call (no history)",
        ],
        &rows,
    );

    // --- Part 2: threshold sweep at a fixed 32 KB payload. ---
    let payload = 32 * 1024;
    let thresholds: &[usize] = &[4 << 10, 16 << 10, 40 << 10, 64 << 10];
    let mut rows = Vec::new();
    for &threshold in thresholds {
        let cfg = BenchConfig {
            name: "threshold",
            model: model::IB_QDR_VERBS,
            rpc: RpcConfig {
                rdma_threshold: threshold,
                recv_buf_bytes: 128 * 1024,
                ..RpcConfig::rpcoib()
            },
        };
        let env = setup_pingpong(&cfg);
        let mut samples = latency_samples(&env, &cfg, payload, warmup, iters);
        let path = if payload + 32 <= threshold {
            "send/recv"
        } else {
            "RDMA write"
        };
        rows.push(vec![
            format!("{}K", threshold / 1024),
            path.into(),
            format!("{:.1}", median_us(&mut samples)),
        ]);
        env.server.stop();
    }
    print_table(
        "Ablation A1.2: send/recv vs RDMA-write threshold, 32 KB payload",
        &["Threshold", "Path taken", "Median latency (us)"],
        &rows,
    );
    println!(
        "\nexpectation: history removes all steady-state re-gets; around the payload size \
         the two paths cross — send/recv avoids the credit round for mid-size messages"
    );
}
