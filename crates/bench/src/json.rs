//! Minimal JSON value, writer, and parser for the bench result files.
//!
//! The regression harness needs byte-identical output for identical runs
//! (the determinism acceptance test diffs two files), so this module
//! avoids everything that could wobble: object keys keep insertion order,
//! numbers are integers only (`u64`), and floats never appear — ratios
//! are stored in basis points. `serde` stays out of the dependency tree
//! on purpose; the grammar subset here (objects, arrays, strings, `u64`,
//! booleans, `null`) is exactly what `BENCH_*.json` uses.

use std::fmt::Write as _;

/// A JSON value restricted to the bench-file subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All bench numbers are non-negative integers (nanoseconds, counts,
    /// basis points); floats are banned for byte-stability.
    U64(u64),
    Str(String),
    Arr(Vec<Json>),
    /// Ordered: serialization preserves insertion order so output is
    /// reproducible.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field (builder style; panics if not an object).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline
    /// (the committed baselines are meant to be human-reviewable diffs).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (the subset this module writes, plus negative
/// and fractional numbers rejected with an error rather than mangled).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() => parse_u64(bytes, pos),
        Some(c) => Err(format!(
            "unexpected byte '{}' at offset {}",
            *c as char, pos
        )),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_u64(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if let Some(c @ (b'.' | b'e' | b'E' | b'-' | b'+')) = bytes.get(*pos) {
        return Err(format!(
            "non-integer number ('{}') at offset {} — bench files hold integers only",
            *c as char, pos
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::U64)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let rest = &text_from(bytes)[*pos..];
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn text_from(bytes: &[u8]) -> &str {
    // Safe: `parse` only ever receives the bytes of a &str.
    std::str::from_utf8(bytes).expect("parser input is UTF-8")
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_order_and_bytes() {
        let doc = Json::obj()
            .field("figure", "pingpong")
            .field("zeta", 1u64)
            .field("alpha", 2u64)
            .field(
                "rows",
                Json::Arr(vec![Json::obj()
                    .field("payload", 512u64)
                    .field("ok", true)
                    .field("note", Json::Null)]),
            );
        let text = doc.pretty();
        let back = parse(&text).expect("parse own output");
        assert_eq!(back, doc);
        assert_eq!(back.pretty(), text, "render must be a fixed point");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = Json::obj().field("s", "a\"b\\c\nd\te\u{1}f");
        let back = parse(&doc.pretty()).unwrap();
        assert_eq!(
            back.get("s").unwrap().as_str().unwrap(),
            "a\"b\\c\nd\te\u{1}f"
        );
    }

    #[test]
    fn floats_are_rejected() {
        assert!(parse("{\"x\": 1.5}").is_err());
        assert!(parse("[1e9]").is_err());
    }

    #[test]
    fn lookup_helpers() {
        let doc = parse("{\"a\": [1, 2], \"b\": \"x\"}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.get("a").unwrap().as_u64(), None);
    }
}
