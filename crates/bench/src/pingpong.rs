//! The paper's RPC micro-benchmark (cited as [12], WBDB'13): a server
//! registering a `pingpong` method whose parameter and return value are a
//! `BytesWritable` payload, driven by one latency client or many
//! concurrent throughput clients.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rpcoib::{Client, RpcConfig, RpcService, Server, ServiceRegistry};
use simnet::{model, Fabric, NetworkModel, SimAddr};
use wire::{BytesWritable, DataInput, Writable};

/// Echo service: `pingpong(BytesWritable) -> BytesWritable`.
pub struct EchoService;

impl RpcService for EchoService {
    fn protocol(&self) -> &'static str {
        "bench.PingPongProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "pingpong" => {
                let mut payload = BytesWritable::default();
                payload.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(payload))
            }
            // Structured-payload variant: many small fields, so the
            // serializer behaves like Hadoop's field-by-field Writables
            // (statusUpdate & co.), not one bulk byte copy.
            "echoLongs" => {
                let mut payload: Vec<wire::LongWritable> = Vec::new();
                wire::Writable::read_fields(&mut payload, param).map_err(|e| e.to_string())?;
                Ok(Box::new(payload))
            }
            other => Err(format!("no such method {other}")),
        }
    }
}

/// A benchmark transport configuration: a name for tables, the fabric
/// model, and the RPC engine settings.
#[derive(Clone)]
pub struct BenchConfig {
    pub name: &'static str,
    pub model: NetworkModel,
    pub rpc: RpcConfig,
}

impl BenchConfig {
    /// Default Hadoop RPC over 10GigE.
    pub fn rpc_10gige() -> Self {
        BenchConfig {
            name: "RPC-10GigE",
            model: model::TEN_GIG_E,
            rpc: RpcConfig::socket(),
        }
    }

    /// Default Hadoop RPC over IPoIB QDR.
    pub fn rpc_ipoib() -> Self {
        BenchConfig {
            name: "RPC-IPoIB (32Gbps)",
            model: model::IPOIB_QDR,
            rpc: RpcConfig::socket(),
        }
    }

    /// Default Hadoop RPC over 1GigE (the slow-network reference).
    pub fn rpc_1gige() -> Self {
        BenchConfig {
            name: "RPC-1GigE",
            model: model::GIG_E,
            rpc: RpcConfig::socket(),
        }
    }

    /// RPCoIB over QDR verbs.
    pub fn rpcoib() -> Self {
        BenchConfig {
            name: "RPCoIB (32Gbps)",
            model: model::IB_QDR_VERBS,
            rpc: RpcConfig::rpcoib(),
        }
    }
}

/// A booted single-server ping-pong environment.
pub struct PingPongEnv {
    pub fabric: Fabric,
    pub server: Server,
    pub addr: SimAddr,
}

/// Start a ping-pong server (8 handlers, per the paper's microbenchmark).
pub fn setup_pingpong(cfg: &BenchConfig) -> PingPongEnv {
    let fabric = Fabric::new(cfg.model);
    let node = fabric.add_node();
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    let server = Server::start(&fabric, node, 9999, cfg.rpc.clone(), registry)
        .expect("start pingpong server");
    let addr = server.addr();
    PingPongEnv {
        fabric,
        server,
        addr,
    }
}

/// One latency client issuing `iters` ping-pongs of `payload` bytes after
/// `warmup` unmeasured calls; returns per-call durations.
pub fn latency_samples(
    env: &PingPongEnv,
    cfg: &BenchConfig,
    payload: usize,
    warmup: usize,
    iters: usize,
) -> Vec<Duration> {
    let node = env.fabric.add_node();
    let client = Client::new(&env.fabric, node, cfg.rpc.clone()).expect("client");
    let body = BytesWritable(vec![0x5au8; payload]);
    for _ in 0..warmup {
        let _: BytesWritable = client
            .call(env.addr, "bench.PingPongProtocol", "pingpong", &body)
            .expect("warmup call");
    }
    let samples = (0..iters)
        .map(|_| {
            let start = Instant::now();
            let _: BytesWritable = client
                .call(env.addr, "bench.PingPongProtocol", "pingpong", &body)
                .expect("bench call");
            start.elapsed()
        })
        .collect();
    client.shutdown();
    samples
}

/// Throughput: `n_clients` caller threads spread over `client_nodes`
/// simulated nodes, hammering 512-byte ping-pongs for `duration`.
/// Returns achieved Kops/sec.
///
/// Every client fully connects and warms up before a barrier releases
/// the measured window — client setup (connection establishment, and on
/// RPCoIB the pool pre-registration) must not eat into the window.
pub fn throughput_kops(
    env: &PingPongEnv,
    cfg: &BenchConfig,
    n_clients: usize,
    client_nodes: usize,
    payload: usize,
    duration: Duration,
) -> f64 {
    // One Client (and hence one connection + Connection thread) per
    // simulated client process, as in the paper's setup.
    let nodes: Vec<_> = (0..client_nodes).map(|_| env.fabric.add_node()).collect();
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(std::sync::Barrier::new(n_clients + 1));
    let mut threads = Vec::new();
    for c in 0..n_clients {
        let fabric = env.fabric.clone();
        let node = nodes[c % nodes.len()];
        let rpc = cfg.rpc.clone();
        let addr = env.addr;
        let stop = Arc::clone(&stop);
        let ops = Arc::clone(&ops);
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            let client = Client::new(&fabric, node, rpc).expect("client");
            let body = BytesWritable(vec![0x77u8; payload]);
            // Warm up so the connection exists and buffers are learned.
            for _ in 0..3 {
                let _: BytesWritable = client
                    .call(addr, "bench.PingPongProtocol", "pingpong", &body)
                    .expect("warmup");
            }
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let _: BytesWritable = client
                    .call(addr, "bench.PingPongProtocol", "pingpong", &body)
                    .expect("bench call");
                ops.fetch_add(1, Ordering::Relaxed);
            }
            client.shutdown();
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    let counted = ops.load(Ordering::Relaxed);
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        let _ = t.join();
    }
    counted as f64 / elapsed.as_secs_f64() / 1e3
}
