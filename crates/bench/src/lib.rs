//! # rpcoib-bench — harness shared by the table/figure binaries
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index and
//! EXPERIMENTS.md for paper-vs-measured records). This library holds the
//! pieces they share: the ping-pong microbenchmark service (the paper's
//! Hadoop RPC micro-benchmark suite, WBDB'13), table printing, and scale
//! handling (`--quick` / `--full`).

pub mod figures;
pub mod harness;
pub mod json;
pub mod pingpong;
pub mod regress;

pub use harness::{percentile, print_table, BenchScale};
pub use pingpong::{setup_pingpong, EchoService, PingPongEnv};
