//! Output formatting and run-scale handling.

use std::time::Duration;

/// How big a run the harness performs. The paper's absolute sizes (128 GB
/// sorts, 640 K YCSB operations, 64 slave nodes) are scaled down so every
/// figure regenerates on a laptop; `Full` uses larger sizes (and the
/// paper's node counts where feasible) for overnight runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// CI-sized: seconds per experiment.
    Quick,
    /// Default: a few minutes per experiment.
    Normal,
    /// Paper-shaped node counts; long.
    Full,
}

impl BenchScale {
    /// Parse from argv: `--quick` / `--full` (default `Normal`).
    pub fn from_args() -> BenchScale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            BenchScale::Quick
        } else if args.iter().any(|a| a == "--full") {
            BenchScale::Full
        } else {
            BenchScale::Normal
        }
    }

    /// Pick one of three values by scale.
    pub fn pick<T: Copy>(self, quick: T, normal: T, full: T) -> T {
        match self {
            BenchScale::Quick => quick,
            BenchScale::Normal => normal,
            BenchScale::Full => full,
        }
    }
}

/// Print an aligned ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Percentile over an unsorted slice of durations.
pub fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// Median microseconds.
pub fn median_us(samples: &mut [Duration]) -> f64 {
    percentile(samples, 0.5).as_secs_f64() * 1e6
}

/// Percent improvement of `new` relative to `base` (positive = faster).
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    (base - new) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(BenchScale::Quick.pick(1, 2, 3), 1);
        assert_eq!(BenchScale::Normal.pick(1, 2, 3), 2);
        assert_eq!(BenchScale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn percentile_bounds() {
        let mut v = vec![
            Duration::from_micros(30),
            Duration::from_micros(10),
            Duration::from_micros(20),
        ];
        assert_eq!(percentile(&mut v, 0.0), Duration::from_micros(10));
        assert_eq!(percentile(&mut v, 1.0), Duration::from_micros(30));
        assert_eq!(median_us(&mut v), 20.0);
        assert_eq!(percentile(&mut [], 0.5), Duration::ZERO);
    }

    #[test]
    fn improvement_sign() {
        assert!((improvement_pct(100.0, 50.0) - 50.0).abs() < 1e-9);
        assert!(improvement_pct(100.0, 120.0) < 0.0);
    }
}
