//! Paper-figure sweeps for the regression harness (`src/bin/bench.rs`).
//!
//! Every number that lands in a `BENCH_*.json` file is derived from the
//! simnet **modeled-time ledger** ([`Fabric::modeled_ns`]), not from
//! wall-clock measurement: per call, the sweep reads the client node's
//! accumulated modeled nanoseconds before and after, and the delta is the
//! network/stack/registration cost the calibrated model *intended* to
//! charge. Combined with the seeded fault RNG (jitter draws replay
//! exactly under sequential calls), two runs with the same seed produce
//! byte-identical files — which is what lets CI diff against a committed
//! baseline with a tight tolerance.
//!
//! Wall-clock numbers (actual throughput, scheduler effects) are printed
//! to stdout for humans but deliberately never serialized.

use std::sync::Arc;
use std::time::Duration;

use rpcoib::{Client, Server, ServiceRegistry};
use simnet::{Fabric, FaultSpec, NodeId, SimAddr};
use wire::BytesWritable;

use crate::json::Json;
use crate::pingpong::{BenchConfig, EchoService};

/// Jitter bound injected on the client↔server link so latency percentiles
/// are non-degenerate (a uniform draw per message, from the seeded RNG).
const JITTER: Duration = Duration::from_micros(20);

/// Payload sweep of the paper's ping-pong latency figures: 1 B to 2 MB.
pub const PINGPONG_PAYLOADS: &[usize] = &[1, 64, 512, 4096, 32768, 262144, 2097152];

/// Knobs shared by every sweep.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// CI-sized iteration counts.
    pub quick: bool,
    /// Seed for the fabric's fault RNG (jitter draws).
    pub seed: u64,
}

impl RunOpts {
    fn iters(&self, quick: usize, normal: usize) -> usize {
        if self.quick {
            quick
        } else {
            normal
        }
    }
}

/// The two transports every figure compares, as `(label, config)`.
/// Both ride the same QDR InfiniBand card: sockets over IPoIB versus
/// native verbs (the paper's central comparison).
fn transports() -> Vec<(&'static str, BenchConfig)> {
    vec![
        ("socket", BenchConfig::rpc_ipoib()),
        ("verbs", BenchConfig::rpcoib()),
    ]
}

struct Env {
    fabric: Fabric,
    _server: Server,
    addr: SimAddr,
    client: Client,
    client_node: NodeId,
}

/// Boot one server + one client on a fresh fabric, with the fault RNG
/// seeded *before* any traffic so connection setup replays too.
fn boot(cfg: &BenchConfig, seed: u64, jitter: Option<Duration>) -> Env {
    let fabric = Fabric::new(cfg.model);
    fabric.set_fault_seed(seed);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    if let Some(j) = jitter {
        fabric.set_link_fault(
            server_node,
            client_node,
            FaultSpec::default().with_jitter(j),
        );
    }
    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(EchoService));
    let server =
        Server::start(&fabric, server_node, 9999, cfg.rpc.clone(), registry).expect("start server");
    let addr = server.addr();
    let client = Client::new(&fabric, client_node, cfg.rpc.clone()).expect("client");
    // Pre-register two buffers per class up to the large region (RPCoIB
    // only; no-op on sockets). Without this, the first large response's
    // drain on the connection thread can race the caller's send-buffer
    // return: whichever loses the race registers a fresh region, and that
    // scheduling-dependent registration charge would leak into exactly
    // one sample. Registration paid here lands outside every measurement
    // window.
    client.prewarm_pool(cfg.rpc.large_region_bytes, 2);
    Env {
        fabric,
        _server: server,
        addr,
        client,
        client_node,
    }
}

fn ping(env: &Env, body: &BytesWritable) {
    let _: BytesWritable = env
        .client
        .call(env.addr, "bench.PingPongProtocol", "pingpong", body)
        .expect("pingpong call");
}

/// Issue `warmup + iters` sequential ping-pongs of `payload` bytes and
/// return the per-call modeled-ns delta of the client node for the
/// measured calls. Every client-node ledger charge of a sequential call
/// (sends, response ingress, pool registrations, credit handling) lands
/// before the call returns, so the deltas are exact and replayable.
fn modeled_samples(env: &Env, payload: usize, warmup: usize, iters: usize) -> Vec<u64> {
    let body = BytesWritable(vec![0x5a; payload]);
    for _ in 0..warmup {
        ping(env, &body);
    }
    (0..iters)
        .map(|_| {
            let before = env.fabric.modeled_ns(env.client_node);
            ping(env, &body);
            env.fabric.modeled_ns(env.client_node) - before
        })
        .collect()
}

/// Nearest-rank percentile over sorted samples.
fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The percentile block every figure row shares.
fn percentile_fields(row: Json, samples: &mut [u64]) -> Json {
    samples.sort_unstable();
    let sum: u64 = samples.iter().sum();
    let count = samples.len() as u64;
    row.field("calls", count)
        .field("p50_ns", percentile_ns(samples, 0.50))
        .field("p95_ns", percentile_ns(samples, 0.95))
        .field("p99_ns", percentile_ns(samples, 0.99))
        .field("max_ns", samples.last().copied().unwrap_or(0))
        .field("mean_ns", sum.checked_div(count).unwrap_or(0))
}

fn header(figure: &str, opts: &RunOpts, git_rev: &str) -> Json {
    Json::obj()
        .field("figure", figure)
        .field("seed", opts.seed)
        .field("quick", opts.quick)
        .field("jitter_ns", JITTER.as_nanos() as u64)
        .field("git_rev", git_rev)
}

/// Figure: ping-pong latency vs payload size, socket vs verbs (the
/// paper's Fig. 5(a)/(b) shape). One fresh fabric per row so payload
/// ordering cannot leak pool history across rows.
pub fn run_pingpong(opts: &RunOpts, git_rev: &str) -> Json {
    let warmup = opts.iters(5, 20);
    let iters = opts.iters(40, 200);
    let mut rows = Vec::new();
    for (label, cfg) in transports() {
        for &payload in PINGPONG_PAYLOADS {
            let env = boot(&cfg, opts.seed, Some(JITTER));
            let mut samples = modeled_samples(&env, payload, warmup, iters);
            let snap = env.client.metrics_snapshot();
            let row = Json::obj()
                .field("transport", label)
                .field("payload", payload);
            let row = percentile_fields(row, &mut samples)
                .field("retries", snap.counters.retries)
                .field("failed_calls", snap.counters.failed_calls)
                .field("busy_rejections", snap.counters.busy_rejections);
            rows.push(row);
            env.client.shutdown();
        }
    }
    header("pingpong", opts, git_rev).field("rows", Json::Arr(rows))
}

/// The workload mixes of the buffer-pool figure: each is a repeating
/// payload-size sequence the shadow pool's `<protocol, method>` history
/// must track. Steady sizes should hit; alternating sizes defeat the
/// one-slot history; ramps force grows.
fn bufpool_mixes() -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("steady_512", vec![512]),
        ("steady_32k", vec![32768]),
        ("bimodal_512_64k", vec![512, 65536]),
        (
            "ramp_1k_to_64k",
            vec![1024, 2048, 4096, 8192, 16384, 32768, 65536],
        ),
    ]
}

/// Figure: buffer-pool hit rate vs workload mix (paper §V.C / Fig. 3
/// shape), with the same modeled-latency percentiles so the cost of
/// mispredictions is visible. Pool counters come from the client's
/// RPCoIB context; the socket transport has no pool, so its `pool`
/// field is `null` — it rides along as the latency baseline.
pub fn run_bufpool(opts: &RunOpts, git_rev: &str) -> Json {
    let calls = opts.iters(60, 300);
    let mut rows = Vec::new();
    for (label, cfg) in transports() {
        for (mix, sizes) in bufpool_mixes() {
            let env = boot(&cfg, opts.seed, Some(JITTER));
            // Warm up the connection (not the pool history: cold starts
            // and the convergence grows are exactly what this figure
            // counts).
            ping(&env, &BytesWritable(vec![0u8; sizes[0]]));
            let mut samples = Vec::with_capacity(calls);
            for i in 0..calls {
                let body = BytesWritable(vec![0x77; sizes[i % sizes.len()]]);
                let before = env.fabric.modeled_ns(env.client_node);
                ping(&env, &body);
                samples.push(env.fabric.modeled_ns(env.client_node) - before);
            }
            let snap = env.client.metrics_snapshot();
            let row = Json::obj().field("transport", label).field("mix", mix);
            let mut row = percentile_fields(row, &mut samples);
            row = match snap.pool {
                Some(pool) => {
                    let lookups = pool.history_hits + pool.grows + pool.shrinks + pool.cold;
                    row.field(
                        "pool",
                        Json::obj()
                            .field("history_hits", pool.history_hits)
                            .field("grows", pool.grows)
                            .field("shrinks", pool.shrinks)
                            .field("cold", pool.cold)
                            .field("native_hits", pool.native_hits)
                            .field("native_misses", pool.native_misses)
                            .field("native_returns", pool.native_returns)
                            .field("oversize", pool.oversize),
                    )
                    .field("hit_rate_bp", pool.history_hits * 10_000 / lookups.max(1))
                }
                None => row
                    .field("pool", Json::Null)
                    .field("hit_rate_bp", Json::Null),
            };
            rows.push(row);
            env.client.shutdown();
        }
    }
    header("bufpool", opts, git_rev).field("rows", Json::Arr(rows))
}

/// Figure: handler-count scaling (the paper's server-side concurrency
/// knob). `clients` concurrent callers — each on its own fabric node so
/// its ledger deltas stay private — hammer a server configured with a
/// varying handler pool. The JSON records the modeled per-call costs
/// (deterministic; identical across handler counts by construction,
/// since queue wait is a scheduler effect the model does not charge);
/// measured wall-clock throughput per handler count goes to stdout.
pub fn run_handlers(opts: &RunOpts, git_rev: &str) -> Json {
    let handler_counts: &[usize] = if opts.quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let clients = 6usize;
    let calls_per_client = opts.iters(30, 120);
    let payload = 4096usize;
    let mut rows = Vec::new();
    for (label, cfg) in transports() {
        for &handlers in handler_counts {
            let mut cfg = cfg.clone();
            cfg.rpc.handlers = handlers;
            // No link faults: concurrent clients would race for the RNG,
            // making draw order (and thus every sample) scheduling-
            // dependent. Without faults nothing draws, and each client's
            // deltas depend only on its own sequential traffic.
            let fabric = Fabric::new(cfg.model);
            fabric.set_fault_seed(opts.seed);
            let server_node = fabric.add_node();
            let mut registry = ServiceRegistry::new();
            registry.register(Arc::new(EchoService));
            let server = Server::start(&fabric, server_node, 9999, cfg.rpc.clone(), registry)
                .expect("start server");
            let addr = server.addr();

            let start = std::time::Instant::now();
            let mut threads = Vec::new();
            for _ in 0..clients {
                let fabric = fabric.clone();
                let rpc = cfg.rpc.clone();
                let node = fabric.add_node();
                threads.push(std::thread::spawn(move || {
                    let client = Client::new(&fabric, node, rpc).expect("client");
                    let body = BytesWritable(vec![0x33; payload]);
                    let mut deltas = Vec::with_capacity(calls_per_client);
                    for _ in 0..calls_per_client {
                        let before = fabric.modeled_ns(node);
                        let _: BytesWritable = client
                            .call(addr, "bench.PingPongProtocol", "pingpong", &body)
                            .expect("call");
                        deltas.push(fabric.modeled_ns(node) - before);
                    }
                    client.shutdown();
                    deltas
                }));
            }
            let mut samples: Vec<u64> = Vec::new();
            for t in threads {
                samples.extend(t.join().expect("client thread"));
            }
            let wall = start.elapsed();
            let total_calls = samples.len();
            println!(
                "handlers {label:>6} h={handlers:<2} wall {:>8.1} ms  {:>7.1} calls/s (wall-clock, not serialized)",
                wall.as_secs_f64() * 1e3,
                total_calls as f64 / wall.as_secs_f64()
            );
            server.stop();

            let row = Json::obj()
                .field("transport", label)
                .field("handlers", handlers)
                .field("clients", clients);
            let row = percentile_fields(row, &mut samples)
                .field("modeled_total_ns", samples.iter().sum::<u64>());
            rows.push(row);
        }
    }
    header("handlers", opts, git_rev).field("rows", Json::Arr(rows))
}

/// Connection counts of the shard-scaling sweep.
const SHARD_CLIENTS: &[usize] = &[1, 4, 16, 64, 256];

/// Shard counts swept (applied to readers and responders alike; `1` is
/// the paper's single-Responder baseline).
const SHARD_COUNTS: &[usize] = &[1, 2, 4];

/// Figure: connection scaling versus reader/responder shard count. Every
/// connection drives an identical sequential call stream from its own
/// fabric node, so each per-call ledger delta is deterministic, and —
/// because connections are dealt onto shards round-robin by accept-order
/// id — the per-shard load split is `ceil(C/M)` connections on the
/// busiest shard no matter which client won which accept slot.
///
/// The serialized throughput figure is *derived* from the ledger with a
/// pipeline model: a responder shard transmits its connections' response
/// streams serially, shards run in parallel, so the modeled makespan is
/// `ceil(C/M) × per_conn_ns` and modeled throughput is total calls over
/// that. At 64+ connections this is where responder sharding pays:
/// `M = 4` cuts the bottleneck shard's stream to a quarter. Wall-clock
/// throughput (scheduler-dependent) goes to stdout only.
pub fn run_shards(opts: &RunOpts, git_rev: &str) -> Json {
    let warmup = 2usize;
    let calls_per_conn = opts.iters(6, 24);
    let payload = 512usize;
    let mut rows = Vec::new();
    for (label, cfg) in transports() {
        for &clients in SHARD_CLIENTS {
            for &shards in SHARD_COUNTS {
                let mut cfg = cfg.clone();
                cfg.rpc.reader_shards = shards;
                cfg.rpc.responder_shards = shards;
                // Trim per-connection buffer footprints: at 256
                // connections the default 4 MB large region plus a
                // 32-deep 64 KB recv ring would cost gigabytes; the
                // 512 B payloads here only ever ride the small path.
                cfg.rpc.rdma_threshold = 16 * 1024;
                cfg.rpc.recv_buf_bytes = 16 * 1024;
                cfg.rpc.posted_recvs = 8;
                cfg.rpc.large_region_bytes = 64 * 1024;
                cfg.rpc.prefill_per_class = 2;
                // No link faults: concurrent clients would race for the
                // RNG (see run_handlers).
                let fabric = Fabric::new(cfg.model);
                fabric.set_fault_seed(opts.seed);
                let server_node = fabric.add_node();
                let mut registry = ServiceRegistry::new();
                registry.register(Arc::new(EchoService));
                let server = Server::start(&fabric, server_node, 9999, cfg.rpc.clone(), registry)
                    .expect("start server");
                let addr = server.addr();

                let start = std::time::Instant::now();
                let mut threads = Vec::new();
                for _ in 0..clients {
                    let fabric = fabric.clone();
                    let rpc = cfg.rpc.clone();
                    let node = fabric.add_node();
                    threads.push(std::thread::spawn(move || {
                        let client = Client::new(&fabric, node, rpc).expect("client");
                        let body = BytesWritable(vec![0x44; payload]);
                        for _ in 0..warmup {
                            let _: BytesWritable = client
                                .call(addr, "bench.PingPongProtocol", "pingpong", &body)
                                .expect("warmup call");
                        }
                        let mut deltas = Vec::with_capacity(calls_per_conn);
                        for _ in 0..calls_per_conn {
                            let before = fabric.modeled_ns(node);
                            let _: BytesWritable = client
                                .call(addr, "bench.PingPongProtocol", "pingpong", &body)
                                .expect("call");
                            deltas.push(fabric.modeled_ns(node) - before);
                        }
                        client.shutdown();
                        deltas
                    }));
                }
                let mut samples: Vec<u64> = Vec::new();
                let mut per_conn_ns: u64 = 0;
                for t in threads {
                    let deltas = t.join().expect("client thread");
                    per_conn_ns = per_conn_ns.max(deltas.iter().sum());
                    samples.extend(deltas);
                }
                let wall = start.elapsed();
                let total_calls = samples.len() as u64;
                println!(
                    "shards {label:>6} c={clients:<3} s={shards} wall {:>8.1} ms  {:>8.1} calls/s (wall-clock, not serialized)",
                    wall.as_secs_f64() * 1e3,
                    total_calls as f64 / wall.as_secs_f64()
                );

                // Per-shard processed counts: which connection landed on
                // which shard is an accept race, but the *sorted* counts
                // are fixed by the round-robin deal. Snapshot only after
                // `stop` has joined the shard threads — a responder bumps
                // its counter *after* transmitting, so a pre-join read
                // could miss the final response's increment.
                server.stop();
                let snap = server.metrics_snapshot();
                let shard_counts = |role: &str| {
                    let mut counts: Vec<u64> = snap
                        .shards
                        .iter()
                        .filter(|s| s.role.name() == role)
                        .map(|s| s.processed)
                        .collect();
                    counts.sort_unstable_by(|a, b| b.cmp(a));
                    Json::Arr(counts.into_iter().map(Json::U64).collect())
                };
                let reader_processed = shard_counts("reader");
                let responder_processed = shard_counts("responder");

                let bottleneck_conns = clients.div_ceil(shards);
                let makespan_ns = bottleneck_conns as u64 * per_conn_ns;
                let modeled_calls_per_sec = (total_calls * 1_000_000_000)
                    .checked_div(makespan_ns)
                    .unwrap_or(0);
                let row = Json::obj()
                    .field("transport", label)
                    .field("point", format!("c{clients}_s{shards}"))
                    .field("clients", clients as u64)
                    .field("shards", shards as u64);
                let row = percentile_fields(row, &mut samples)
                    .field("per_conn_modeled_ns", per_conn_ns)
                    .field("bottleneck_conns", bottleneck_conns as u64)
                    .field("modeled_makespan_ns", makespan_ns)
                    .field("modeled_calls_per_sec", modeled_calls_per_sec)
                    .field("reader_processed", reader_processed)
                    .field("responder_processed", responder_processed);
                rows.push(row);
            }
        }
    }
    header("shards", opts, git_rev).field("rows", Json::Arr(rows))
}

/// Payloads of the small-call sweep: the ≤128 B regime where Hadoop RPC
/// time is dominated by per-call metadata work, not bytes on the wire
/// (Table I's heartbeat/getFileInfo class of calls).
pub const SMALLCALL_PAYLOADS: &[usize] = &[1, 16, 64, 128];

/// Figure: small-call latency with and without the interned hot path.
///
/// Every `(transport, payload)` cell runs twice: `legacy` re-enacts the
/// pre-interning per-call metadata work and charges
/// [`rpcoib::hostcost::legacy_call_ns`] to the client's ledger per call
/// (the modeled cost of its owned key strings, fresh reply channel, and
/// global-map lock rounds); `interned` is the shipped allocation-free
/// path, which charges nothing. Calls repeat one payload size per cell —
/// the Figure-3 locality regime, where the shadow pool's size history
/// hits every time — so the delta isolates metadata cost. No link
/// jitter: both modes then charge fully deterministic, directly
/// comparable ledgers, and `improvement_bp` (basis points of the legacy
/// p50 saved by interning) is exact.
pub fn run_smallcall(opts: &RunOpts, git_rev: &str) -> Json {
    let warmup = opts.iters(10, 40);
    let iters = opts.iters(50, 250);
    let mut rows = Vec::new();
    for (label, cfg) in transports() {
        for &payload in SMALLCALL_PAYLOADS {
            let mut legacy_p50 = 0u64;
            for mode in ["legacy", "interned"] {
                let mut cfg = cfg.clone();
                cfg.rpc.legacy_metadata = mode == "legacy";
                let env = boot(&cfg, opts.seed, None);
                let mut samples = modeled_samples(&env, payload, warmup, iters);
                samples.sort_unstable();
                let p50 = percentile_ns(&samples, 0.50);
                let row = Json::obj()
                    .field("transport", format!("{label}_{mode}"))
                    .field("payload", payload)
                    .field("mode", mode);
                let mut row = percentile_fields(row, &mut samples);
                if mode == "legacy" {
                    legacy_p50 = p50;
                } else {
                    let saved = legacy_p50.saturating_sub(p50);
                    row = row
                        .field("legacy_p50_ns", legacy_p50)
                        .field("improvement_bp", saved * 10_000 / legacy_p50.max(1));
                }
                rows.push(row);
                env.client.shutdown();
            }
        }
    }
    Json::obj()
        .field("figure", "smallcall")
        .field("seed", opts.seed)
        .field("quick", opts.quick)
        .field("jitter_ns", 0u64)
        .field("legacy_call_ns", rpcoib::hostcost::legacy_call_ns())
        .field("git_rev", git_rev)
        .field("rows", Json::Arr(rows))
}

/// Payloads of the batching sweep: the 1–128 B regime where per-frame
/// overhead (stack charge + base latency per wire operation) dominates
/// and coalescing pays.
pub const BATCHING_PAYLOADS: &[usize] = &[1, 32, 128];

/// Queue depth of the multi-client point: how many small frames are
/// ready for one connection when the responder sweep (or the client's
/// gathered flush) runs. Eight callers multiplexed on a connection is
/// the shape of the paper's multi-client small-call experiments.
const BATCH_DEPTH: usize = 8;

/// Figure: adaptive wire batching — what coalescing K queued small
/// frames into one wire operation saves, and proof it costs an idle
/// connection nothing.
///
/// Two kinds of rows, keyed by `point` only (so the `--check` gate never
/// collides arms that share a payload):
///
/// * `single_p{N}_{batch|nobatch}` — the Nagle-free guard: sequential
///   single calls through the full engine with batching on vs off. A
///   lone call never waits for company, so the two arms must charge the
///   same ledger; the batch arm records the nobatch p50 and the delta in
///   basis points (`p50_delta_bp`, expected 0).
/// * `multi8_p{N}` — the multi-client point, measured at the transport
///   conn layer where it is deterministic: [`BATCH_DEPTH`] frames ready
///   at once (eight callers' worth) sent as K individual `send_msg`
///   calls versus one `send_frames` gather, sender + receiver ledger
///   deltas per burst. `speedup_bp` is the unbatched/batched modeled
///   cost ratio in basis points; the acceptance bar is ≥ 2×
///   (`speedup_bp >= 20000`) since coalescing pays the per-operation
///   overhead once instead of K times.
pub fn run_batching(opts: &RunOpts, git_rev: &str) -> Json {
    let warmup = opts.iters(5, 20);
    let iters = opts.iters(40, 200);
    let bursts = opts.iters(12, 48);
    let mut rows = Vec::new();

    for (label, cfg) in transports() {
        // Part A: the single-call latency guard. No jitter, so both arms
        // charge fully deterministic, directly comparable ledgers.
        for &payload in BATCHING_PAYLOADS {
            let mut nobatch_p50 = 0u64;
            for arm in ["nobatch", "batch"] {
                let mut cfg = cfg.clone();
                cfg.rpc.wire_batch = arm == "batch";
                let env = boot(&cfg, opts.seed, None);
                let mut samples = modeled_samples(&env, payload, warmup, iters);
                samples.sort_unstable();
                let p50 = percentile_ns(&samples, 0.50);
                let row = Json::obj()
                    .field("transport", label)
                    .field("point", format!("single_p{payload}_{arm}"));
                let mut row = percentile_fields(row, &mut samples);
                if arm == "nobatch" {
                    nobatch_p50 = p50;
                } else {
                    let delta = p50.abs_diff(nobatch_p50);
                    row = row
                        .field("nobatch_p50_ns", nobatch_p50)
                        .field("p50_delta_bp", delta * 10_000 / nobatch_p50.max(1));
                }
                rows.push(row);
                env.client.shutdown();
            }
        }

        // Part B: the multi-client burst point. Engine-level coalescing
        // depends on thread timing (how many callers pile up behind a
        // flush), so the serialized numbers come from the deterministic
        // conn-level equivalent: a burst of BATCH_DEPTH ready frames,
        // transmitted frame-at-a-time versus as one gather.
        for &payload in BATCHING_PAYLOADS {
            let key = rpcoib::intern::method_key("bench.Batching", "burst");
            let burst_totals = |batched: bool| -> Vec<u64> {
                let (fabric, sender, receiver, cli, srv) = conn_pair(&cfg, opts.seed);
                let frame = vec![0x6b_u8; payload];
                let run_burst = || {
                    if batched {
                        cli.send_frames(key, vec![frame.clone(); BATCH_DEPTH])
                            .expect("gathered burst");
                    } else {
                        for _ in 0..BATCH_DEPTH {
                            cli.send_msg(key, &mut |out| out.write_bytes(&frame))
                                .expect("per-frame burst");
                        }
                    }
                    for _ in 0..BATCH_DEPTH {
                        let (payload_in, _) =
                            srv.recv_msg(Duration::from_secs(10)).expect("burst recv");
                        assert_eq!(payload_in.len(), payload);
                    }
                };
                for _ in 0..2 {
                    run_burst(); // registration / pool warmup
                }
                (0..bursts)
                    .map(|_| {
                        let before = fabric.modeled_ns(sender) + fabric.modeled_ns(receiver);
                        run_burst();
                        fabric.modeled_ns(sender) + fabric.modeled_ns(receiver) - before
                    })
                    .collect()
            };
            let unbatched = burst_totals(false);
            let mut batched = burst_totals(true);
            let unbatched_ns: u64 = unbatched.iter().sum();
            let batched_ns: u64 = batched.iter().sum::<u64>().max(1);
            let frames = (BATCH_DEPTH * bursts) as u64;
            let row = Json::obj()
                .field("transport", label)
                .field("point", format!("multi{BATCH_DEPTH}_p{payload}"));
            let row = percentile_fields(row, &mut batched)
                .field("frames", frames)
                .field("unbatched_total_ns", unbatched_ns)
                .field("batched_total_ns", batched_ns)
                .field("unbatched_per_frame_ns", unbatched_ns / frames.max(1))
                .field("batched_per_frame_ns", batched_ns / frames.max(1))
                .field(
                    "modeled_calls_per_sec_unbatched",
                    (frames * 1_000_000_000)
                        .checked_div(unbatched_ns)
                        .unwrap_or(0),
                )
                .field(
                    "modeled_calls_per_sec_batched",
                    frames * 1_000_000_000 / batched_ns,
                )
                .field("speedup_bp", unbatched_ns * 10_000 / batched_ns);
            rows.push(row);
        }
    }
    header("batching", opts, git_rev).field("rows", Json::Arr(rows))
}

/// Handlers in the QoS admission model.
const QOS_HANDLERS: usize = 4;
/// Modeled handler service time per call.
const QOS_SERVICE_NS: u64 = 10_000;
/// Shared admission-queue capacity.
const QOS_CAPACITY: usize = 512;
/// Per-tenant quota (queued + executing) in the QoS-on arms.
const QOS_QUOTA: usize = 64;
/// Per-call deadline budget in the deadline-propagating (QoS-on) arms.
/// Sized between the light tenants' worst isolated sojourn (tens of µs)
/// and the flooder's quota-bound queue wait (hundreds of µs), so only
/// the flooder's stale backlog expires.
const QOS_BUDGET_NS: u64 = 200_000;
/// Light-tenant population the zipfian mix draws from.
const QOS_LIGHT_TENANTS: u64 = 200;
/// The misbehaving tenant's id.
const QOS_FLOODER: u64 = 1_000;

/// Deterministic splitmix64 step — the qos model's only randomness, so
/// the arrival streams replay exactly per seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One arrival in the qos model's virtual timeline.
struct QosArrival {
    at_ns: u64,
    tenant: u64,
}

/// Per-class (light aggregate / flooder) tally of one arm.
#[derive(Default)]
struct QosClass {
    arrivals: u64,
    executed: u64,
    shed: u64,
    busy: u64,
    /// Executed calls whose service *started* after their budget had
    /// already expired — the wasted work deadline shedding eliminates.
    wasted: u64,
    sojourn_ns: Vec<u64>,
}

impl QosClass {
    fn row(mut self, arm: &str, class: &str) -> Json {
        let row = Json::obj()
            .field("transport", "model")
            .field("point", format!("{arm}_{class}"))
            .field("arrivals", self.arrivals)
            .field("executed", self.executed)
            .field("shed", self.shed)
            .field("busy_rejected", self.busy)
            .field("wasted_executions", self.wasted);
        percentile_fields(row, &mut self.sojourn_ns)
    }
}

/// Figure: multi-tenant overload QoS — a zipfian mix of light tenants
/// plus one misbehaving flooder driven through the engine's *real*
/// [`AdmissionQueue`] by a single-threaded discrete-event model with an
/// explicit virtual clock. Four arms cross {qos on, off} × {flooder
/// present, quiet}: "on" runs the per-tenant quota, weighted-fair pop,
/// and deadline shedding exactly as the server does; "off" is the
/// pre-QoS FIFO. Everything is integer math over the seeded splitmix64
/// stream, so the file is byte-identical per seed.
///
/// The acceptance properties are asserted in-code: under the flooder,
/// the light tenants' p99 sojourn stays within 2× their quiet baseline
/// when QoS is on (and their calls are never shed); the QoS arms start
/// no call past its deadline (zero wasted executions) while the FIFO
/// flood arm demonstrably burns handler time on already-dead calls.
pub fn run_qos(opts: &RunOpts, git_rev: &str) -> Json {
    use rpcoib::admission::{AdmissionQueue, CallMeta};

    let light_calls = opts.iters(3_000, 15_000);
    let mut rows = Vec::new();
    let mut light_p99: std::collections::HashMap<&'static str, u64> =
        std::collections::HashMap::new();
    let mut wasted: std::collections::HashMap<&'static str, u64> = std::collections::HashMap::new();
    let mut on_flood_light_shed = 0u64;
    let mut on_flood_flooder_shed = 0u64;

    for (arm, qos_on, flood) in [
        ("on_quiet", true, false),
        ("on_flood", true, true),
        ("off_quiet", false, false),
        ("off_flood", false, true),
    ] {
        let mut rng = opts.seed ^ 0x9050_5f13_0dd1_u64;
        // Zipfian tenant selection: cumulative 1/rank weights, integer
        // scaled, binary-searched per draw.
        let zipf: Vec<u64> = {
            let mut acc = 0u64;
            (0..QOS_LIGHT_TENANTS)
                .map(|r| {
                    acc += 1_000_000 / (r + 1);
                    acc
                })
                .collect()
        };
        let zipf_total = *zipf.last().unwrap();

        // Light arrivals: mean 6 µs apart across the population (~42%
        // of the 4-handler service capacity on their own).
        let mut light = Vec::with_capacity(light_calls);
        let mut t = 0u64;
        for _ in 0..light_calls {
            t += 2_000 + splitmix64(&mut rng) % 8_000;
            let draw = splitmix64(&mut rng) % zipf_total;
            let tenant = 1 + zipf.partition_point(|&c| c <= draw) as u64;
            light.push(QosArrival { at_ns: t, tenant });
        }
        let horizon = t;
        // The flooder alone offers ~125% of total capacity.
        let mut flooder = Vec::new();
        if flood {
            let mut t = 0u64;
            loop {
                t += 1_500 + splitmix64(&mut rng) % 1_000;
                if t > horizon {
                    break;
                }
                flooder.push(QosArrival {
                    at_ns: t,
                    tenant: QOS_FLOODER,
                });
            }
        }
        // Merge the two streams by time (light first on ties).
        let mut arrivals = Vec::with_capacity(light.len() + flooder.len());
        let (mut i, mut j) = (0, 0);
        while i < light.len() || j < flooder.len() {
            let take_light =
                j >= flooder.len() || (i < light.len() && light[i].at_ns <= flooder[j].at_ns);
            if take_light {
                arrivals.push(&light[i]);
                i += 1;
            } else {
                arrivals.push(&flooder[j]);
                j += 1;
            }
        }

        let weights: Vec<(u64, u32)> = if qos_on {
            vec![(QOS_FLOODER, 1)]
        } else {
            Vec::new()
        };
        let quota = if qos_on { QOS_QUOTA } else { 0 };
        let queue: AdmissionQueue<(u64, u64)> = AdmissionQueue::new(QOS_CAPACITY, quota, &weights);
        let mut handlers = [0u64; QOS_HANDLERS];
        let mut light_tally = QosClass::default();
        let mut flood_tally = QosClass::default();

        // Pop everything poppable before `until`. The decision clock for
        // each pop is the freeing handler's time: for backlog that is
        // exactly when the pop happens (every queued call arrived before
        // the handler freed), and for a fresher pop the earlier reading
        // can only under-shed, never invent an expiry.
        let drain = |until: u64,
                     queue: &AdmissionQueue<(u64, u64)>,
                     handlers: &mut [u64; QOS_HANDLERS],
                     light_tally: &mut QosClass,
                     flood_tally: &mut QosClass| {
            loop {
                let slot = (0..QOS_HANDLERS).min_by_key(|&i| handlers[i]).unwrap();
                let free_at = handlers[slot];
                if free_at > until {
                    break;
                }
                let popped = queue.try_pop(free_at);
                for (_meta, (tenant, _arrival)) in &popped.shed {
                    if *tenant == QOS_FLOODER {
                        flood_tally.shed += 1;
                    } else {
                        light_tally.shed += 1;
                    }
                }
                match popped.run {
                    Some((meta, (tenant, arrival))) => {
                        let start = free_at.max(arrival);
                        let done = start + QOS_SERVICE_NS;
                        handlers[slot] = done;
                        queue.release(meta.tenant);
                        let tally = if tenant == QOS_FLOODER {
                            &mut *flood_tally
                        } else {
                            &mut *light_tally
                        };
                        tally.executed += 1;
                        tally.sojourn_ns.push(done - arrival);
                        if start > arrival + QOS_BUDGET_NS {
                            tally.wasted += 1;
                        }
                    }
                    None => {
                        if popped.shed.is_empty() {
                            break; // nothing poppable until more arrives
                        }
                    }
                }
            }
        };

        for ev in arrivals {
            drain(
                ev.at_ns,
                &queue,
                &mut handlers,
                &mut light_tally,
                &mut flood_tally,
            );
            let tally = if ev.tenant == QOS_FLOODER {
                &mut flood_tally
            } else {
                &mut light_tally
            };
            tally.arrivals += 1;
            let expires_at_ns = qos_on.then_some(ev.at_ns + QOS_BUDGET_NS);
            let meta = CallMeta {
                tenant: ev.tenant,
                expires_at_ns,
                class: Default::default(),
            };
            if queue.try_push(meta, (ev.tenant, ev.at_ns)).is_err() {
                tally.busy += 1;
            }
            drain(
                ev.at_ns,
                &queue,
                &mut handlers,
                &mut light_tally,
                &mut flood_tally,
            );
        }
        while !queue.is_empty() {
            drain(
                u64::MAX,
                &queue,
                &mut handlers,
                &mut light_tally,
                &mut flood_tally,
            );
        }

        let mut sorted = light_tally.sojourn_ns.clone();
        sorted.sort_unstable();
        light_p99.insert(arm, percentile_ns(&sorted, 0.99));
        wasted.insert(arm, light_tally.wasted + flood_tally.wasted);
        if arm == "on_flood" {
            on_flood_light_shed = light_tally.shed;
            on_flood_flooder_shed = flood_tally.shed;
        }
        if flood {
            rows.push(flood_tally.row(arm, "flooder"));
        }
        rows.push(light_tally.row(arm, "light"));
    }

    // The acceptance properties this figure exists to hold.
    let quiet = light_p99["on_quiet"].max(1);
    let flooded = light_p99["on_flood"];
    assert!(
        flooded <= 2 * quiet,
        "QoS-on light p99 under flood ({flooded} ns) exceeds 2x the quiet \
         baseline ({quiet} ns)"
    );
    assert_eq!(
        wasted["on_quiet"] + wasted["on_flood"],
        0,
        "a deadline-propagating arm must never start a call past its budget"
    );
    assert!(
        wasted["off_flood"] > 0,
        "the FIFO flood arm should demonstrably execute already-dead calls"
    );
    assert!(
        on_flood_flooder_shed > 0,
        "the flooder's expired backlog must be shed, not executed"
    );
    assert_eq!(
        on_flood_light_shed, 0,
        "isolated light tenants never wait long enough to be shed"
    );

    header("qos", opts, git_rev)
        .field("light_p99_ratio_bp", flooded * 10_000 / quiet)
        .field("rows", Json::Arr(rows))
}

/// Active connections in the connections figure — the handful actually
/// carrying traffic while the idle population sits parked.
const CONN_ACTIVE: usize = 16;
/// Idle-population sweep: 0 idle is the baseline arm every other arm's
/// active-call latency must match under the event model.
pub const CONN_IDLE_COUNTS: &[usize] = &[0, 1, 100, 1_000, 10_000, 20_000, 50_000];
/// Frames a reader burst serves per pop before re-arming (level-trigger
/// fairness budget, mirroring the server's per-pop burst).
const CONN_BURST: usize = 4;
/// Arrivals between reader drain points — batching several arrivals per
/// drain is what exercises the wake token's dedup (many fires, one pop).
const CONN_DRAIN_EVERY: usize = 4;
/// Modeled sender-side cost of firing a ready hook (enqueue a token).
const CONN_WAKE_NS: u64 = 400;
/// Modeled reader cost of one ready-queue pop (mutex + condvar round).
const CONN_POP_NS: u64 = 300;
/// Modeled reader cost of reading + dispatching one frame.
const CONN_FRAME_NS: u64 = 10_000;
/// Modeled cost of one `poll_ready` probe in the sweep model — what the
/// pre-event reader paid per connection per scan pass.
const CONN_PROBE_NS: u64 = 150;

/// Per-arm tally of the connections model.
#[derive(Default)]
struct ConnTally {
    delivered: u64,
    wakes: u64,
    pops: u64,
    rearms: u64,
    passes: u64,
    probes: u64,
    host_ns: u64,
    idle_cost_ns: u64,
    queue_depth_max: u64,
    sojourn_ns: Vec<u64>,
}

/// Figure: connection scaling of the reader's readiness model — 1 to 50k
/// connections, [`CONN_ACTIVE`] of them active, the rest idle. Both arms
/// drive the *same* seeded arrival stream (independent of the idle
/// count) through a discrete-event model with an explicit virtual clock:
///
/// * `event_idle{N}` runs the engine's **real** [`ReadyQueue`] +
///   [`WakeState`] (token dedup, `begin_poll` re-arm discipline, burst
///   budget + level-trigger re-queue) and charges [`CONN_WAKE_NS`] per
///   hook fire, [`CONN_POP_NS`] per pop, [`CONN_FRAME_NS`] per frame.
///   Idle connections never fire, so they charge exactly nothing.
/// * `sweep_idle{N}` replays the pre-event reader: every wake-up scans
///   the whole slab, charging [`CONN_PROBE_NS`] × conns per pass before
///   any frame is served.
///
/// All arithmetic is integer over the seeded splitmix64 stream, so the
/// file is byte-identical per seed. The acceptance properties are
/// asserted in-code: the event arms' active-call sojourns are *identical*
/// across the whole idle sweep (per-idle-connection cost is zero, not
/// merely small), every frame is delivered with the queue drained, and
/// the sweep arms' idle cost grows with the population until it dwarfs
/// the event model at 20k+ connections.
pub fn run_connections(opts: &RunOpts, git_rev: &str) -> Json {
    use rpcoib::readiness::{token, token_slot};
    use std::collections::VecDeque;

    let calls_per_conn = opts.iters(8, 32);

    // One arrival stream per (seed), shared by every arm: per active
    // conn, `calls_per_conn` frames 2–10 µs apart, merged by time (ties
    // broken by conn index, so the order is fully deterministic).
    let mut rng = opts.seed ^ 0xc0_4e_c7_10_4e_5d_u64;
    let mut arrivals: Vec<(u64, usize)> = Vec::with_capacity(CONN_ACTIVE * calls_per_conn);
    for conn in 0..CONN_ACTIVE {
        let mut t = 0u64;
        for _ in 0..calls_per_conn {
            t += 2_000 + splitmix64(&mut rng) % 8_000;
            arrivals.push((t, conn));
        }
    }
    arrivals.sort_unstable();
    let total_frames = arrivals.len() as u64;

    let run_event = |idle: usize| -> ConnTally {
        let queue = Arc::new(rpcoib::ReadyQueue::new(None));
        // Idle conns occupy slots [0, idle); active conns sit above them,
        // so a stale-slot bug would index into the idle population.
        let wakes: Vec<rpcoib::WakeState> = (0..idle + CONN_ACTIVE)
            .map(|slot| rpcoib::WakeState::new(token(slot, 0), Arc::clone(&queue)))
            .collect();
        let mut pending: Vec<VecDeque<u64>> = vec![VecDeque::new(); CONN_ACTIVE];
        let mut tally = ConnTally::default();
        let mut reader_free = 0u64;
        let mut drain = |tally: &mut ConnTally, pending: &mut Vec<VecDeque<u64>>| {
            while let Some(tok) = queue.try_pop() {
                let k = token_slot(tok) - idle;
                tally.pops += 1;
                tally.host_ns += CONN_POP_NS;
                wakes[idle + k].begin_poll();
                let Some(&floor) = pending[k].front() else {
                    continue; // spurious-free: token but no frame ⇒ re-armed race
                };
                reader_free = reader_free.max(floor) + CONN_POP_NS;
                for _ in 0..CONN_BURST {
                    let Some(arr) = pending[k].pop_front() else {
                        break;
                    };
                    reader_free += CONN_FRAME_NS;
                    tally.host_ns += CONN_FRAME_NS;
                    tally.delivered += 1;
                    tally.sojourn_ns.push(reader_free - arr);
                }
                if !pending[k].is_empty() {
                    // Level-trigger re-arm: still readable, back of the line.
                    tally.rearms += 1;
                    wakes[idle + k].wake();
                }
            }
        };
        for (i, &(at, k)) in arrivals.iter().enumerate() {
            pending[k].push_back(at);
            tally.wakes += 1;
            tally.host_ns += CONN_WAKE_NS;
            wakes[idle + k].wake();
            tally.queue_depth_max = tally.queue_depth_max.max(queue.len() as u64);
            if i % CONN_DRAIN_EVERY == CONN_DRAIN_EVERY - 1 {
                drain(&mut tally, &mut pending);
            }
        }
        while tally.delivered < total_frames {
            drain(&mut tally, &mut pending);
        }
        assert!(queue.is_empty(), "event model left tokens queued");
        tally
    };

    let run_sweep = |idle: usize| -> ConnTally {
        let total_conns = (idle + CONN_ACTIVE) as u64;
        let mut pending: Vec<VecDeque<u64>> = vec![VecDeque::new(); CONN_ACTIVE];
        let mut tally = ConnTally::default();
        let mut reader_free = 0u64;
        let mut drain = |tally: &mut ConnTally, pending: &mut Vec<VecDeque<u64>>| {
            if pending.iter().all(VecDeque::is_empty) {
                return;
            }
            // One scan pass probes every conn — idle ones included — and
            // only then serves whatever the probes found ready.
            let floor = pending
                .iter()
                .filter_map(|q| q.front().copied())
                .min()
                .unwrap();
            tally.passes += 1;
            tally.probes += total_conns;
            tally.host_ns += total_conns * CONN_PROBE_NS;
            tally.idle_cost_ns += idle as u64 * CONN_PROBE_NS;
            reader_free = reader_free.max(floor) + total_conns * CONN_PROBE_NS;
            for q in pending.iter_mut() {
                while let Some(arr) = q.pop_front() {
                    reader_free += CONN_FRAME_NS;
                    tally.host_ns += CONN_FRAME_NS;
                    tally.delivered += 1;
                    tally.sojourn_ns.push(reader_free - arr);
                }
            }
        };
        for (i, &(at, k)) in arrivals.iter().enumerate() {
            pending[k].push_back(at);
            if i % CONN_DRAIN_EVERY == CONN_DRAIN_EVERY - 1 {
                drain(&mut tally, &mut pending);
            }
        }
        drain(&mut tally, &mut pending);
        tally
    };

    let mut rows = Vec::new();
    let mut event_p50 = Vec::new();
    let mut sweep_idle_cost = Vec::new();
    let mut sweep_p50 = Vec::new();
    for &idle in CONN_IDLE_COUNTS {
        for arm in ["event", "sweep"] {
            let mut tally = if arm == "event" {
                run_event(idle)
            } else {
                run_sweep(idle)
            };
            assert_eq!(
                tally.delivered, total_frames,
                "{arm}_idle{idle}: lost frames"
            );
            let row = Json::obj()
                .field("transport", "model")
                .field("point", format!("{arm}_idle{idle}"))
                .field("idle_conns", idle as u64)
                .field("active_conns", CONN_ACTIVE as u64)
                .field("frames", tally.delivered)
                .field("wakes", tally.wakes)
                .field("pops", tally.pops)
                .field("rearms", tally.rearms)
                .field("sweep_passes", tally.passes)
                .field("probes", tally.probes)
                .field("host_ns", tally.host_ns)
                .field("idle_cost_ns", tally.idle_cost_ns)
                .field("queue_depth_max", tally.queue_depth_max);
            let row = percentile_fields(row, &mut tally.sojourn_ns);
            if arm == "event" {
                assert_eq!(tally.idle_cost_ns, 0, "idle conns must charge nothing");
                event_p50.push(tally.sojourn_ns[tally.sojourn_ns.len() / 2]);
            } else {
                sweep_idle_cost.push(tally.idle_cost_ns);
                sweep_p50.push(tally.sojourn_ns[tally.sojourn_ns.len() / 2]);
            }
            rows.push(row);
        }
    }

    // The acceptance properties this figure exists to hold. The event
    // arms share one arrival stream and idle conns never fire, so the
    // sojourn distribution must be *identical* across the idle sweep —
    // flat per-idle-conn cost, exactly zero.
    for (i, &p50) in event_p50.iter().enumerate() {
        assert_eq!(
            p50, event_p50[0],
            "event-model p50 at idle={} diverged from the 0-idle arm",
            CONN_IDLE_COUNTS[i]
        );
    }
    for w in sweep_idle_cost.windows(2) {
        assert!(
            w[1] > w[0],
            "sweep idle cost must grow with the idle population"
        );
    }
    let last = CONN_IDLE_COUNTS.len() - 1;
    assert!(
        sweep_p50[last] > 10 * event_p50[last].max(1),
        "at 50k conns the sweep's scan cost must dwarf the event model"
    );

    header("connections", opts, git_rev)
        .field("active_conns", CONN_ACTIVE as u64)
        .field("wake_ns", CONN_WAKE_NS)
        .field("pop_ns", CONN_POP_NS)
        .field("frame_ns", CONN_FRAME_NS)
        .field("probe_ns", CONN_PROBE_NS)
        .field("rows", Json::Arr(rows))
}

/// Bulk-plane payload sweep: large transfers, 64 KiB – 2 MiB.
pub const BULK_PAYLOADS: &[usize] = &[65536, 262144, 1048576, 2097152];

/// Part B pipeline-model geometry: a 16 MiB peer region carved as one
/// slot (the paper's one-deep credit gate) versus sixteen 1 MiB slots,
/// with 16 transfers issued by 4 sender threads.
const BULK_PIPE_REGION: usize = 16 * 1024 * 1024;
const BULK_PIPE_SLOTS: usize = 16;
const BULK_PIPE_TRANSFERS: usize = 16;
const BULK_PIPE_THREADS: usize = 4;
/// Calls driven through the adaptive-crossover arm (Part C).
const BULK_ADAPTIVE_CALLS: usize = 160;
/// Small frame the adaptive arm learns about (log2 bucket 12, where the
/// bulk path's flat surcharge over eager — the length-header write in
/// the doorbell chain — clears the retune margin).
const BULK_ADAPTIVE_LEN: usize = 5_000;
/// Deliberately-wrong static threshold the adaptive arm starts from.
const BULK_ADAPTIVE_START: usize = 2048;
/// The bucket edge the controller must converge to for 5 kB frames.
const BULK_ADAPTIVE_CONVERGED: usize = 8_191;

/// Deterministic stage-pipeline makespan for [`BULK_PIPE_TRANSFERS`]
/// large frames of `payload` bytes through a `slots`-slot ring over a
/// [`BULK_PIPE_REGION`]-byte region — the same consumer-stage model shape
/// as the QoS admission figure, driven by the calibrated network model.
///
/// Stages per frame: sender-thread CPU (stack cost of the header write
/// plus each gather segment), a serialized sender egress (wire time of
/// every write), message latency, then a serialized receiver drain (the
/// payload's ingress wire time plus the modeled region→pool memcpy).
/// Slot credits mirror the transport's ring arithmetic exactly — in-order
/// allocation, wrap-skip-as-consume, full-drain reset — and each frame's
/// consumed slots return one message latency after its drain completes.
/// With one slot every frame waits out its predecessor's full
/// drain-and-credit round trip; with sixteen, frames overlap until the
/// slowest stage (egress or drain) saturates.
fn bulk_makespan(m: &simnet::NetworkModel, slots: usize, payload: usize, seg_limit: usize) -> u64 {
    let slot = BULK_PIPE_REGION / slots;
    let footprint = payload + 8;
    let k = footprint.div_ceil(slot);
    assert!(k <= slots, "pipeline-model frame must fit the ring");

    let mut stack_cpu = m.stack_ns(8);
    let mut wire_total = m.wire_ns(8);
    let mut remaining = payload;
    while remaining > 0 {
        let n = remaining.min(seg_limit);
        stack_cpu += m.stack_ns(n);
        wire_total += m.wire_ns(n);
        remaining -= n;
    }
    let drain = m.wire_ns(payload) + rpcoib::hostcost::drain_ns(payload);
    let lat = m.base_latency_ns;

    let mut thread_free = [0u64; BULK_PIPE_THREADS];
    let mut egress_free = 0u64;
    let mut recv_free = 0u64;
    // Free-at times of the ring's slots, oldest first. Each grant pushes
    // its consumed slots back with their (future) credit-return time, so
    // the queue always holds exactly `slots` entries, sorted.
    let mut returns: std::collections::VecDeque<u64> = std::iter::repeat_n(0, slots).collect();
    let mut ring_pos = 0usize;
    let mut makespan = 0u64;
    for i in 0..BULK_PIPE_TRANSFERS {
        let tail = slots - ring_pos;
        let (needed, consumed) = if k <= tail {
            ring_pos = (ring_pos + k) % slots;
            (k, k)
        } else if tail + k <= slots {
            // Wrap: the tail stub is consumed along with the frame.
            ring_pos = k % slots;
            (tail + k, tail + k)
        } else {
            // Full drain, then the cursor resets to slot 0.
            ring_pos = k % slots;
            (slots, k)
        };
        let credit_ready = returns[needed - 1];
        for _ in 0..consumed.min(needed) {
            returns.pop_front();
        }
        let tid = i % BULK_PIPE_THREADS;
        let start = thread_free[tid].max(credit_ready);
        let posted = (start + stack_cpu).max(egress_free);
        thread_free[tid] = posted;
        egress_free = posted + wire_total;
        let done = recv_free.max(egress_free + lat) + drain;
        recv_free = done;
        let credit_at = done + lat;
        for _ in 0..consumed {
            returns.push_back(credit_at);
        }
        makespan = makespan.max(done);
    }
    makespan
}

/// The one-sided bulk data-plane figure (DESIGN.md §12).
///
/// * `lone_p{N}_slots{S}` — real-connection lone-transfer guard: one
///   large call at a time through a 1-slot ring (the paper's one-deep
///   gate) versus the default 4-slot ring. The arms must charge
///   *identical* ledgers (`p50_delta_bp == 0` exactly): slot accounting
///   is bookkeeping, not traffic. The measured window also asserts the
///   registration-cache claim — zero new registrations, zero pool
///   misses, zero oversize allocations at steady state, on both ends.
/// * `pipe_p{N}` — the deterministic pipeline model: makespan of 16
///   pipelined transfers, one-deep versus 16 slots ([`bulk_makespan`]).
///   Acceptance: `speedup_bp >= 20000` (≥ 2×) on every payload.
/// * `adaptive_crossover` — a live connection starting from a
///   deliberately-wrong 2 KiB static threshold with
///   `adaptive_rdma_threshold` on must relearn the eager/bulk switch
///   point for 5 kB frames (the bucket edge 8191); the static control
///   arm must not move at all.
pub fn run_bulk(opts: &RunOpts, git_rev: &str) -> Json {
    use rpcoib::transport::Conn;

    let base = BenchConfig::rpcoib();
    let warmup = opts.iters(3, 6);
    let iters = opts.iters(12, 48);
    let mut rows = Vec::new();

    // Part A: lone-transfer latency and steady-state counters.
    for &payload in BULK_PAYLOADS {
        let mut one_deep_p50 = 0u64;
        for &slots in &[1usize, 4] {
            let mut rpc = base.rpc.clone();
            rpc.large_slots = slots;
            let (fabric, cli_node, srv_node, cli, srv, cli_ctx, srv_ctx) =
                bulk_pair(base.model, &rpc, opts.seed);
            let key = rpcoib::intern::method_key("bench.Bulk", "lone");
            let body = vec![0x6b_u8; payload];
            let transfer = || {
                cli.send_msg(key, &mut |out| out.write_bytes(&body))
                    .expect("bulk send");
                let (got, _) = srv.recv_msg(Duration::from_secs(10)).expect("bulk recv");
                assert_eq!(got.len(), payload);
                // Absorb the credit return into the sender's ledger (a
                // credit-only completion surfaces as a timeout).
                match cli.recv_msg(Duration::from_millis(5)) {
                    Err(rpcoib::RpcError::Timeout) => {}
                    other => panic!("expected credit-only recv, got {other:?}"),
                }
            };
            for _ in 0..warmup {
                transfer();
            }
            let (_, _, _, regs_before) = fabric.stats().snapshot();
            let (_, cli_miss_b, _, cli_over_b) = cli_ctx.pool_stats();
            let (_, srv_miss_b, _, srv_over_b) = srv_ctx.pool_stats();
            let mut samples: Vec<u64> = (0..iters)
                .map(|_| {
                    let before = fabric.modeled_ns(cli_node) + fabric.modeled_ns(srv_node);
                    transfer();
                    fabric.modeled_ns(cli_node) + fabric.modeled_ns(srv_node) - before
                })
                .collect();
            let (_, _, _, regs_after) = fabric.stats().snapshot();
            let (_, cli_miss_a, _, cli_over_a) = cli_ctx.pool_stats();
            let (_, srv_miss_a, _, srv_over_a) = srv_ctx.pool_stats();
            let new_regs = regs_after - regs_before;
            let new_misses = (cli_miss_a - cli_miss_b) + (srv_miss_a - srv_miss_b);
            let new_oversize = (cli_over_a - cli_over_b) + (srv_over_a - srv_over_b);
            assert_eq!(
                new_regs, 0,
                "lone_p{payload}_slots{slots}: steady-state large calls registered memory"
            );
            assert_eq!(
                new_misses, 0,
                "lone_p{payload}_slots{slots}: steady-state large calls missed the pool"
            );
            assert_eq!(
                new_oversize, 0,
                "lone_p{payload}_slots{slots}: steady-state large calls allocated oversize"
            );
            samples.sort_unstable();
            let p50 = percentile_ns(&samples, 0.50);
            let row = Json::obj()
                .field("transport", "verbs")
                .field("point", format!("lone_p{payload}_slots{slots}"));
            let mut row = percentile_fields(row, &mut samples)
                .field("steady_registrations", new_regs)
                .field("steady_pool_misses", new_misses)
                .field("steady_oversize", new_oversize);
            if slots == 1 {
                one_deep_p50 = p50;
            } else {
                let delta = p50.abs_diff(one_deep_p50);
                assert_eq!(
                    delta, 0,
                    "lone_p{payload}: multi-slot ring changed a lone transfer's ledger \
                     ({one_deep_p50} vs {p50} ns)"
                );
                row = row
                    .field("one_deep_p50_ns", one_deep_p50)
                    .field("p50_delta_bp", delta * 10_000 / one_deep_p50.max(1));
            }
            rows.push(row);
        }
    }

    // Part B: the pipelining claim, as a deterministic makespan model.
    for &payload in BULK_PAYLOADS {
        let one = bulk_makespan(&base.model, 1, payload, base.rpc.recv_buf_bytes);
        let multi = bulk_makespan(
            &base.model,
            BULK_PIPE_SLOTS,
            payload,
            base.rpc.recv_buf_bytes,
        );
        let speedup = one * 10_000 / multi.max(1);
        assert!(
            speedup >= 20_000,
            "pipe_p{payload}: multi-slot ring must model ≥2× pipelined throughput, \
             got {speedup} bp ({one} vs {multi} ns)"
        );
        rows.push(
            Json::obj()
                .field("transport", "model")
                .field("point", format!("pipe_p{payload}"))
                .field("region_bytes", BULK_PIPE_REGION as u64)
                .field("slots", BULK_PIPE_SLOTS as u64)
                .field("transfers", BULK_PIPE_TRANSFERS as u64)
                .field("sender_threads", BULK_PIPE_THREADS as u64)
                .field("makespan_one_deep_ns", one)
                .field("makespan_multi_slot_ns", multi)
                .field("p99_ns", multi)
                .field("speedup_bp", speedup),
        );
    }

    // Part C: the adaptive crossover recovers from a wrong static knob.
    {
        let drive = |adaptive: bool, calls: usize| -> usize {
            let mut rpc = base.rpc.clone();
            rpc.rdma_threshold = BULK_ADAPTIVE_START;
            rpc.adaptive_rdma_threshold = adaptive;
            let (_fabric, _cn, _sn, cli, srv, _cctx, _sctx) =
                bulk_pair(base.model, &rpc, opts.seed);
            let key = rpcoib::intern::method_key("bench.Bulk", "adaptive");
            let cli2 = Arc::clone(&cli);
            let progress = std::thread::spawn(move || loop {
                match cli2.recv_msg(Duration::from_millis(50)) {
                    Err(rpcoib::RpcError::Timeout) => continue,
                    _ => return,
                }
            });
            let srv2 = Arc::clone(&srv);
            let drain = std::thread::spawn(move || {
                for _ in 0..calls {
                    srv2.recv_msg(Duration::from_secs(10))
                        .expect("adaptive drain");
                }
            });
            let body = vec![0x6b_u8; BULK_ADAPTIVE_LEN];
            for _ in 0..calls {
                cli.send_msg(key, &mut |out| out.write_bytes(&body))
                    .expect("adaptive send");
            }
            drain.join().expect("drain thread");
            let threshold = cli.crossover_threshold();
            cli.close();
            progress.join().expect("progress thread");
            threshold
        };
        let converged = drive(true, BULK_ADAPTIVE_CALLS);
        assert_eq!(
            converged, BULK_ADAPTIVE_CONVERGED,
            "adaptive crossover failed to converge to the 5 kB bucket edge"
        );
        let control = drive(false, 48);
        assert_eq!(
            control, BULK_ADAPTIVE_START,
            "static control arm must not move"
        );
        rows.push(
            Json::obj()
                .field("point", "adaptive_crossover")
                .field("calls", BULK_ADAPTIVE_CALLS as u64)
                .field("frame_bytes", BULK_ADAPTIVE_LEN as u64)
                .field("start_threshold", BULK_ADAPTIVE_START as u64)
                .field("converged_threshold", converged as u64)
                .field("static_control_threshold", control as u64),
        );
    }

    header("bulk", opts, git_rev).field("rows", Json::Arr(rows))
}

/// A raw verbs conn pair on a fresh seeded fabric, with both endpoints'
/// [`rpcoib::IbContext`]s exposed so the bulk figure can read pool and
/// registration counters. Geometry comes from `rpc` verbatim.
#[allow(clippy::type_complexity)]
fn bulk_pair(
    net: simnet::NetworkModel,
    rpc: &rpcoib::RpcConfig,
    seed: u64,
) -> (
    Fabric,
    NodeId,
    NodeId,
    Arc<rpcoib::transport::rdma::RdmaConn>,
    Arc<rpcoib::transport::rdma::RdmaConn>,
    rpcoib::IbContext,
    rpcoib::IbContext,
) {
    use rpcoib::transport::rdma::RdmaConn;
    use simnet::SimListener;

    let fabric = Fabric::new(net);
    fabric.set_fault_seed(seed);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let addr = SimAddr::new(server_node, 9701);
    let listener = SimListener::bind(&fabric, addr).expect("bind");
    let cli_ctx = rpcoib::IbContext::new(&fabric, client_node, rpc).expect("client ctx");
    let srv_ctx = rpcoib::IbContext::new(&fabric, server_node, rpc).expect("server ctx");
    let f2 = fabric.clone();
    let ctx2 = cli_ctx.clone();
    let rpc2 = rpc.clone();
    let h = std::thread::spawn(move || {
        let stream = simnet::SimStream::connect(&f2, client_node, addr).unwrap();
        RdmaConn::bootstrap(&stream, &ctx2, &rpc2).unwrap()
    });
    let (srv_stream, _) = listener.accept().expect("accept");
    let srv = RdmaConn::bootstrap(&srv_stream, &srv_ctx, rpc).expect("server bootstrap");
    let cli = h.join().expect("client bootstrap");
    (
        fabric,
        client_node,
        server_node,
        Arc::new(cli),
        Arc::new(srv),
        cli_ctx,
        srv_ctx,
    )
}

/// A raw transport conn pair on a fresh seeded fabric: the client end,
/// the server end, and the two node ids whose ledgers the batching burst
/// reads. Socket conns get the engine's framing buffer defaults; verbs
/// conns bootstrap through the same stream exchange the engine uses.
#[allow(clippy::type_complexity)]
fn conn_pair(
    cfg: &BenchConfig,
    seed: u64,
) -> (
    Fabric,
    NodeId,
    NodeId,
    Arc<dyn rpcoib::transport::Conn>,
    Arc<dyn rpcoib::transport::Conn>,
) {
    use rpcoib::transport::rdma::RdmaConn;
    use rpcoib::transport::socket::SocketConn;
    use simnet::SimListener;

    let fabric = Fabric::new(cfg.model);
    fabric.set_fault_seed(seed);
    let server_node = fabric.add_node();
    let client_node = fabric.add_node();
    let addr = SimAddr::new(server_node, 9700);
    let listener = SimListener::bind(&fabric, addr).expect("bind");
    let f2 = fabric.clone();
    let connect =
        std::thread::spawn(move || simnet::SimStream::connect(&f2, client_node, addr).unwrap());
    let (srv_stream, _) = listener.accept().expect("accept");
    let cli_stream = connect.join().expect("connect");
    if cfg.rpc.ib_enabled {
        let cli_ctx = rpcoib::IbContext::new(&fabric, client_node, &cfg.rpc).expect("client ctx");
        let srv_ctx = rpcoib::IbContext::new(&fabric, server_node, &cfg.rpc).expect("server ctx");
        let f3 = fabric.clone();
        let rpc = cfg.rpc.clone();
        let h = std::thread::spawn(move || {
            let _ = &f3;
            RdmaConn::bootstrap(&cli_stream, &cli_ctx, &rpc).unwrap()
        });
        let srv = RdmaConn::bootstrap(&srv_stream, &srv_ctx, &cfg.rpc).expect("server bootstrap");
        let cli = h.join().expect("client bootstrap");
        (
            fabric,
            client_node,
            server_node,
            Arc::new(cli),
            Arc::new(srv),
        )
    } else {
        let cli = SocketConn::new(cli_stream, wire::buffer::INITIAL_CAPACITY)
            .with_batch(cfg.rpc.wire_batch);
        let srv =
            SocketConn::new(srv_stream, cfg.rpc.server_buffer_init).with_batch(cfg.rpc.wire_batch);
        (
            fabric,
            client_node,
            server_node,
            Arc::new(cli),
            Arc::new(srv),
        )
    }
}

/// Best-effort `git rev-parse HEAD` (the files record provenance; two
/// runs from the same checkout still diff byte-identical).
/// OS workers driving the `handlers_mn` model arms (the figure's
/// reference point: "100k parked calls on 4 workers").
const MN_WORKERS: usize = 4;
/// Modeled service cost of one fast call's single poll.
const MN_FAST_SERVICE_NS: u64 = 4_000;
/// Modeled cost of a poll that parks — or later retires — a suspended
/// call frame (queue ops + one closure invocation; no stack switch).
const MN_PARK_POLL_NS: u64 = 500;

/// Figure: the M:N handler runtime (`handler_runtime = mn`) — parked
/// calls cost bytes, not threads.
///
/// **Part A (real engine, both transports).** A lone sequential
/// ping-pong under `threads` versus `mn`: the runtime choice must be
/// invisible to the modeled ledger when nothing suspends. Asserted
/// in-code: the p50 delta is *exactly* 0 bp on both transports (same
/// seed ⇒ same jitter draws ⇒ identical samples).
///
/// **Part B (virtual time).** The *real* [`Sched`] — same queues, same
/// wake cells, same timer heap the server mounts — driven
/// single-threaded on a virtual clock: a `quiet` arm runs a seeded fast
/// call stream alone; the `parked_flood` arm first parks ≥ 1000 call
/// frames on 4 workers, runs the identical fast stream *over* them,
/// then wakes and drains the lot. Asserted in-code: parked-peak ≥ 1000,
/// fast-call p99 ≤ 2× the quiet baseline, every frame retired, zero
/// residue after the drain. Integer arithmetic over splitmix64 keeps
/// the file byte-identical per seed.
pub fn run_handlers_mn(opts: &RunOpts, git_rev: &str) -> Json {
    use rpcoib::metrics::{MetricsRegistry, ShardRole};
    use rpcoib::{HandlerRuntime, Sched, Step};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let mut rows = Vec::new();

    // ---- Part A: lone-call equivalence on the real engine. ----
    let warmup = opts.iters(5, 20);
    let iters = opts.iters(40, 200);
    for (label, cfg) in transports() {
        let mut p50 = std::collections::HashMap::new();
        for runtime in [HandlerRuntime::Threads, HandlerRuntime::Mn] {
            let mut cfg = cfg.clone();
            cfg.rpc.handler_runtime = runtime;
            let env = boot(&cfg, opts.seed, Some(JITTER));
            let mut samples = modeled_samples(&env, 512, warmup, iters);
            let row = Json::obj()
                .field("transport", label)
                .field("point", format!("lone_{}", runtime.name()));
            let row = percentile_fields(row, &mut samples);
            p50.insert(runtime.name(), percentile_ns(&samples, 0.50));
            rows.push(row);
            env.client.shutdown();
        }
        let (threads, mn) = (p50["threads"], p50["mn"]);
        assert_eq!(
            threads, mn,
            "{label}: a lone call must cost identically under threads and mn \
             (threads p50 {threads} ns vs mn p50 {mn} ns; delta must be 0 bp)"
        );
    }

    // ---- Part B: the runtime itself under a parked-call flood. ----
    let parked_tasks = opts.iters(1_500, 20_000);
    let fast_calls = opts.iters(3_000, 15_000);
    let mut fast_p99: std::collections::HashMap<&'static str, u64> =
        std::collections::HashMap::new();
    for (arm, parked_n) in [("quiet", 0usize), ("parked_flood", parked_tasks)] {
        let metrics = MetricsRegistry::new(false);
        let stats: Vec<_> = (0..MN_WORKERS)
            .map(|i| metrics.register_shard(ShardRole::Worker, i))
            .collect();
        let sched = Sched::new(MN_WORKERS, stats);
        // The driver's clock reading at the current poll, visible to the
        // task closures (they compute their own completion time), and
        // the cost each closure charges for the poll that just ran.
        let now = Arc::new(AtomicU64::new(0));
        let poll_cost = Arc::new(AtomicU64::new(0));
        let woken = Arc::new(AtomicU64::new(0));
        let sojourns: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(fast_calls)));
        let handles = Arc::new(Mutex::new(Vec::with_capacity(parked_n)));

        // Park phase: `parked_n` calls spawn round-robin onto the worker
        // queues (exercising local pops and steals), poll once, and
        // suspend on their wake handles. Each frame now costs bytes.
        for i in 0..parked_n {
            let handles = Arc::clone(&handles);
            let woken = Arc::clone(&woken);
            let poll_cost = Arc::clone(&poll_cost);
            sched.spawn(i % MN_WORKERS, move |cx| {
                poll_cost.store(MN_PARK_POLL_NS, Ordering::Relaxed);
                if cx.polls() == 0 {
                    handles.lock().unwrap().push(cx.wake_handle());
                    return Step::Park;
                }
                woken.fetch_add(1, Ordering::Relaxed);
                Step::Done
            });
        }

        // Virtual-time driver, mirroring `run_qos`: the next poll runs
        // on the earliest-free worker at `max(free_at, floor)`; `floor`
        // is the newest arrival, so an idle worker never polls a call
        // before it exists.
        let mut free_at = [0u64; MN_WORKERS];
        let drain = |until: u64, floor: u64, free_at: &mut [u64; MN_WORKERS], sched: &Sched| loop {
            let slot = (0..MN_WORKERS).min_by_key(|&i| free_at[i]).unwrap();
            let t = free_at[slot].max(floor);
            if t > until {
                break;
            }
            sched.fire_timers(t);
            let Some(task) = sched.next_task(slot) else {
                break;
            };
            now.store(t, Ordering::Relaxed);
            sched.run(slot, task, t);
            free_at[slot] = t + poll_cost.load(Ordering::Relaxed);
        };
        drain(u64::MAX, 0, &mut free_at, &sched);
        if parked_n > 0 {
            assert!(
                sched.parked() == parked_n,
                "{arm}: {} of {parked_n} frames parked",
                sched.parked()
            );
        }

        // Fast stream: seeded arrivals (mean 6 µs apart), one-poll calls
        // racing over the parked population.
        let stream_base = *free_at.iter().max().unwrap();
        let mut rng = opts.seed ^ 0x004d_4e50_5231_300a_u64;
        let mut at = stream_base;
        for _ in 0..fast_calls {
            at += 2_000 + splitmix64(&mut rng) % 8_000;
            drain(at, 0, &mut free_at, &sched);
            let arrival = at;
            let now = Arc::clone(&now);
            let poll_cost = Arc::clone(&poll_cost);
            let sojourns = Arc::clone(&sojourns);
            sched.inject(move |_cx| {
                poll_cost.store(MN_FAST_SERVICE_NS, Ordering::Relaxed);
                let done = now.load(Ordering::Relaxed) + MN_FAST_SERVICE_NS;
                sojourns.lock().unwrap().push(done - arrival);
                Step::Done
            });
            drain(at, at, &mut free_at, &sched);
        }
        drain(u64::MAX, at, &mut free_at, &sched);

        // Wake-and-drain: every parked frame retires; nothing survives.
        let wake_at = free_at.iter().max().unwrap().max(&at) + 1;
        for h in handles.lock().unwrap().drain(..) {
            h.wake();
        }
        drain(u64::MAX, wake_at, &mut free_at, &sched);
        assert_eq!(
            woken.load(Ordering::Relaxed) as usize,
            parked_n,
            "{arm}: every parked frame must be woken and retired exactly once"
        );
        assert_eq!(
            sched.residue(),
            0,
            "{arm}: no frame, slot, or timer survives"
        );
        if parked_n > 0 {
            assert!(
                sched.parked_peak() >= 1_000,
                "{arm}: parked-peak {} never reached the figure's 1000-frame floor",
                sched.parked_peak()
            );
        }

        let mut fast = std::mem::take(&mut *sojourns.lock().unwrap());
        assert_eq!(fast.len(), fast_calls, "{arm}: every fast call completed");
        let shard_rows: Vec<Json> = metrics
            .shard_snapshot()
            .into_iter()
            .map(|s| {
                Json::obj()
                    .field("worker", s.index as u64)
                    .field("processed", s.processed)
                    .field("steals", s.steals)
                    .field("parks", s.parks)
                    .field("wakes", s.wakes)
            })
            .collect();
        let row = Json::obj()
            .field("transport", "model")
            .field("point", arm)
            .field("workers", MN_WORKERS as u64)
            .field("parked", parked_n as u64)
            .field("parked_peak", sched.parked_peak() as u64);
        let row = percentile_fields(row, &mut fast);
        fast_p99.insert(arm, percentile_ns(&fast, 0.99));
        rows.push(row.field("shards", Json::Arr(shard_rows)));
    }

    let quiet = fast_p99["quiet"].max(1);
    let flooded = fast_p99["parked_flood"];
    assert!(
        flooded <= 2 * quiet,
        "fast-call p99 over >=1000 parked frames ({flooded} ns) exceeds 2x \
         the quiet baseline ({quiet} ns)"
    );

    header("handlers_mn", opts, git_rev)
        .field("fast_p99_ratio_bp", flooded * 10_000 / quiet)
        .field("rows", Json::Arr(rows))
}

pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&sorted, 0.50), 50);
        assert_eq!(percentile_ns(&sorted, 0.95), 95);
        assert_eq!(percentile_ns(&sorted, 0.99), 99);
        assert_eq!(percentile_ns(&sorted, 1.0), 100);
        assert_eq!(percentile_ns(&[], 0.5), 0);
        assert_eq!(percentile_ns(&[7], 0.01), 7);
    }
}
