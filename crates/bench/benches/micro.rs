//! Criterion micro-benchmarks for the mechanisms the paper's design
//! argues about: Algorithm-1 growth vs pooled acquisition, the Hadoop
//! vint codec, Writable round-trips, verbs vs socket one-way messaging,
//! and the shadow-pool hit path.

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bufpool::{HeapMem, NativePool, ShadowPool, SizeClasses};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simnet::{model, Fabric, SimAddr, SimListener, SimStream};
use wire::varint::{read_vlong, write_vlong};
use wire::{from_bytes, to_bytes, DataOutput, DataOutputBuffer, LongWritable, Text};

fn bench_algorithm1_vs_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("serialization_buffer");
    for &size in &[128usize, 1024, 16 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        // Baseline: fresh 32-byte DataOutputBuffer per call, Algorithm 1
        // growth, field-by-field writes.
        group.bench_with_input(BenchmarkId::new("algorithm1", size), &size, |b, &size| {
            b.iter(|| {
                let mut buf = DataOutputBuffer::new();
                for i in 0..(size / 8) as i64 {
                    buf.write_i64(i).unwrap();
                }
                std::hint::black_box(buf.len())
            })
        });
        // RPCoIB: warm shadow pool, history hit, direct write.
        let pool = ShadowPool::new(
            NativePool::new(SizeClasses::up_to(1 << 20), HeapMem::new),
            true,
        );
        pool.record("bench", "call", size);
        group.bench_with_input(BenchmarkId::new("pooled", size), &size, |b, &size| {
            b.iter(|| {
                let mut buf = pool.acquire("bench", "call");
                let mut staged = [0u8; 512];
                let mut pos = 0usize;
                let mut total = 0usize;
                for i in 0..(size / 8) as i64 {
                    staged[pos..pos + 8].copy_from_slice(&i.to_be_bytes());
                    pos += 8;
                    if pos == staged.len() {
                        bufpool::PoolMem::put(buf.mem_mut(), total, &staged);
                        total += pos;
                        pos = 0;
                    }
                }
                if pos > 0 {
                    bufpool::PoolMem::put(buf.mem_mut(), total, &staged[..pos]);
                    total += pos;
                }
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_vint_codec(c: &mut Criterion) {
    let values: Vec<i64> = vec![
        0,
        127,
        -112,
        128,
        300,
        65535,
        -65536,
        1 << 30,
        -(1 << 40),
        i64::MAX,
    ];
    c.bench_function("vint/encode_decode_10", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(100);
            for &v in &values {
                write_vlong(&mut buf, v).unwrap();
            }
            let mut cursor = buf.as_slice();
            let mut sum = 0i64;
            for _ in 0..values.len() {
                sum = sum.wrapping_add(read_vlong(&mut cursor).unwrap());
            }
            std::hint::black_box(sum)
        })
    });
}

fn bench_writable_roundtrip(c: &mut Criterion) {
    c.bench_function("writable/text_roundtrip", |b| {
        let text = Text::from("hdfs.ClientProtocol/getFileInfo:/user/data/part-00042");
        b.iter(|| {
            let bytes = to_bytes(&text).unwrap();
            let back: Text = from_bytes(&bytes).unwrap();
            std::hint::black_box(back.0.len())
        })
    });
    c.bench_function("writable/vec_long_64", |b| {
        let vec: Vec<LongWritable> = (0..64).map(LongWritable).collect();
        b.iter(|| {
            let bytes = to_bytes(&vec).unwrap();
            let back: Vec<LongWritable> = from_bytes(&bytes).unwrap();
            std::hint::black_box(back.len())
        })
    });
}

fn bench_transport_oneway(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_oneway_4k");
    group.measurement_time(Duration::from_secs(10));
    // Socket (IPoIB model).
    group.bench_function("socket_ipoib", |b| {
        let fabric = Fabric::new(model::IPOIB_QDR);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 1000);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let f2 = fabric.clone();
        let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
        let (srv, _) = listener.accept().unwrap();
        let mut cli = h.join().unwrap();
        let reader = thread::spawn(move || {
            let mut buf = vec![0u8; 4096];
            while srv.read_exact_at(&mut buf).is_ok() {}
        });
        let payload = vec![7u8; 4096];
        b.iter(|| cli.write_all(&payload).unwrap());
        drop(cli);
        let _ = reader.join();
    });
    // Verbs send/recv.
    group.bench_function("verbs_qdr", |b| {
        let fabric = Fabric::new(model::IB_QDR_VERBS);
        let a = fabric.add_node();
        let bn = fabric.add_node();
        let dev_a = simnet::RdmaDevice::open(&fabric, a).unwrap();
        let dev_b = simnet::RdmaDevice::open(&fabric, bn).unwrap();
        let qa = dev_a.create_qp();
        let qb = Arc::new(dev_b.create_qp());
        qa.connect(qb.endpoint());
        qb.connect(qa.endpoint());
        let src = dev_a.register(4096);
        // Pre-registered receive ring (the pool's job in the real engine).
        let ring: Vec<simnet::MemoryRegion> = (0..64).map(|_| dev_b.register(4096)).collect();
        for (i, mr) in ring.iter().enumerate() {
            qb.post_recv(i as u64, mr.clone());
        }
        let qb2 = Arc::clone(&qb);
        let drainer = thread::spawn(move || {
            let mut wr = 64u64;
            while let Ok(_c) = qb2.poll_recv(Duration::from_millis(500)) {
                qb2.post_recv(wr, ring[(wr % 64) as usize].clone());
                wr += 1;
            }
        });
        b.iter(|| qa.post_send(&src, 0, 4096, 1).unwrap());
        drop(qa);
        let _ = drainer.join();
    });
    group.finish();
}

fn bench_shadow_pool_hit(c: &mut Criterion) {
    let pool = ShadowPool::new(
        NativePool::new(SizeClasses::up_to(1 << 20), HeapMem::new),
        true,
    );
    pool.native().prefill(4);
    pool.record("mapred.TaskUmbilicalProtocol", "statusUpdate", 700);
    c.bench_function("shadow_pool/acquire_release_hit", |b| {
        b.iter(|| {
            let buf = pool.acquire("mapred.TaskUmbilicalProtocol", "statusUpdate");
            std::hint::black_box(buf.capacity())
        })
    });
}

criterion_group!(
    benches,
    bench_algorithm1_vs_pool,
    bench_vint_codec,
    bench_writable_roundtrip,
    bench_transport_oneway,
    bench_shadow_pool_hit
);
criterion_main!(benches);
