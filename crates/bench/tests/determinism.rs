//! The acceptance property of the bench harness: two runs with the same
//! seed serialize byte-identically (the committed baselines — and CI's
//! `bench --check` — depend on it). Latency numbers come from the
//! modeled-time ledger, and jitter comes from the seeded fault RNG, so
//! nothing in the files depends on wall clock or scheduling.

use rpcoib_bench::figures::{run_batching, run_bufpool, run_bulk, run_pingpong, RunOpts};
use rpcoib_bench::regress::check_regression;

const OPTS: RunOpts = RunOpts {
    quick: true,
    seed: 42,
};

fn enable_fast_forward() {
    // Process-global; modeled charges are unaffected, only the busy-wait
    // spins are skipped, so this cannot change the serialized output.
    simnet::set_fast_forward(true);
}

#[test]
fn pingpong_runs_are_byte_identical() {
    enable_fast_forward();
    let a = run_pingpong(&OPTS, "test-rev").pretty();
    let b = run_pingpong(&OPTS, "test-rev").pretty();
    assert_eq!(a, b, "same seed must produce byte-identical pingpong JSON");

    // And a different seed draws different jitter (the percentiles are
    // really fed by the RNG, not constants).
    let c = run_pingpong(
        &RunOpts {
            quick: true,
            seed: 1337,
        },
        "test-rev",
    )
    .pretty();
    assert_ne!(a, c, "different seed must perturb the samples");
}

#[test]
fn bufpool_runs_are_byte_identical_and_pass_self_check() {
    enable_fast_forward();
    let a = run_bufpool(&OPTS, "test-rev");
    let b = run_bufpool(&OPTS, "test-rev");
    assert_eq!(a.pretty(), b.pretty());

    // A run always passes a zero-tolerance check against itself.
    let outcome = check_regression(&a, &b, 0).expect("comparable");
    assert!(outcome.passed(), "{:?}", outcome.failures);
    assert!(
        outcome.compared >= 8,
        "both transports x all mixes compared"
    );

    // The verbs rows carry pool counters that actually counted.
    let rows = a.get("rows").unwrap().as_arr().unwrap();
    let verbs_lookups: u64 = rows
        .iter()
        .filter(|r| r.get("transport").and_then(|t| t.as_str()) == Some("verbs"))
        .filter_map(|r| r.get("pool"))
        .filter_map(|p| {
            Some(
                p.get("history_hits")?.as_u64()?
                    + p.get("grows")?.as_u64()?
                    + p.get("shrinks")?.as_u64()?
                    + p.get("cold")?.as_u64()?,
            )
        })
        .sum();
    assert!(verbs_lookups > 0, "verbs rows must surface pool activity");
}

/// The batching figure: byte-identical per seed, self-check clean, and
/// the acceptance numbers hold — every multi-client burst point shows
/// ≥ 2× modeled throughput from coalescing, and batching costs a lone
/// sequential caller exactly nothing (`p50_delta_bp == 0`, not merely
/// "within tolerance": the arms must charge identical ledgers).
#[test]
fn batching_runs_are_byte_identical_and_meet_the_bar() {
    enable_fast_forward();
    let a = run_batching(&OPTS, "test-rev");
    let b = run_batching(&OPTS, "test-rev");
    assert_eq!(
        a.pretty(),
        b.pretty(),
        "same seed must produce byte-identical batching JSON"
    );

    let outcome = check_regression(&a, &b, 0).expect("comparable");
    assert!(outcome.passed(), "{:?}", outcome.failures);

    let rows = a.get("rows").unwrap().as_arr().unwrap();
    let mut multi_points = 0;
    let mut single_guards = 0;
    for row in rows {
        let point = row.get("point").and_then(|p| p.as_str()).unwrap();
        if point.starts_with("multi") {
            multi_points += 1;
            let speedup = row.get("speedup_bp").and_then(|s| s.as_u64()).unwrap();
            assert!(
                speedup >= 20_000,
                "{point}: coalescing must model ≥2× throughput, got {speedup} bp"
            );
        } else if let Some(delta) = row.get("p50_delta_bp") {
            single_guards += 1;
            assert_eq!(
                delta.as_u64(),
                Some(0),
                "{point}: a lone call must not pay for batching"
            );
        }
    }
    assert_eq!(multi_points, 6, "both transports × three payloads");
    assert_eq!(single_guards, 6, "a guard arm per (transport, payload)");
}

/// The bulk figure: byte-identical per seed, self-check clean, and the
/// acceptance numbers hold — every pipelined payload models ≥ 2×
/// throughput from the multi-slot ring versus the one-deep gate, a lone
/// transfer's ledger is *identical* across ring depths
/// (`p50_delta_bp == 0` exactly), steady-state large calls register no
/// memory and miss no pool, and the adaptive crossover relearns the
/// 5 kB switch point from a deliberately-wrong static threshold.
#[test]
fn bulk_runs_are_byte_identical_and_meet_the_bar() {
    enable_fast_forward();
    let a = run_bulk(&OPTS, "test-rev");
    let b = run_bulk(&OPTS, "test-rev");
    assert_eq!(
        a.pretty(),
        b.pretty(),
        "same seed must produce byte-identical bulk JSON"
    );

    let outcome = check_regression(&a, &b, 0).expect("comparable");
    assert!(outcome.passed(), "{:?}", outcome.failures);
    assert!(
        outcome.compared >= 12,
        "lone guards + pipeline points all gate on p99"
    );

    let rows = a.get("rows").unwrap().as_arr().unwrap();
    let mut pipe_points = 0;
    let mut lone_guards = 0;
    let mut saw_adaptive = false;
    for row in rows {
        let point = row.get("point").and_then(|p| p.as_str()).unwrap();
        if point.starts_with("pipe") {
            pipe_points += 1;
            let speedup = row.get("speedup_bp").and_then(|s| s.as_u64()).unwrap();
            assert!(
                speedup >= 20_000,
                "{point}: multi-slot ring must model ≥2× pipelined throughput, got {speedup} bp"
            );
        } else if point.starts_with("lone") {
            let regs = row
                .get("steady_registrations")
                .and_then(|r| r.as_u64())
                .unwrap();
            let misses = row
                .get("steady_pool_misses")
                .and_then(|m| m.as_u64())
                .unwrap();
            assert_eq!(regs, 0, "{point}: steady-state large calls registered");
            assert_eq!(
                misses, 0,
                "{point}: steady-state large calls missed the pool"
            );
            if let Some(delta) = row.get("p50_delta_bp") {
                lone_guards += 1;
                assert_eq!(
                    delta.as_u64(),
                    Some(0),
                    "{point}: a lone transfer must not pay for the multi-slot ring"
                );
            }
        } else if point == "adaptive_crossover" {
            saw_adaptive = true;
            assert_eq!(
                row.get("converged_threshold").and_then(|t| t.as_u64()),
                Some(8_191),
                "adaptive crossover must converge to the 5 kB bucket edge"
            );
            assert_eq!(
                row.get("static_control_threshold").and_then(|t| t.as_u64()),
                Some(2048),
                "static control arm must not move"
            );
        }
    }
    assert_eq!(pipe_points, 4, "a pipeline point per payload");
    assert_eq!(lone_guards, 4, "a lone-transfer guard per payload");
    assert!(saw_adaptive, "the adaptive-crossover row must be present");
}
