//! The acceptance property of the bench harness: two runs with the same
//! seed serialize byte-identically (the committed baselines — and CI's
//! `bench --check` — depend on it). Latency numbers come from the
//! modeled-time ledger, and jitter comes from the seeded fault RNG, so
//! nothing in the files depends on wall clock or scheduling.

use rpcoib_bench::figures::{run_batching, run_bufpool, run_pingpong, RunOpts};
use rpcoib_bench::regress::check_regression;

const OPTS: RunOpts = RunOpts {
    quick: true,
    seed: 42,
};

fn enable_fast_forward() {
    // Process-global; modeled charges are unaffected, only the busy-wait
    // spins are skipped, so this cannot change the serialized output.
    simnet::set_fast_forward(true);
}

#[test]
fn pingpong_runs_are_byte_identical() {
    enable_fast_forward();
    let a = run_pingpong(&OPTS, "test-rev").pretty();
    let b = run_pingpong(&OPTS, "test-rev").pretty();
    assert_eq!(a, b, "same seed must produce byte-identical pingpong JSON");

    // And a different seed draws different jitter (the percentiles are
    // really fed by the RNG, not constants).
    let c = run_pingpong(
        &RunOpts {
            quick: true,
            seed: 1337,
        },
        "test-rev",
    )
    .pretty();
    assert_ne!(a, c, "different seed must perturb the samples");
}

#[test]
fn bufpool_runs_are_byte_identical_and_pass_self_check() {
    enable_fast_forward();
    let a = run_bufpool(&OPTS, "test-rev");
    let b = run_bufpool(&OPTS, "test-rev");
    assert_eq!(a.pretty(), b.pretty());

    // A run always passes a zero-tolerance check against itself.
    let outcome = check_regression(&a, &b, 0).expect("comparable");
    assert!(outcome.passed(), "{:?}", outcome.failures);
    assert!(
        outcome.compared >= 8,
        "both transports x all mixes compared"
    );

    // The verbs rows carry pool counters that actually counted.
    let rows = a.get("rows").unwrap().as_arr().unwrap();
    let verbs_lookups: u64 = rows
        .iter()
        .filter(|r| r.get("transport").and_then(|t| t.as_str()) == Some("verbs"))
        .filter_map(|r| r.get("pool"))
        .filter_map(|p| {
            Some(
                p.get("history_hits")?.as_u64()?
                    + p.get("grows")?.as_u64()?
                    + p.get("shrinks")?.as_u64()?
                    + p.get("cold")?.as_u64()?,
            )
        })
        .sum();
    assert!(verbs_lookups > 0, "verbs rows must surface pool activity");
}

/// The batching figure: byte-identical per seed, self-check clean, and
/// the acceptance numbers hold — every multi-client burst point shows
/// ≥ 2× modeled throughput from coalescing, and batching costs a lone
/// sequential caller exactly nothing (`p50_delta_bp == 0`, not merely
/// "within tolerance": the arms must charge identical ledgers).
#[test]
fn batching_runs_are_byte_identical_and_meet_the_bar() {
    enable_fast_forward();
    let a = run_batching(&OPTS, "test-rev");
    let b = run_batching(&OPTS, "test-rev");
    assert_eq!(
        a.pretty(),
        b.pretty(),
        "same seed must produce byte-identical batching JSON"
    );

    let outcome = check_regression(&a, &b, 0).expect("comparable");
    assert!(outcome.passed(), "{:?}", outcome.failures);

    let rows = a.get("rows").unwrap().as_arr().unwrap();
    let mut multi_points = 0;
    let mut single_guards = 0;
    for row in rows {
        let point = row.get("point").and_then(|p| p.as_str()).unwrap();
        if point.starts_with("multi") {
            multi_points += 1;
            let speedup = row.get("speedup_bp").and_then(|s| s.as_u64()).unwrap();
            assert!(
                speedup >= 20_000,
                "{point}: coalescing must model ≥2× throughput, got {speedup} bp"
            );
        } else if let Some(delta) = row.get("p50_delta_bp") {
            single_guards += 1;
            assert_eq!(
                delta.as_u64(),
                Some(0),
                "{point}: a lone call must not pay for batching"
            );
        }
    }
    assert_eq!(multi_points, 6, "both transports × three payloads");
    assert_eq!(single_guards, 6, "a guard arm per (transport, payload)");
}
