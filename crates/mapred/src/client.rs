//! Job submission client.

use std::time::{Duration, Instant};

use rpcoib::{Client, RpcError, RpcResult};
use simnet::SimAddr;
use wire::IntWritable;

use crate::types::{JobConf, JobState, JobStatus};

const SUBMISSION_PROTOCOL: &str = "mapred.JobSubmissionProtocol";

/// Client for submitting jobs and polling their status.
pub struct JobClient {
    rpc: Client,
    jt: SimAddr,
}

impl JobClient {
    /// Wrap an RPC client pointed at the JobTracker.
    pub fn new(rpc: Client, jt: SimAddr) -> JobClient {
        JobClient { rpc, jt }
    }

    /// The underlying RPC client.
    pub fn rpc(&self) -> &Client {
        &self.rpc
    }

    /// Submit a job; returns its id.
    pub fn submit(&self, conf: &JobConf) -> RpcResult<u32> {
        let status: JobStatus = self
            .rpc
            .call(self.jt, SUBMISSION_PROTOCOL, "submitJob", conf)?;
        Ok(status.job)
    }

    /// Current status of a job.
    pub fn status(&self, job: u32) -> RpcResult<JobStatus> {
        self.rpc.call(
            self.jt,
            SUBMISSION_PROTOCOL,
            "getJobStatus",
            &IntWritable(job as i32),
        )
    }

    /// Poll until the job leaves the `Running` state (or `timeout`).
    pub fn wait(&self, job: u32, timeout: Duration) -> RpcResult<JobStatus> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(job)?;
            if status.state != JobState::Running {
                return Ok(status);
            }
            if Instant::now() > deadline {
                return Err(RpcError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Kill a running job: it transitions to `Failed`, scheduling stops,
    /// and in-flight attempts are disowned.
    pub fn kill(&self, job: u32) -> RpcResult<JobStatus> {
        self.rpc.call(
            self.jt,
            SUBMISSION_PROTOCOL,
            "killJob",
            &IntWritable(job as i32),
        )
    }

    /// Submit and wait; errors unless the job succeeds.
    pub fn run(&self, conf: &JobConf, timeout: Duration) -> RpcResult<JobStatus> {
        let job = self.submit(conf)?;
        let status = self.wait(job, timeout)?;
        if status.state != JobState::Succeeded {
            return Err(RpcError::Remote(format!(
                "job {} ({}) failed: {status:?}",
                job, conf.name
            )));
        }
        Ok(status)
    }
}

impl std::fmt::Debug for JobClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobClient").field("jt", &self.jt).finish()
    }
}
