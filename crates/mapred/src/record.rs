//! Record framing for job data: a flat sequence of
//! `[vint klen][key][vint vlen][value]` entries — a SequenceFile-lite.

use std::io;

use wire::varint;

/// Append one record to a byte buffer.
pub fn write_record(out: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    varint::write_vint(out, key.len() as i32).expect("vec write");
    out.extend_from_slice(key);
    varint::write_vint(out, value.len() as i32).expect("vec write");
    out.extend_from_slice(value);
}

/// Iterator over records in a buffer.
pub struct RecordReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        RecordReader { buf, pos: 0 }
    }

    fn read_len(&mut self) -> io::Result<usize> {
        let mut cursor = &self.buf[self.pos..];
        let before = cursor.len();
        let len = varint::read_vint(&mut cursor)?;
        self.pos += before - cursor.len();
        if len < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "negative record length",
            ));
        }
        Ok(len as usize)
    }

    /// Next `(key, value)`, or `None` at end of buffer.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> io::Result<Option<(&'a [u8], &'a [u8])>> {
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let klen = self.read_len()?;
        let key = self
            .buf
            .get(self.pos..self.pos + klen)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated key"))?;
        self.pos += klen;
        let vlen = self.read_len()?;
        let value = self
            .buf
            .get(self.pos..self.pos + vlen)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated value"))?;
        self.pos += vlen;
        Ok(Some((key, value)))
    }
}

/// Collect every record in a buffer (test / small-data convenience).
pub fn read_all(buf: &[u8]) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut reader = RecordReader::new(buf);
    let mut out = Vec::new();
    while let Some((k, v)) = reader.next()? {
        out.push((k.to_vec(), v.to_vec()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"alpha", b"1");
        write_record(&mut buf, b"", b"empty-key");
        write_record(&mut buf, b"beta", b"");
        let records = read_all(&buf).unwrap();
        assert_eq!(
            records,
            vec![
                (b"alpha".to_vec(), b"1".to_vec()),
                (b"".to_vec(), b"empty-key".to_vec()),
                (b"beta".to_vec(), b"".to_vec()),
            ]
        );
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"key", b"value");
        for cut in 1..buf.len() {
            let res = read_all(&buf[..cut]);
            assert!(res.is_err(), "cut {cut} should fail");
        }
    }

    #[test]
    fn large_records() {
        let key = vec![0xaa; 300];
        let value = vec![0xbb; 70_000];
        let mut buf = Vec::new();
        write_record(&mut buf, &key, &value);
        let records = read_all(&buf).unwrap();
        assert_eq!(records[0].0, key);
        assert_eq!(records[0].1, value);
    }
}
