//! `MiniMr`: a whole Hadoop-alike — HDFS plus MapReduce — on one
//! simulated cluster. Worker hosts co-locate a DataNode and a TaskTracker
//! (as the paper's slave nodes do); host 0 runs NameNode + JobTracker,
//! host 1 is the client host.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mini_hdfs::{DfsClient, MiniDfs};
use rpcoib::{Client, RpcError, RpcResult};
use simnet::{Cluster, Host, NetworkModel, SimAddr};

use crate::client::JobClient;
use crate::config::MrConfig;
use crate::jobtracker::JobTracker;
use crate::tasktracker::TaskTracker;

/// A booted mini MapReduce + HDFS deployment.
pub struct MiniMr {
    dfs: MiniDfs,
    jobtracker: JobTracker,
    tasktrackers: Vec<TaskTracker>,
    cfg: MrConfig,
}

impl MiniMr {
    /// Start `n_workers` worker hosts (DataNode + TaskTracker each).
    pub fn start(eth_model: NetworkModel, n_workers: usize, cfg: MrConfig) -> RpcResult<MiniMr> {
        let cluster = Arc::new(Cluster::new(eth_model, n_workers + 2));
        let dfs = MiniDfs::start_on(Arc::clone(&cluster), n_workers, cfg.hdfs.clone())?;

        let (jt_fabric, jt_node) = if cfg.rpc.ib_enabled {
            (cluster.ib().clone(), cluster.ib_node(Host(0)))
        } else {
            (cluster.eth().clone(), cluster.eth_node(Host(0)))
        };
        let jobtracker = JobTracker::start(&jt_fabric, jt_node, cfg.clone())?;

        let mut tasktrackers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            tasktrackers.push(TaskTracker::start(
                &cluster,
                Host(2 + i),
                jobtracker.addr(),
                dfs.nn_addr(),
                cfg.clone(),
            )?);
        }

        let mr = MiniMr {
            dfs,
            jobtracker,
            tasktrackers,
            cfg,
        };
        mr.await_trackers(n_workers, Duration::from_secs(10))?;
        Ok(mr)
    }

    fn await_trackers(&self, want: usize, timeout: Duration) -> RpcResult<()> {
        let deadline = Instant::now() + timeout;
        while self.jobtracker.tracker_count() < want {
            if Instant::now() > deadline {
                return Err(RpcError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    /// The underlying HDFS deployment.
    pub fn dfs(&self) -> &MiniDfs {
        &self.dfs
    }

    /// The cluster topology.
    pub fn cluster(&self) -> &Arc<Cluster> {
        self.dfs.cluster()
    }

    /// The JobTracker.
    pub fn jobtracker(&self) -> &JobTracker {
        &self.jobtracker
    }

    /// The TaskTrackers, in worker order.
    pub fn tasktrackers(&self) -> &[TaskTracker] {
        &self.tasktrackers
    }

    /// The JobTracker address.
    pub fn jt_addr(&self) -> SimAddr {
        self.jobtracker.addr()
    }

    /// A job client on the reserved client host.
    pub fn job_client(&self) -> RpcResult<JobClient> {
        let cluster = self.dfs.cluster();
        let (fabric, node) = if self.cfg.rpc.ib_enabled {
            (cluster.ib().clone(), cluster.ib_node(Host(1)))
        } else {
            (cluster.eth().clone(), cluster.eth_node(Host(1)))
        };
        let rpc = Client::new(&fabric, node, self.cfg.rpc.clone())?;
        Ok(JobClient::new(rpc, self.jobtracker.addr()))
    }

    /// An HDFS client on the reserved client host.
    pub fn dfs_client(&self) -> RpcResult<DfsClient> {
        self.dfs.client()
    }

    /// Stop everything (MapReduce first, then HDFS).
    pub fn stop(&self) {
        for tt in &self.tasktrackers {
            tt.stop();
        }
        self.jobtracker.stop();
        self.dfs.stop();
    }
}

impl std::fmt::Debug for MiniMr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiniMr")
            .field("workers", &self.tasktrackers.len())
            .field("rpc_ib", &self.cfg.rpc.ib_enabled)
            .finish()
    }
}
