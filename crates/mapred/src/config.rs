//! MapReduce deployment configuration.

use std::time::Duration;

use mini_hdfs::HdfsConfig;
use rpcoib::RpcConfig;

/// Configuration for a mini-MapReduce deployment. The RPC configuration
/// covers every MapReduce control-plane conversation: TaskTracker ↔
/// JobTracker heartbeats, the task umbilical, and job submission.
#[derive(Debug, Clone)]
pub struct MrConfig {
    /// RPC engine settings; `rpc.ib_enabled` is the Figure 6 axis.
    pub rpc: RpcConfig,
    /// HDFS settings used by tasks (input/output I/O).
    pub hdfs: HdfsConfig,
    /// Concurrent map tasks per TaskTracker (the paper uses 8).
    pub map_slots: usize,
    /// Concurrent reduce tasks per TaskTracker (the paper uses 4).
    pub reduce_slots: usize,
    /// TaskTracker → JobTracker heartbeat interval.
    pub heartbeat: Duration,
    /// After this long without a heartbeat a TaskTracker is declared lost
    /// and its tasks are rescheduled.
    pub tt_timeout: Duration,
    /// Task `ping`/`statusUpdate` interval (umbilical traffic rate).
    pub status_interval: Duration,
    /// Records between `statusUpdate`s inside a tight task loop.
    pub status_every_records: usize,
    /// Maximum attempts per task before the job fails.
    pub max_task_attempts: u32,
    /// Launch speculative duplicate attempts for straggler tasks
    /// (Hadoop's speculative execution; the first finisher wins via the
    /// `canCommit` arbitration). Hadoop defaults this ON; here it
    /// defaults OFF because on a host with fewer cores than simulated
    /// nodes a duplicate attempt steals real CPU from the original.
    pub speculative: bool,
    /// A running task becomes a speculation candidate once it has run
    /// longer than `speculative_slowdown` × the median runtime of its
    /// job's completed peers (and at least `speculative_floor`).
    pub speculative_slowdown: f64,
    /// Minimum runtime before any task is considered a straggler.
    pub speculative_floor: Duration,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            rpc: RpcConfig::socket(),
            hdfs: HdfsConfig::default(),
            map_slots: 8,
            reduce_slots: 4,
            heartbeat: Duration::from_millis(200),
            tt_timeout: Duration::from_millis(2500),
            status_interval: Duration::from_millis(150),
            status_every_records: 20_000,
            max_task_attempts: 3,
            speculative: false,
            speculative_slowdown: 3.0,
            speculative_floor: Duration::from_millis(1500),
        }
    }
}

impl MrConfig {
    /// Everything socket-based (the paper's IPoIB baseline when run on the
    /// IPoIB Ethernet-rail model).
    pub fn socket() -> Self {
        MrConfig::default()
    }

    /// RPCoIB for all MapReduce + HDFS control-plane RPC, data paths
    /// unchanged — configuration (b) of Figure 6.
    pub fn rpc_ib() -> Self {
        let mut cfg = MrConfig {
            rpc: RpcConfig::rpcoib(),
            ..MrConfig::default()
        };
        cfg.hdfs.rpc = RpcConfig::rpcoib();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_slot_defaults() {
        let cfg = MrConfig::default();
        assert_eq!(cfg.map_slots, 8);
        assert_eq!(cfg.reduce_slots, 4);
        cfg.rpc.validate().unwrap();
    }

    #[test]
    fn rpc_ib_flips_both_planes() {
        let cfg = MrConfig::rpc_ib();
        assert!(cfg.rpc.ib_enabled);
        assert!(cfg.hdfs.rpc.ib_enabled);
        assert!(!cfg.hdfs.data_rdma, "data plane is not the Figure 6 axis");
    }
}
