//! # mini-mapred — a miniature MapReduce over `rpcoib` and `mini-hdfs`
//!
//! The paper's Table I profiles the RPC calls of a running Sort job
//! (`TaskUmbilicalProtocol`: `getTask`, `ping`, `statusUpdate`, `done`,
//! `commitPending`, `canCommit`, `getMapCompletionEvents`; plus
//! `hdfs.ClientProtocol` traffic from the tasks), Figure 3 traces the
//! message-size locality of `heartbeat` and `statusUpdate`, and
//! Figure 6 reports RandomWriter / Sort / CloudBurst job times under
//! default RPC vs RPCoIB. This crate implements the machinery that
//! generates all of that traffic honestly:
//!
//! * [`JobTracker`] — job state machine and heartbeat-driven scheduler
//!   (`mapred.InterTrackerProtocol`, `mapred.JobSubmissionProtocol`);
//! * [`TaskTracker`] — map/reduce slots (the paper runs 8 maps + 4
//!   reduces per node), an umbilical RPC server for its tasks, a shuffle
//!   server for map outputs, and runner threads that execute the task
//!   logic in-process while speaking the real umbilical protocol;
//! * [`jobs`] — built-in job logic: RandomWriter, Sort (with map-side
//!   combiner support), WordCount, Grep, a CloudBurst-style
//!   seed-and-extend read aligner (Alignment + Filtering, the two jobs
//!   of Figure 6(b)), and iterative k-means;
//! * [`JobClient`] / [`MiniMr`] — submission API and a harness that
//!   boots JT + N TTs next to a [`mini_hdfs::MiniDfs`].
//!
//! Tasks run as threads inside the TaskTracker (standing in for Hadoop's
//! child JVMs) but still make every umbilical and HDFS RPC a real child
//! would make — that is what the profiling harnesses measure.
//!
//! ```
//! use mini_mapred::{JobConf, JobKind, MiniMr, MrConfig};
//! use mini_mapred::jobs::randomwriter;
//! use std::time::Duration;
//!
//! let mr = MiniMr::start(simnet::model::TEN_GIG_E, 2, MrConfig::socket()).unwrap();
//! let jobs = mr.job_client().unwrap();
//! let status = jobs
//!     .run(
//!         &JobConf {
//!             name: "demo".into(),
//!             kind: JobKind::RandomWriter,
//!             input: Vec::new(),
//!             output: "/out".into(),
//!             n_reduces: 0,
//!             n_maps: 2,
//!             params: vec![(randomwriter::BYTES_PER_MAP.into(), "8192".into())],
//!         },
//!         Duration::from_secs(120),
//!     )
//!     .unwrap();
//! assert_eq!(status.maps_done, 2);
//! assert_eq!(mr.dfs_client().unwrap().list("/out").unwrap().len(), 2);
//! mr.stop();
//! ```

pub mod client;
pub mod cluster;
pub mod config;
pub mod jobs;
pub mod jobtracker;
pub mod record;
pub mod shuffle;
pub mod tasktracker;
pub mod types;

pub use client::JobClient;
pub use cluster::MiniMr;
pub use config::MrConfig;
pub use jobtracker::JobTracker;
pub use tasktracker::TaskTracker;
pub use types::{JobConf, JobKind, JobState, JobStatus};

/// JobTracker RPC port.
pub const JT_PORT: u16 = 8021;
/// TaskTracker umbilical RPC port.
pub const UMBILICAL_PORT: u16 = 50050;
/// TaskTracker shuffle (map-output) port.
pub const SHUFFLE_PORT: u16 = 50060;
