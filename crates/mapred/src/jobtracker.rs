//! The JobTracker: job state, heartbeat-driven scheduling, completion
//! events, commit arbitration, and lost-TaskTracker recovery.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rpcoib::{RpcResult, RpcService, Server, ServiceRegistry};
use simnet::{Fabric, NodeId, SimAddr};
use wire::{BooleanWritable, DataInput, IntWritable, VLongWritable, Writable};

use crate::config::MrConfig;
use crate::types::{
    HeartbeatArgs, HeartbeatResponse, JobConf, JobState, JobStatus, MapCompletionEvent,
    TaskAssignment, TaskSpec, TrackerInfo,
};
use crate::JT_PORT;

#[derive(Debug, Clone, PartialEq, Eq)]
enum TaskStatus {
    Pending,
    /// One or more concurrent attempts (duplicates come from speculative
    /// execution); completion of any one finishes the task.
    Running {
        attempts: Vec<RunningAttempt>,
    },
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct RunningAttempt {
    attempt: u64,
    tt: u32,
    started: Instant,
}

#[derive(Debug)]
struct Task {
    status: TaskStatus,
    attempts_used: u32,
    committed: Option<u64>,
    /// TaskTracker whose shuffle service holds this (map) task's output.
    ran_on: Option<u32>,
}

impl Task {
    fn new() -> Task {
        Task {
            status: TaskStatus::Pending,
            attempts_used: 0,
            committed: None,
            ran_on: None,
        }
    }

    fn is_running_attempt(&self, attempt: u64) -> bool {
        matches!(&self.status, TaskStatus::Running { attempts }
            if attempts.iter().any(|a| a.attempt == attempt))
    }

    fn start_attempt(&mut self, attempt: u64, tt: u32) {
        let running = RunningAttempt {
            attempt,
            tt,
            started: Instant::now(),
        };
        match &mut self.status {
            TaskStatus::Running { attempts } => attempts.push(running),
            _ => {
                self.status = TaskStatus::Running {
                    attempts: vec![running],
                }
            }
        }
        self.attempts_used += 1;
    }

    fn remove_attempt(&mut self, attempt: u64) {
        if let TaskStatus::Running { attempts } = &mut self.status {
            attempts.retain(|a| a.attempt != attempt);
            if attempts.is_empty() {
                self.status = TaskStatus::Pending;
            }
        }
    }
}

struct Job {
    conf: JobConf,
    maps: Vec<Task>,
    reduces: Vec<Task>,
    state: JobState,
    events: Vec<MapCompletionEvent>,
    /// Durations of completed attempts — the baseline that defines a
    /// straggler for speculative execution.
    completed_durations: Vec<Duration>,
}

impl Job {
    fn maps_done(&self) -> u32 {
        self.maps
            .iter()
            .filter(|t| t.status == TaskStatus::Done)
            .count() as u32
    }
    fn reduces_done(&self) -> u32 {
        self.reduces
            .iter()
            .filter(|t| t.status == TaskStatus::Done)
            .count() as u32
    }
    fn all_maps_done(&self) -> bool {
        self.maps.iter().all(|t| t.status == TaskStatus::Done)
    }
    fn refresh_state(&mut self) {
        if self.state == JobState::Running
            && self.all_maps_done()
            && self.reduces.iter().all(|t| t.status == TaskStatus::Done)
        {
            self.state = JobState::Succeeded;
        }
    }
    fn status(&self, id: u32) -> JobStatus {
        JobStatus {
            job: id,
            state: self.state,
            maps_total: self.maps.len() as u32,
            maps_done: self.maps_done(),
            reduces_total: self.reduces.len() as u32,
            reduces_done: self.reduces_done(),
        }
    }
}

fn median_duration(durations: &[Duration]) -> Option<Duration> {
    if durations.is_empty() {
        return None;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_unstable();
    Some(sorted[sorted.len() / 2])
}

struct TrackerReg {
    info: TrackerInfo,
    last_heartbeat: Instant,
}

#[derive(Debug, Clone, Copy)]
enum TaskRef {
    Map { job: u32, idx: usize },
    Reduce { job: u32, idx: usize },
}

struct JtState {
    cfg: MrConfig,
    jobs: Mutex<HashMap<u32, Job>>,
    trackers: Mutex<HashMap<u32, TrackerReg>>,
    attempts: Mutex<HashMap<u64, TaskRef>>,
    next_job: AtomicU32,
    next_tt: AtomicU32,
    next_attempt: AtomicU64,
}

impl JtState {
    fn task_mut<'a>(&self, jobs: &'a mut HashMap<u32, Job>, r: TaskRef) -> Option<&'a mut Task> {
        match r {
            TaskRef::Map { job, idx } => jobs.get_mut(&job).and_then(|j| j.maps.get_mut(idx)),
            TaskRef::Reduce { job, idx } => jobs.get_mut(&job).and_then(|j| j.reduces.get_mut(idx)),
        }
    }

    /// Requeue tasks owned by TaskTrackers that stopped heartbeating.
    /// Completed maps on a lost tracker are also requeued when their job
    /// still has unfinished reduces (the shuffle outputs died with it).
    fn reap_lost_trackers(&self) {
        let now = Instant::now();
        let lost: Vec<u32> = {
            let mut trackers = self.trackers.lock();
            let lost: Vec<u32> = trackers
                .iter()
                .filter(|(_, reg)| now.duration_since(reg.last_heartbeat) > self.cfg.tt_timeout)
                .map(|(id, _)| *id)
                .collect();
            for id in &lost {
                trackers.remove(id);
            }
            lost
        };
        if lost.is_empty() {
            return;
        }
        let mut jobs = self.jobs.lock();
        for job in jobs.values_mut() {
            if job.state != JobState::Running {
                continue;
            }
            let reduces_remain = !job.reduces.iter().all(|t| t.status == TaskStatus::Done);
            for (idx, task) in job.maps.iter_mut().enumerate() {
                match &mut task.status {
                    TaskStatus::Running { attempts } => {
                        attempts.retain(|a| !lost.contains(&a.tt));
                        if attempts.is_empty() {
                            task.status = TaskStatus::Pending;
                        }
                    }
                    TaskStatus::Done
                        if reduces_remain && task.ran_on.is_some_and(|tt| lost.contains(&tt)) =>
                    {
                        task.status = TaskStatus::Pending;
                        task.ran_on = None;
                        job.events.retain(|e| e.map_idx != idx as u32);
                    }
                    _ => {}
                }
            }
            for task in &mut job.reduces {
                if let TaskStatus::Running { attempts } = &mut task.status {
                    attempts.retain(|a| !lost.contains(&a.tt));
                    if attempts.is_empty() {
                        task.status = TaskStatus::Pending;
                    }
                }
            }
        }
    }

    fn assign(&self, tt: &TrackerInfo, free_maps: u32, free_reduces: u32) -> Vec<TaskAssignment> {
        let mut actions = Vec::new();
        let mut jobs = self.jobs.lock();
        let mut job_ids: Vec<u32> = jobs.keys().copied().collect();
        job_ids.sort_unstable();

        let mut maps_left = free_maps;
        let mut reduces_left = free_reduces;
        for id in job_ids {
            let job = jobs.get_mut(&id).expect("job present");
            if job.state != JobState::Running {
                continue;
            }
            // Maps first.
            for (idx, task) in job.maps.iter_mut().enumerate() {
                if maps_left == 0 {
                    break;
                }
                if task.status == TaskStatus::Pending {
                    let attempt = self.next_attempt.fetch_add(1, Ordering::Relaxed);
                    task.start_attempt(attempt, tt.tt_id);
                    self.attempts
                        .lock()
                        .insert(attempt, TaskRef::Map { job: id, idx });
                    let split = job.conf.input.get(idx).cloned().unwrap_or_default();
                    actions.push(TaskAssignment {
                        job: id,
                        attempt,
                        spec: TaskSpec::Map {
                            map_idx: idx as u32,
                            split,
                        },
                        conf: job.conf.clone(),
                    });
                    maps_left -= 1;
                }
            }
            // Reduces only once every map of the job has completed.
            if job.all_maps_done() {
                let n_maps = job.conf.map_count();
                for (idx, task) in job.reduces.iter_mut().enumerate() {
                    if reduces_left == 0 {
                        break;
                    }
                    if task.status == TaskStatus::Pending {
                        let attempt = self.next_attempt.fetch_add(1, Ordering::Relaxed);
                        task.start_attempt(attempt, tt.tt_id);
                        self.attempts
                            .lock()
                            .insert(attempt, TaskRef::Reduce { job: id, idx });
                        actions.push(TaskAssignment {
                            job: id,
                            attempt,
                            spec: TaskSpec::Reduce {
                                reduce_idx: idx as u32,
                                n_maps,
                            },
                            conf: job.conf.clone(),
                        });
                        reduces_left -= 1;
                    }
                }
            }
        }
        // Speculative execution: spend leftover slots duplicating
        // stragglers (first finisher wins; reduces arbitrate commits via
        // canCommit).
        if self.cfg.speculative && (maps_left > 0 || reduces_left > 0) {
            for id in jobs.keys().copied().collect::<Vec<u32>>() {
                let job = jobs.get_mut(&id).expect("job present");
                if job.state != JobState::Running {
                    continue;
                }
                let completed_durations = job.completed_durations.clone();
                let speculate =
                    |tasks: &mut Vec<Task>,
                     is_map: bool,
                     budget: &mut u32,
                     attempts_table: &Mutex<HashMap<u64, TaskRef>>,
                     next_attempt: &AtomicU64,
                     conf: &JobConf,
                     actions: &mut Vec<TaskAssignment>| {
                        // A straggler has run far longer than the median of
                        // the job's completed attempts; with no completions
                        // yet there is no baseline, so nothing speculates
                        // (Hadoop's "wait for enough data" behaviour).
                        let Some(median) = median_duration(&completed_durations) else {
                            return;
                        };
                        let threshold = self
                            .cfg
                            .speculative_floor
                            .max(median.mul_f64(self.cfg.speculative_slowdown));
                        for (idx, task) in tasks.iter_mut().enumerate() {
                            if *budget == 0 {
                                break;
                            }
                            let TaskStatus::Running { attempts } = &task.status else {
                                continue;
                            };
                            if attempts.len() != 1 {
                                continue; // already speculated
                            }
                            let only = &attempts[0];
                            if only.tt == tt.tt_id || only.started.elapsed() < threshold {
                                continue; // same tracker, or not a straggler
                            }
                            let attempt = next_attempt.fetch_add(1, Ordering::Relaxed);
                            task.start_attempt(attempt, tt.tt_id);
                            let task_ref = if is_map {
                                TaskRef::Map { job: id, idx }
                            } else {
                                TaskRef::Reduce { job: id, idx }
                            };
                            attempts_table.lock().insert(attempt, task_ref);
                            let spec = if is_map {
                                TaskSpec::Map {
                                    map_idx: idx as u32,
                                    split: conf.input.get(idx).cloned().unwrap_or_default(),
                                }
                            } else {
                                TaskSpec::Reduce {
                                    reduce_idx: idx as u32,
                                    n_maps: conf.map_count(),
                                }
                            };
                            actions.push(TaskAssignment {
                                job: id,
                                attempt,
                                spec,
                                conf: conf.clone(),
                            });
                            *budget -= 1;
                        }
                    };
                let conf = job.conf.clone();
                speculate(
                    &mut job.maps,
                    true,
                    &mut maps_left,
                    &self.attempts,
                    &self.next_attempt,
                    &conf,
                    &mut actions,
                );
                if job.all_maps_done() {
                    speculate(
                        &mut job.reduces,
                        false,
                        &mut reduces_left,
                        &self.attempts,
                        &self.next_attempt,
                        &conf,
                        &mut actions,
                    );
                }
            }
        }
        actions
    }

    fn handle_heartbeat(&self, args: &HeartbeatArgs) -> Result<HeartbeatResponse, String> {
        let tt_info = {
            let mut trackers = self.trackers.lock();
            let reg = trackers
                .get_mut(&args.tt_id)
                .ok_or_else(|| format!("unregistered tracker {}", args.tt_id))?;
            reg.last_heartbeat = Instant::now();
            reg.info
        };
        self.reap_lost_trackers();

        // Apply status deltas.
        {
            let mut jobs = self.jobs.lock();
            for attempt in &args.completed {
                let task_ref = self.attempts.lock().get(attempt).copied();
                if let Some(r) = task_ref {
                    if let Some(task) = self.task_mut(&mut jobs, r) {
                        if task.is_running_attempt(*attempt) {
                            let duration = match &task.status {
                                TaskStatus::Running { attempts } => attempts
                                    .iter()
                                    .find(|a| a.attempt == *attempt)
                                    .map(|a| a.started.elapsed()),
                                _ => None,
                            };
                            task.status = TaskStatus::Done;
                            task.ran_on = Some(args.tt_id);
                            if let (
                                Some(d),
                                TaskRef::Map { job, .. } | TaskRef::Reduce { job, .. },
                            ) = (duration, r)
                            {
                                if let Some(j) = jobs.get_mut(&job) {
                                    j.completed_durations.push(d);
                                }
                            }
                            if let TaskRef::Map { job, idx } = r {
                                if let Some(j) = jobs.get_mut(&job) {
                                    j.events.push(MapCompletionEvent {
                                        map_idx: idx as u32,
                                        shuffle_node: tt_info.shuffle_node,
                                        shuffle_port: tt_info.shuffle_port,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            for attempt in &args.failed {
                let task_ref = self.attempts.lock().get(attempt).copied();
                if let Some(r) = task_ref {
                    let max = self.cfg.max_task_attempts;
                    let (job_id, exhausted) = match (r, self.task_mut(&mut jobs, r)) {
                        (TaskRef::Map { job, .. } | TaskRef::Reduce { job, .. }, Some(task)) => {
                            task.remove_attempt(*attempt);
                            // A failed attempt releases any commit grant
                            // it held so a retry can commit.
                            if task.committed == Some(*attempt) {
                                task.committed = None;
                            }
                            (job, task.attempts_used >= max)
                        }
                        _ => continue,
                    };
                    if exhausted {
                        if let Some(j) = jobs.get_mut(&job_id) {
                            j.state = JobState::Failed;
                        }
                    }
                }
            }
            for job in jobs.values_mut() {
                job.refresh_state();
            }
        }

        Ok(HeartbeatResponse {
            actions: self.assign(&tt_info, args.free_map_slots, args.free_reduce_slots),
        })
    }
}

/// `mapred.JobSubmissionProtocol`.
struct JobSubmission {
    state: Arc<JtState>,
}

impl RpcService for JobSubmission {
    fn protocol(&self) -> &'static str {
        "mapred.JobSubmissionProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "submitJob" => {
                let mut conf = JobConf::default();
                conf.read_fields(param).map_err(|e| e.to_string())?;
                if conf.map_count() == 0 {
                    return Err("job has no map tasks".into());
                }
                let id = self.state.next_job.fetch_add(1, Ordering::Relaxed);
                let job = Job {
                    maps: (0..conf.map_count()).map(|_| Task::new()).collect(),
                    reduces: (0..conf.n_reduces).map(|_| Task::new()).collect(),
                    conf,
                    state: JobState::Running,
                    events: Vec::new(),
                    completed_durations: Vec::new(),
                };
                let status = job.status(id);
                self.state.jobs.lock().insert(id, job);
                Ok(Box::new(status))
            }
            "killJob" => {
                let mut id = IntWritable::default();
                id.read_fields(param).map_err(|e| e.to_string())?;
                let mut jobs = self.state.jobs.lock();
                let job = jobs
                    .get_mut(&(id.0 as u32))
                    .ok_or_else(|| format!("no job {}", id.0))?;
                if job.state == JobState::Running {
                    job.state = JobState::Failed;
                    // Forget every in-flight attempt: completions that
                    // trickle in later no longer match and are ignored.
                    for task in job.maps.iter_mut().chain(job.reduces.iter_mut()) {
                        if matches!(task.status, TaskStatus::Running { .. }) {
                            task.status = TaskStatus::Pending;
                        }
                    }
                }
                Ok(Box::new(job.status(id.0 as u32)))
            }
            "getJobStatus" => {
                let mut id = IntWritable::default();
                id.read_fields(param).map_err(|e| e.to_string())?;
                let jobs = self.state.jobs.lock();
                let job = jobs
                    .get(&(id.0 as u32))
                    .ok_or_else(|| format!("no job {}", id.0))?;
                Ok(Box::new(job.status(id.0 as u32)))
            }
            other => Err(format!("JobSubmissionProtocol has no method {other}")),
        }
    }
}

/// `mapred.InterTrackerProtocol`.
struct InterTracker {
    state: Arc<JtState>,
}

impl RpcService for InterTracker {
    fn protocol(&self) -> &'static str {
        "mapred.InterTrackerProtocol"
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        match method {
            "registerTracker" => {
                let mut info = TrackerInfo::default();
                info.read_fields(param).map_err(|e| e.to_string())?;
                let id = self.state.next_tt.fetch_add(1, Ordering::Relaxed);
                info.tt_id = id;
                self.state.trackers.lock().insert(
                    id,
                    TrackerReg {
                        info,
                        last_heartbeat: Instant::now(),
                    },
                );
                Ok(Box::new(IntWritable(id as i32)))
            }
            "heartbeat" => {
                let mut args = HeartbeatArgs::default();
                args.read_fields(param).map_err(|e| e.to_string())?;
                let response = self.state.handle_heartbeat(&args)?;
                Ok(Box::new(response))
            }
            "getMapCompletionEvents" => {
                let mut job = IntWritable::default();
                let mut from = IntWritable::default();
                job.read_fields(param)
                    .map_err(|e: io::Error| e.to_string())?;
                from.read_fields(param).map_err(|e| e.to_string())?;
                let jobs = self.state.jobs.lock();
                let j = jobs
                    .get(&(job.0 as u32))
                    .ok_or_else(|| format!("no job {}", job.0))?;
                let events: Vec<MapCompletionEvent> =
                    j.events.iter().skip(from.0 as usize).copied().collect();
                Ok(Box::new(events))
            }
            "canCommit" => {
                let mut attempt = VLongWritable::default();
                attempt.read_fields(param).map_err(|e| e.to_string())?;
                let attempt = attempt.0 as u64;
                let task_ref = self
                    .state
                    .attempts
                    .lock()
                    .get(&attempt)
                    .copied()
                    .ok_or_else(|| format!("unknown attempt {attempt}"))?;
                let mut jobs = self.state.jobs.lock();
                let task = self
                    .state
                    .task_mut(&mut jobs, task_ref)
                    .ok_or_else(|| "task vanished".to_owned())?;
                let granted = match task.committed {
                    None => {
                        task.committed = Some(attempt);
                        true
                    }
                    Some(winner) => winner == attempt,
                };
                Ok(Box::new(BooleanWritable(granted)))
            }
            other => Err(format!("InterTrackerProtocol has no method {other}")),
        }
    }
}

/// A running JobTracker.
pub struct JobTracker {
    server: Server,
    state: Arc<JtState>,
}

impl JobTracker {
    /// Start on `(node, JT_PORT)` of `fabric` (the RPC rail).
    pub fn start(fabric: &Fabric, node: NodeId, cfg: MrConfig) -> RpcResult<JobTracker> {
        let state = Arc::new(JtState {
            cfg: cfg.clone(),
            jobs: Mutex::new(HashMap::new()),
            trackers: Mutex::new(HashMap::new()),
            attempts: Mutex::new(HashMap::new()),
            next_job: AtomicU32::new(1),
            next_tt: AtomicU32::new(0),
            next_attempt: AtomicU64::new(1),
        });
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(JobSubmission {
            state: Arc::clone(&state),
        }));
        registry.register(Arc::new(InterTracker {
            state: Arc::clone(&state),
        }));
        let server = Server::start(fabric, node, JT_PORT, cfg.rpc, registry)?;
        Ok(JobTracker { server, state })
    }

    /// The JobTracker RPC address.
    pub fn addr(&self) -> SimAddr {
        self.server.addr()
    }

    /// Server-side RPC metrics.
    pub fn metrics(&self) -> &rpcoib::MetricsRegistry {
        self.server.metrics()
    }

    /// Live (heartbeating) tracker count.
    pub fn tracker_count(&self) -> usize {
        self.state.trackers.lock().len()
    }

    /// Stop the server.
    pub fn stop(&self) {
        self.server.stop();
    }
}

impl std::fmt::Debug for JobTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTracker")
            .field("addr", &self.server.addr())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_job(maps: u32, reduces: u32) -> Arc<JtState> {
        state_with_job_cfg(maps, reduces, MrConfig::default())
    }

    fn state_with_job_cfg(maps: u32, reduces: u32, cfg: MrConfig) -> Arc<JtState> {
        let state = Arc::new(JtState {
            cfg,
            jobs: Mutex::new(HashMap::new()),
            trackers: Mutex::new(HashMap::new()),
            attempts: Mutex::new(HashMap::new()),
            next_job: AtomicU32::new(2),
            next_tt: AtomicU32::new(1),
            next_attempt: AtomicU64::new(1),
        });
        let conf = JobConf {
            name: "t".into(),
            kind: crate::types::JobKind::Sort,
            input: (0..maps).map(|i| format!("/in/{i}")).collect(),
            output: "/out".into(),
            n_reduces: reduces,
            n_maps: 0,
            params: Vec::new(),
        };
        state.jobs.lock().insert(
            1,
            Job {
                maps: (0..maps).map(|_| Task::new()).collect(),
                reduces: (0..reduces).map(|_| Task::new()).collect(),
                conf,
                state: JobState::Running,
                events: Vec::new(),
                completed_durations: Vec::new(),
            },
        );
        state.trackers.lock().insert(
            0,
            TrackerReg {
                info: TrackerInfo {
                    tt_id: 0,
                    shuffle_node: 9,
                    shuffle_port: 50060,
                },
                last_heartbeat: Instant::now(),
            },
        );
        state
    }

    fn beat(state: &JtState, free_maps: u32, free_reduces: u32) -> HeartbeatResponse {
        beat_from(state, 0, free_maps, free_reduces)
    }

    fn beat_from(
        state: &JtState,
        tt_id: u32,
        free_maps: u32,
        free_reduces: u32,
    ) -> HeartbeatResponse {
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id,
                free_map_slots: free_maps,
                free_reduce_slots: free_reduces,
                ..Default::default()
            })
            .unwrap()
    }

    fn add_tracker(state: &JtState, tt_id: u32) {
        state.trackers.lock().insert(
            tt_id,
            TrackerReg {
                info: TrackerInfo {
                    tt_id,
                    shuffle_node: 100 + tt_id,
                    shuffle_port: 50060,
                },
                last_heartbeat: Instant::now(),
            },
        );
    }

    fn complete(state: &JtState, attempts: Vec<u64>) {
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id: 0,
                completed: attempts,
                ..Default::default()
            })
            .unwrap();
    }

    #[test]
    fn maps_assigned_up_to_free_slots() {
        let state = state_with_job(5, 2);
        let resp = beat(&state, 3, 4);
        assert_eq!(
            resp.actions.len(),
            3,
            "3 free map slots -> 3 maps, no reduces yet"
        );
        assert!(resp
            .actions
            .iter()
            .all(|a| matches!(a.spec, TaskSpec::Map { .. })));
        // Splits are the job's input paths, in order.
        assert!(matches!(&resp.actions[0].spec,
            TaskSpec::Map { map_idx: 0, split } if split == "/in/0"));
    }

    #[test]
    fn reduces_wait_for_all_maps() {
        let state = state_with_job(2, 2);
        let resp = beat(&state, 8, 4);
        let map_attempts: Vec<u64> = resp.actions.iter().map(|a| a.attempt).collect();
        assert_eq!(map_attempts.len(), 2);
        // No reduces while maps run.
        assert!(beat(&state, 8, 4).actions.is_empty());
        // Complete the first map only: still no reduces.
        complete(&state, vec![map_attempts[0]]);
        assert!(beat(&state, 8, 4).actions.is_empty());
        // Complete the second: reduces flow.
        complete(&state, vec![map_attempts[1]]);
        let resp = beat(&state, 8, 4);
        assert_eq!(resp.actions.len(), 2);
        assert!(resp
            .actions
            .iter()
            .all(|a| matches!(a.spec, TaskSpec::Reduce { n_maps: 2, .. })));
    }

    #[test]
    fn completion_events_point_at_the_running_tracker() {
        let state = state_with_job(1, 1);
        let resp = beat(&state, 1, 0);
        complete(&state, vec![resp.actions[0].attempt]);
        let jobs = state.jobs.lock();
        let job = jobs.get(&1).unwrap();
        assert_eq!(job.events.len(), 1);
        assert_eq!(job.events[0].shuffle_node, 9);
        assert_eq!(job.maps_done(), 1);
    }

    #[test]
    fn failed_attempts_requeue_until_exhausted() {
        let state = state_with_job(1, 0);
        let max = state.cfg.max_task_attempts;
        for round in 0..max {
            let resp = beat(&state, 1, 0);
            assert_eq!(resp.actions.len(), 1, "round {round}");
            state
                .handle_heartbeat(&HeartbeatArgs {
                    tt_id: 0,
                    failed: vec![resp.actions[0].attempt],
                    ..Default::default()
                })
                .unwrap();
        }
        let jobs = state.jobs.lock();
        assert_eq!(jobs.get(&1).unwrap().state, JobState::Failed);
    }

    #[test]
    fn map_only_job_succeeds_without_reduces() {
        let state = state_with_job(2, 0);
        let resp = beat(&state, 8, 0);
        complete(&state, resp.actions.iter().map(|a| a.attempt).collect());
        let jobs = state.jobs.lock();
        assert_eq!(jobs.get(&1).unwrap().state, JobState::Succeeded);
    }

    #[test]
    fn commit_arbitration_grants_once_and_releases_on_failure() {
        let state = state_with_job(1, 1);
        let map = beat(&state, 1, 0).actions[0].attempt;
        complete(&state, vec![map]);
        let reduce_attempt = beat(&state, 0, 1).actions[0].attempt;
        let task_ref = *state.attempts.lock().get(&reduce_attempt).unwrap();

        let mut jobs = state.jobs.lock();
        let task = state.task_mut(&mut jobs, task_ref).unwrap();
        assert_eq!(task.committed, None);
        task.committed = Some(reduce_attempt);
        drop(jobs);

        // A failure of the committer releases the grant.
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id: 0,
                failed: vec![reduce_attempt],
                ..Default::default()
            })
            .unwrap();
        let mut jobs = state.jobs.lock();
        let task = state.task_mut(&mut jobs, task_ref).unwrap();
        assert_eq!(
            task.committed, None,
            "failed committer must release the grant"
        );
    }

    #[test]
    fn lost_tracker_requeues_running_and_completed_maps() {
        let state = state_with_job(2, 1);
        let resp = beat(&state, 8, 0);
        // One map completes, one keeps running; reduces still pending.
        complete(&state, vec![resp.actions[0].attempt]);
        // The tracker goes silent past the timeout.
        state.trackers.lock().get_mut(&0).unwrap().last_heartbeat =
            Instant::now() - state.cfg.tt_timeout - Duration::from_millis(1);
        state.reap_lost_trackers();
        let jobs = state.jobs.lock();
        let job = jobs.get(&1).unwrap();
        // Both maps back to pending: the running one died, and the
        // completed one's shuffle output died with the tracker.
        assert!(job.maps.iter().all(|t| t.status == TaskStatus::Pending));
        assert!(job.events.is_empty(), "stale completion events are dropped");
    }

    #[test]
    fn killed_jobs_stop_scheduling_and_ignore_stragglers() {
        let state = state_with_job(4, 2);
        let first = beat(&state, 2, 0);
        assert_eq!(first.actions.len(), 2);
        // Kill: mark failed directly through the same path the RPC takes.
        {
            let mut jobs = state.jobs.lock();
            let job = jobs.get_mut(&1).unwrap();
            job.state = JobState::Failed;
            for task in job.maps.iter_mut().chain(job.reduces.iter_mut()) {
                if matches!(task.status, TaskStatus::Running { .. }) {
                    task.status = TaskStatus::Pending;
                }
            }
        }
        // No further assignments...
        assert!(beat(&state, 8, 8).actions.is_empty());
        // ...and late completions of the killed attempts change nothing.
        complete(&state, first.actions.iter().map(|a| a.attempt).collect());
        let jobs = state.jobs.lock();
        let job = jobs.get(&1).unwrap();
        assert_eq!(job.state, JobState::Failed);
        assert_eq!(job.maps_done(), 0);
    }

    #[test]
    fn stragglers_get_speculative_duplicates_on_other_trackers() {
        let cfg = MrConfig {
            speculative: true,
            speculative_floor: Duration::from_millis(20),
            speculative_slowdown: 1.5,
            ..MrConfig::default()
        };
        let state = state_with_job_cfg(3, 0, cfg);
        add_tracker(&state, 1);

        // All three maps start on tracker 0.
        let first = beat(&state, 8, 0);
        assert_eq!(first.actions.len(), 3);
        // Map 0 completes fast — it becomes the straggler baseline.
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id: 0,
                completed: vec![first.actions[0].attempt],
                ..Default::default()
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        // Tracker 0 itself never gets duplicates of its own attempts.
        assert!(beat(&state, 8, 0).actions.is_empty());
        // Tracker 1, past the floor, gets speculative copies of both
        // remaining stragglers.
        let spec = beat_from(&state, 1, 8, 0);
        assert_eq!(spec.actions.len(), 2, "both stragglers duplicated");
        let dup_of_map1 = spec
            .actions
            .iter()
            .find(|a| matches!(a.spec, TaskSpec::Map { map_idx: 1, .. }))
            .expect("map 1 duplicated");

        // The *duplicate* finishing first completes the task...
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id: 1,
                completed: vec![dup_of_map1.attempt],
                ..Default::default()
            })
            .unwrap();
        {
            let jobs = state.jobs.lock();
            assert_eq!(jobs.get(&1).unwrap().maps_done(), 2);
        }
        // ...and the original's late completion changes nothing.
        let original_map1 = first
            .actions
            .iter()
            .find(|a| matches!(a.spec, TaskSpec::Map { map_idx: 1, .. }))
            .unwrap();
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id: 0,
                completed: vec![original_map1.attempt],
                ..Default::default()
            })
            .unwrap();
        let jobs = state.jobs.lock();
        assert_eq!(jobs.get(&1).unwrap().maps_done(), 2, "no double completion");
    }

    #[test]
    fn no_speculation_before_the_floor_or_when_disabled() {
        // Below the floor: no duplicates.
        let cfg = MrConfig {
            speculative: true,
            speculative_floor: Duration::from_secs(3600),
            ..MrConfig::default()
        };
        let state = state_with_job_cfg(2, 0, cfg);
        add_tracker(&state, 1);
        let first = beat(&state, 8, 0);
        assert_eq!(first.actions.len(), 2);
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id: 0,
                completed: vec![first.actions[0].attempt],
                ..Default::default()
            })
            .unwrap();
        assert!(beat_from(&state, 1, 8, 0).actions.is_empty());

        // Disabled: no duplicates even past the floor.
        let cfg = MrConfig {
            speculative: false,
            speculative_floor: Duration::from_millis(1),
            ..MrConfig::default()
        };
        let state = state_with_job_cfg(2, 0, cfg);
        add_tracker(&state, 1);
        let first = beat(&state, 8, 0);
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id: 0,
                completed: vec![first.actions[0].attempt],
                ..Default::default()
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(beat_from(&state, 1, 8, 0).actions.is_empty());
    }

    #[test]
    fn failed_speculative_attempt_leaves_original_running() {
        let cfg = MrConfig {
            speculative: true,
            speculative_floor: Duration::from_millis(10),
            speculative_slowdown: 1.0,
            ..MrConfig::default()
        };
        let state = state_with_job_cfg(2, 0, cfg);
        add_tracker(&state, 1);
        let first = beat(&state, 8, 0);
        // One fast completion establishes the straggler baseline.
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id: 0,
                completed: vec![first.actions[0].attempt],
                ..Default::default()
            })
            .unwrap();
        let original = first.actions[1].attempt;
        std::thread::sleep(Duration::from_millis(20));
        let dup = beat_from(&state, 1, 8, 0).actions[0].attempt;
        assert_ne!(original, dup);
        // The duplicate fails: the task keeps running on the original.
        state
            .handle_heartbeat(&HeartbeatArgs {
                tt_id: 1,
                failed: vec![dup],
                ..Default::default()
            })
            .unwrap();
        let mut jobs = state.jobs.lock();
        let task = state
            .task_mut(&mut jobs, TaskRef::Map { job: 1, idx: 1 })
            .unwrap();
        assert!(task.is_running_attempt(original));
        assert!(!task.is_running_attempt(dup));
    }
}
