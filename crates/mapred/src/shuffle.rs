//! Shuffle: storage and transfer of map outputs.
//!
//! Hadoop serves map outputs over HTTP from the TaskTracker; here the
//! shuffle server speaks a two-frame protocol (`FETCH` → `CHUNK*`/`MISSING`)
//! over the same pooled-connection machinery the HDFS data plane uses.
//! The shuffle follows the RPC rail: on socket configurations it stays on
//! Ethernet, and on RPCoIB configurations its 64 KiB chunks ride the
//! verbs transport's one-sided bulk plane (slot ring + RDMA write), the
//! shuffle-over-IB extension the paper's "Hadoop Acceleration" line of
//! cited work pursues.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use mini_hdfs::dataxfer::DataConnPool;
use parking_lot::Mutex;
use rpcoib::transport::Conn;
use rpcoib::{RpcError, RpcResult};
use simnet::SimAddr;
use wire::DataInput;

const OP_FETCH: u8 = 0x21;
const OP_FOUND: u8 = 0x22;
const OP_MISSING: u8 = 0x23;
const OP_CHUNK: u8 = 0x24;
const OP_DONE: u8 = 0x25;

/// Chunk size for shuffle transfers.
const SHUFFLE_CHUNK: usize = 64 * 1024;
/// Timeout for an in-progress fetch.
const FETCH_TIMEOUT: Duration = Duration::from_secs(20);

/// `(job, map_idx, reduce_partition)` → serialized sorted run.
type OutputKey = (u32, u32, u32);

/// In-memory map-output storage on a TaskTracker, keyed by
/// `(job, map_idx, reduce_partition)`.
#[derive(Default)]
pub struct MapOutputStore {
    outputs: Mutex<HashMap<OutputKey, Arc<Vec<u8>>>>,
}

impl MapOutputStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Store one partition of one map's output.
    pub fn insert(&self, job: u32, map_idx: u32, reduce: u32, data: Vec<u8>) {
        self.outputs
            .lock()
            .insert((job, map_idx, reduce), Arc::new(data));
    }

    /// Fetch a partition, if present.
    pub fn get(&self, job: u32, map_idx: u32, reduce: u32) -> Option<Arc<Vec<u8>>> {
        self.outputs.lock().get(&(job, map_idx, reduce)).cloned()
    }

    /// Drop all outputs of a finished job.
    pub fn clear_job(&self, job: u32) {
        self.outputs.lock().retain(|(j, _, _), _| *j != job);
    }

    /// Total bytes held (diagnostics).
    pub fn bytes(&self) -> usize {
        self.outputs.lock().values().map(|v| v.len()).sum()
    }
}

/// Serve one shuffle connection until it closes (run by the TaskTracker's
/// shuffle service, one thread per connection).
pub fn serve_connection(conn: &Arc<dyn Conn>, store: &MapOutputStore, stop: impl Fn() -> bool) {
    while !stop() {
        let (payload, _) = match conn.recv_msg(Duration::from_millis(100)) {
            Ok(v) => v,
            Err(RpcError::Timeout) => continue,
            Err(_) => return,
        };
        let mut reader = payload.reader();
        let parsed = (|| -> std::io::Result<(u32, u32, u32)> {
            let op = reader.read_u8()?;
            if op != OP_FETCH {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected shuffle opcode {op}"),
                ));
            }
            Ok((
                reader.read_vint()? as u32,
                reader.read_vint()? as u32,
                reader.read_vint()? as u32,
            ))
        })();
        let (job, map_idx, reduce) = match parsed {
            Ok(v) => v,
            Err(_) => return,
        };
        let result = match store.get(job, map_idx, reduce) {
            Some(data) => send_found(conn, &data),
            None => conn
                .send_msg(
                    rpcoib::intern::method_key("mapred.shuffle", "missing"),
                    &mut |out| out.write_u8(OP_MISSING),
                )
                .map(|_| ()),
        };
        if result.is_err() {
            return;
        }
    }
}

fn send_found(conn: &Arc<dyn Conn>, data: &[u8]) -> RpcResult<()> {
    conn.send_msg(
        rpcoib::intern::method_key("mapred.shuffle", "found"),
        &mut |out| {
            out.write_u8(OP_FOUND)?;
            out.write_vlong(data.len() as i64)
        },
    )?;
    for chunk in data.chunks(SHUFFLE_CHUNK) {
        conn.send_msg(
            rpcoib::intern::method_key("mapred.shuffle", "chunk"),
            &mut |out| {
                out.write_u8(OP_CHUNK)?;
                out.write_len_bytes(chunk)
            },
        )?;
    }
    conn.send_msg(
        rpcoib::intern::method_key("mapred.shuffle", "done"),
        &mut |out| out.write_u8(OP_DONE),
    )?;
    Ok(())
}

/// Fetch one map-output partition from a TaskTracker's shuffle service.
/// Returns `Ok(None)` when the server does not (yet) have the output.
pub fn fetch(
    pool: &DataConnPool,
    addr: SimAddr,
    job: u32,
    map_idx: u32,
    reduce: u32,
) -> RpcResult<Option<Vec<u8>>> {
    let mut conn = pool.checkout(addr)?;
    let run = (|| -> RpcResult<Option<Vec<u8>>> {
        conn.conn().send_msg(
            rpcoib::intern::method_key("mapred.shuffle", "fetch"),
            &mut |out| {
                out.write_u8(OP_FETCH)?;
                out.write_vint(job as i32)?;
                out.write_vint(map_idx as i32)?;
                out.write_vint(reduce as i32)
            },
        )?;
        let (payload, _) = conn.conn().recv_msg(FETCH_TIMEOUT)?;
        let mut reader = payload.reader();
        let op = reader
            .read_u8()
            .map_err(|e| RpcError::Protocol(e.to_string()))?;
        match op {
            OP_MISSING => Ok(None),
            OP_FOUND => {
                let total = reader
                    .read_vlong()
                    .map_err(|e| RpcError::Protocol(e.to_string()))?
                    as usize;
                let mut data = Vec::with_capacity(total);
                loop {
                    let (payload, _) = conn.conn().recv_msg(FETCH_TIMEOUT)?;
                    let mut reader = payload.reader();
                    let op = reader
                        .read_u8()
                        .map_err(|e| RpcError::Protocol(e.to_string()))?;
                    match op {
                        OP_CHUNK => {
                            let chunk = reader
                                .read_len_bytes()
                                .map_err(|e| RpcError::Protocol(e.to_string()))?;
                            data.extend_from_slice(&chunk);
                        }
                        OP_DONE => break,
                        other => {
                            return Err(RpcError::Protocol(format!(
                                "unexpected shuffle opcode {other}"
                            )))
                        }
                    }
                }
                if data.len() != total {
                    return Err(RpcError::Protocol(format!(
                        "short shuffle fetch: {} of {total}",
                        data.len()
                    )));
                }
                Ok(Some(data))
            }
            other => Err(RpcError::Protocol(format!(
                "unexpected shuffle opcode {other}"
            ))),
        }
    })();
    if run.is_err() {
        conn.poison();
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpcoib::transport::socket::SocketConn;
    use rpcoib::RpcConfig;
    use simnet::{model, Fabric, SimListener};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    #[test]
    fn fetch_roundtrip_and_missing() {
        let fabric = Fabric::new(model::TEN_GIG_E);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 50060);
        let listener = SimListener::bind(&fabric, addr).unwrap();

        let store = Arc::new(MapOutputStore::new());
        store.insert(1, 0, 2, (0..200_000u32).map(|i| i as u8).collect());

        let stop = Arc::new(AtomicBool::new(false));
        let store2 = Arc::clone(&store);
        let stop2 = Arc::clone(&stop);
        let srv = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let conn: Arc<dyn Conn> = Arc::new(SocketConn::new(stream, 4096));
            serve_connection(&conn, &store2, || stop2.load(Ordering::Relaxed));
        });

        let pool = DataConnPool::new(&fabric, client, RpcConfig::socket()).unwrap();
        let data = fetch(&pool, addr, 1, 0, 2).unwrap().unwrap();
        assert_eq!(data.len(), 200_000);
        assert!(data.iter().enumerate().all(|(i, &b)| b == i as u8));

        assert!(
            fetch(&pool, addr, 1, 0, 3).unwrap().is_none(),
            "missing partition"
        );
        assert!(
            fetch(&pool, addr, 9, 9, 9).unwrap().is_none(),
            "missing job"
        );

        stop.store(true, Ordering::Relaxed);
        drop(pool);
        srv.join().unwrap();
    }

    #[test]
    fn store_clear_job() {
        let store = MapOutputStore::new();
        store.insert(1, 0, 0, vec![1]);
        store.insert(1, 1, 0, vec![2]);
        store.insert(2, 0, 0, vec![3]);
        assert_eq!(store.bytes(), 3);
        store.clear_job(1);
        assert!(store.get(1, 0, 0).is_none());
        assert!(store.get(2, 0, 0).is_some());
    }
}
