//! Protocol data types for `mapred.InterTrackerProtocol`,
//! `mapred.JobSubmissionProtocol` and `mapred.TaskUmbilicalProtocol`.

use std::io;

use simnet::{NodeId, SimAddr};
use wire::{DataInput, DataOutput, Writable};

/// The built-in job logics (standing in for Hadoop's shipped jar).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JobKind {
    #[default]
    RandomWriter,
    Sort,
    WordCount,
    Grep,
    CloudburstAlign,
    CloudburstFilter,
    KMeans,
    TeraSort,
}

impl JobKind {
    fn to_u8(self) -> u8 {
        match self {
            JobKind::RandomWriter => 0,
            JobKind::Sort => 1,
            JobKind::WordCount => 2,
            JobKind::Grep => 3,
            JobKind::CloudburstAlign => 4,
            JobKind::CloudburstFilter => 5,
            JobKind::KMeans => 6,
            JobKind::TeraSort => 7,
        }
    }

    fn from_u8(v: u8) -> io::Result<JobKind> {
        Ok(match v {
            0 => JobKind::RandomWriter,
            1 => JobKind::Sort,
            2 => JobKind::WordCount,
            3 => JobKind::Grep,
            4 => JobKind::CloudburstAlign,
            5 => JobKind::CloudburstFilter,
            6 => JobKind::KMeans,
            7 => JobKind::TeraSort,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown job kind {other}"),
                ))
            }
        })
    }
}

/// A job description, as submitted by the client. Input paths are the
/// already-expanded split list (one map per entry); synthetic jobs
/// (RandomWriter) use `n_maps` instead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobConf {
    pub name: String,
    pub kind: JobKind,
    pub input: Vec<String>,
    pub output: String,
    pub n_reduces: u32,
    /// Map count for synthetic (inputless) jobs.
    pub n_maps: u32,
    /// Free-form job parameters (sizes, seeds, patterns, …).
    pub params: Vec<(String, String)>,
}

impl JobConf {
    /// Number of map tasks this job will run.
    pub fn map_count(&self) -> u32 {
        if self.input.is_empty() {
            self.n_maps
        } else {
            self.input.len() as u32
        }
    }

    /// Look up a parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parameter parsed as u64, with a default.
    pub fn param_u64(&self, key: &str, default: u64) -> u64 {
        self.param(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

impl Writable for JobConf {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_string(&self.name)?;
        out.write_u8(self.kind.to_u8())?;
        out.write_vint(self.input.len() as i32)?;
        for p in &self.input {
            out.write_string(p)?;
        }
        out.write_string(&self.output)?;
        out.write_vint(self.n_reduces as i32)?;
        out.write_vint(self.n_maps as i32)?;
        out.write_vint(self.params.len() as i32)?;
        for (k, v) in &self.params {
            out.write_string(k)?;
            out.write_string(v)?;
        }
        Ok(())
    }

    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.name = input.read_string()?;
        self.kind = JobKind::from_u8(input.read_u8()?)?;
        let n = input.read_vint()?;
        self.input = (0..n)
            .map(|_| input.read_string())
            .collect::<Result<_, _>>()?;
        self.output = input.read_string()?;
        self.n_reduces = input.read_vint()? as u32;
        self.n_maps = input.read_vint()? as u32;
        let n = input.read_vint()?;
        self.params = (0..n)
            .map(|_| Ok((input.read_string()?, input.read_string()?)))
            .collect::<io::Result<_>>()?;
        Ok(())
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JobState {
    #[default]
    Running,
    Succeeded,
    Failed,
}

/// Snapshot returned by `getJobStatus`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStatus {
    pub job: u32,
    pub state: JobState,
    pub maps_total: u32,
    pub maps_done: u32,
    pub reduces_total: u32,
    pub reduces_done: u32,
}

impl Writable for JobStatus {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vint(self.job as i32)?;
        out.write_u8(match self.state {
            JobState::Running => 0,
            JobState::Succeeded => 1,
            JobState::Failed => 2,
        })?;
        out.write_vint(self.maps_total as i32)?;
        out.write_vint(self.maps_done as i32)?;
        out.write_vint(self.reduces_total as i32)?;
        out.write_vint(self.reduces_done as i32)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.job = input.read_vint()? as u32;
        self.state = match input.read_u8()? {
            0 => JobState::Running,
            1 => JobState::Succeeded,
            2 => JobState::Failed,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad job state {other}"),
                ))
            }
        };
        self.maps_total = input.read_vint()? as u32;
        self.maps_done = input.read_vint()? as u32;
        self.reduces_total = input.read_vint()? as u32;
        self.reduces_done = input.read_vint()? as u32;
        Ok(())
    }
}

/// What a task attempt does.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TaskSpec {
    #[default]
    None,
    Map {
        map_idx: u32,
        split: String,
    },
    Reduce {
        reduce_idx: u32,
        n_maps: u32,
    },
}

/// A task assignment shipped in a heartbeat response.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskAssignment {
    pub job: u32,
    /// Globally unique attempt id.
    pub attempt: u64,
    pub spec: TaskSpec,
    pub conf: JobConf,
}

impl Writable for TaskAssignment {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vint(self.job as i32)?;
        out.write_vlong(self.attempt as i64)?;
        match &self.spec {
            TaskSpec::None => out.write_u8(0)?,
            TaskSpec::Map { map_idx, split } => {
                out.write_u8(1)?;
                out.write_vint(*map_idx as i32)?;
                out.write_string(split)?;
            }
            TaskSpec::Reduce { reduce_idx, n_maps } => {
                out.write_u8(2)?;
                out.write_vint(*reduce_idx as i32)?;
                out.write_vint(*n_maps as i32)?;
            }
        }
        self.conf.write(out)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.job = input.read_vint()? as u32;
        self.attempt = input.read_vlong()? as u64;
        self.spec = match input.read_u8()? {
            0 => TaskSpec::None,
            1 => TaskSpec::Map {
                map_idx: input.read_vint()? as u32,
                split: input.read_string()?,
            },
            2 => TaskSpec::Reduce {
                reduce_idx: input.read_vint()? as u32,
                n_maps: input.read_vint()? as u32,
            },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad task spec tag {other}"),
                ))
            }
        };
        self.conf.read_fields(input)
    }
}

/// Heartbeat request: slot availability + task status deltas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HeartbeatArgs {
    pub tt_id: u32,
    pub free_map_slots: u32,
    pub free_reduce_slots: u32,
    pub completed: Vec<u64>,
    pub failed: Vec<u64>,
    /// Full status reports of the running attempts — Hadoop heartbeats
    /// carry the TaskStatus list, which is what makes the heartbeat
    /// payload vary in size the way the paper's Figure 3 `JT_heartbeat`
    /// trace shows.
    pub running: Vec<TaskReport>,
}

impl Writable for HeartbeatArgs {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vint(self.tt_id as i32)?;
        out.write_vint(self.free_map_slots as i32)?;
        out.write_vint(self.free_reduce_slots as i32)?;
        out.write_vint(self.completed.len() as i32)?;
        for a in &self.completed {
            out.write_vlong(*a as i64)?;
        }
        out.write_vint(self.failed.len() as i32)?;
        for a in &self.failed {
            out.write_vlong(*a as i64)?;
        }
        self.running.write(out)?;
        Ok(())
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.tt_id = input.read_vint()? as u32;
        self.free_map_slots = input.read_vint()? as u32;
        self.free_reduce_slots = input.read_vint()? as u32;
        let n = input.read_vint()?;
        self.completed = (0..n)
            .map(|_| input.read_vlong().map(|v| v as u64))
            .collect::<Result<_, _>>()?;
        let n = input.read_vint()?;
        self.failed = (0..n)
            .map(|_| input.read_vlong().map(|v| v as u64))
            .collect::<Result<_, _>>()?;
        self.running.read_fields(input)?;
        Ok(())
    }
}

/// Heartbeat response: new assignments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeartbeatResponse {
    pub actions: Vec<TaskAssignment>,
}

impl Writable for HeartbeatResponse {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        self.actions.write(out)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.actions.read_fields(input)
    }
}

/// The task status shipped with `statusUpdate` and `commitPending` —
/// Hadoop's `TaskStatus`: state, phase, progress, and a counter set. The
/// counters are what make these the largest, most adjustment-heavy calls
/// in the paper's Table I.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskReport {
    pub attempt: u64,
    pub progress: f32,
    pub state: String,
    pub phase: String,
    pub counters: Vec<(String, i64)>,
}

impl Writable for TaskReport {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vlong(self.attempt as i64)?;
        out.write_f32(self.progress)?;
        out.write_string(&self.state)?;
        out.write_string(&self.phase)?;
        out.write_vint(self.counters.len() as i32)?;
        for (name, value) in &self.counters {
            out.write_string(name)?;
            out.write_vlong(*value)?;
        }
        Ok(())
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.attempt = input.read_vlong()? as u64;
        self.progress = input.read_f32()?;
        self.state = input.read_string()?;
        self.phase = input.read_string()?;
        let n = input.read_vint()?;
        self.counters = (0..n)
            .map(|_| Ok((input.read_string()?, input.read_vlong()?)))
            .collect::<io::Result<_>>()?;
        Ok(())
    }
}

/// Registration of a TaskTracker with the JobTracker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackerInfo {
    pub tt_id: u32,
    /// Shuffle service location (eth rail).
    pub shuffle_node: u32,
    pub shuffle_port: u16,
}

impl TrackerInfo {
    pub fn shuffle_addr(&self) -> SimAddr {
        SimAddr::new(NodeId(self.shuffle_node), self.shuffle_port)
    }
}

impl Writable for TrackerInfo {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vint(self.tt_id as i32)?;
        out.write_i32(self.shuffle_node as i32)?;
        out.write_u16(self.shuffle_port)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.tt_id = input.read_vint()? as u32;
        self.shuffle_node = input.read_i32()? as u32;
        self.shuffle_port = input.read_u16()?;
        Ok(())
    }
}

/// Where a completed map's output can be fetched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapCompletionEvent {
    pub map_idx: u32,
    pub shuffle_node: u32,
    pub shuffle_port: u16,
}

impl MapCompletionEvent {
    pub fn shuffle_addr(&self) -> SimAddr {
        SimAddr::new(NodeId(self.shuffle_node), self.shuffle_port)
    }
}

impl Writable for MapCompletionEvent {
    fn write(&self, out: &mut dyn DataOutput) -> io::Result<()> {
        out.write_vint(self.map_idx as i32)?;
        out.write_i32(self.shuffle_node as i32)?;
        out.write_u16(self.shuffle_port)
    }
    fn read_fields(&mut self, input: &mut dyn DataInput) -> io::Result<()> {
        self.map_idx = input.read_vint()? as u32;
        self.shuffle_node = input.read_i32()? as u32;
        self.shuffle_port = input.read_u16()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{from_bytes, to_bytes};

    fn roundtrip<W: Writable + Default + PartialEq + std::fmt::Debug>(v: W) {
        let back: W = from_bytes(&to_bytes(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    fn sample_conf() -> JobConf {
        JobConf {
            name: "sort".into(),
            kind: JobKind::Sort,
            input: vec!["/in/part-0".into(), "/in/part-1".into()],
            output: "/out".into(),
            n_reduces: 4,
            n_maps: 0,
            params: vec![("seed".into(), "42".into())],
        }
    }

    #[test]
    fn protocol_types_roundtrip() {
        roundtrip(sample_conf());
        roundtrip(JobStatus {
            job: 3,
            state: JobState::Succeeded,
            maps_total: 10,
            maps_done: 10,
            reduces_total: 4,
            reduces_done: 4,
        });
        roundtrip(TaskAssignment {
            job: 1,
            attempt: 99,
            spec: TaskSpec::Map {
                map_idx: 2,
                split: "/in/part-2".into(),
            },
            conf: sample_conf(),
        });
        roundtrip(TaskAssignment {
            job: 1,
            attempt: 100,
            spec: TaskSpec::Reduce {
                reduce_idx: 1,
                n_maps: 10,
            },
            conf: sample_conf(),
        });
        roundtrip(HeartbeatArgs {
            tt_id: 7,
            free_map_slots: 8,
            free_reduce_slots: 4,
            completed: vec![1, 2],
            failed: vec![3],
            running: vec![TaskReport {
                attempt: 4,
                progress: 0.5,
                state: "RUNNING".into(),
                phase: "MAP".into(),
                counters: vec![("MAP_INPUT_RECORDS".into(), 100)],
            }],
        });
        roundtrip(TaskReport::default());
        roundtrip(HeartbeatResponse {
            actions: vec![TaskAssignment::default()],
        });
        roundtrip(TrackerInfo {
            tt_id: 1,
            shuffle_node: 9,
            shuffle_port: 50060,
        });
        roundtrip(MapCompletionEvent {
            map_idx: 5,
            shuffle_node: 9,
            shuffle_port: 50060,
        });
    }

    #[test]
    fn heartbeat_size_grows_with_running_tasks() {
        // Figure 3's JT_heartbeat size variation comes from the varying
        // task-report payload.
        let small = to_bytes(&HeartbeatArgs {
            tt_id: 1,
            ..Default::default()
        })
        .unwrap();
        let big = to_bytes(&HeartbeatArgs {
            tt_id: 1,
            running: (0..12)
                .map(|i| TaskReport {
                    attempt: i,
                    progress: 0.5,
                    state: "RUNNING".into(),
                    phase: "MAP".into(),
                    counters: vec![("MAP_INPUT_RECORDS".into(), 100); 8],
                })
                .collect(),
            ..Default::default()
        })
        .unwrap();
        assert!(big.len() > small.len() + 1000);
    }

    #[test]
    fn map_count_prefers_input_splits() {
        let mut conf = sample_conf();
        assert_eq!(conf.map_count(), 2);
        conf.input.clear();
        conf.n_maps = 7;
        assert_eq!(conf.map_count(), 7);
    }

    #[test]
    fn params_lookup() {
        let conf = sample_conf();
        assert_eq!(conf.param("seed"), Some("42"));
        assert_eq!(conf.param_u64("seed", 0), 42);
        assert_eq!(conf.param_u64("missing", 9), 9);
    }
}
