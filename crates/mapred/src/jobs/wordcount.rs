//! WordCount: the canonical example job. Values are text lines; counts
//! travel as 8-byte big-endian integers.

use std::io;

use super::{JobLogic, MapContext, ReduceContext};

pub struct WordCount;

fn sum_counts(values: &[Vec<u8>]) -> io::Result<u64> {
    let mut total = 0u64;
    for v in values {
        let bytes: [u8; 8] = v
            .as_slice()
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad count"))?;
        total += u64::from_be_bytes(bytes);
    }
    Ok(total)
}

impl JobLogic for WordCount {
    fn map(&self, ctx: &mut MapContext, _key: &[u8], value: &[u8]) -> io::Result<()> {
        let line = String::from_utf8_lossy(value);
        for word in line.split_whitespace() {
            ctx.emit(word.as_bytes(), &1u64.to_be_bytes());
        }
        Ok(())
    }

    fn reduce(&self, ctx: &mut ReduceContext, key: &[u8], values: &[Vec<u8>]) -> io::Result<()> {
        ctx.emit(key, &sum_counts(values)?.to_be_bytes());
        Ok(())
    }

    /// Counts are associative: fold them map-side to shrink the shuffle.
    fn combine(&self, _key: &[u8], values: &[Vec<u8>]) -> io::Result<Option<Vec<Vec<u8>>>> {
        Ok(Some(vec![sum_counts(values)?.to_be_bytes().to_vec()]))
    }
}
