//! Job logic: the map/reduce functions of the built-in jobs, plus the
//! task-side execution framework (contexts, partitioning, sort & group).
//!
//! Built-ins mirror the paper's workloads: RandomWriter and Sort
//! (Figure 6(a)), CloudBurst alignment + filtering (Figure 6(b)), and
//! WordCount / Grep as additional example workloads.

pub mod cloudburst;
pub mod grep;
pub mod kmeans;
pub mod randomwriter;
pub mod sort;
pub mod terasort;
pub mod wordcount;

use std::io;
use std::sync::Arc;

use mini_hdfs::DfsClient;

use crate::record::{write_record, RecordReader};
use crate::types::{JobConf, JobKind};

/// Routes a key to its reduce partition.
type Partitioner<'a> = Box<dyn Fn(&[u8]) -> u32 + Send + 'a>;
/// Invoked with the running record/group count for progress reporting.
type ProgressCallback<'a> = Box<dyn FnMut(u64) + Send + 'a>;

/// Per-map-task context handed to job logic.
pub struct MapContext<'a> {
    pub conf: &'a JobConf,
    pub map_idx: u32,
    pub split: &'a str,
    pub dfs: &'a DfsClient,
    /// Free space for `map_setup` (e.g. k-means centroids).
    pub scratch: Vec<u8>,
    n_reduces: u32,
    /// One record buffer per reduce partition (single buffer when the job
    /// is map-only).
    partitions: Vec<Vec<u8>>,
    partition_of: Partitioner<'a>,
    /// Called periodically so the runner can send `statusUpdate`s.
    progress_cb: ProgressCallback<'a>,
    records: u64,
}

impl<'a> MapContext<'a> {
    /// Emit one intermediate (or final, for map-only jobs) record.
    pub fn emit(&mut self, key: &[u8], value: &[u8]) {
        let p = if self.n_reduces == 0 {
            0
        } else {
            (self.partition_of)(key) as usize
        };
        write_record(&mut self.partitions[p], key, value);
    }

    /// Report one processed input record (drives umbilical traffic).
    pub fn progress(&mut self) {
        self.records += 1;
        (self.progress_cb)(self.records);
    }

    /// Records processed so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// Per-reduce-task context handed to job logic.
pub struct ReduceContext<'a> {
    pub conf: &'a JobConf,
    pub reduce_idx: u32,
    pub dfs: &'a DfsClient,
    /// Output record buffer (written to HDFS by the framework on commit).
    out: Vec<u8>,
    /// Free space for `reduce_setup` (e.g. CloudBurst's reference bases).
    pub scratch: Vec<u8>,
    progress_cb: ProgressCallback<'a>,
    groups: u64,
}

impl ReduceContext<'_> {
    /// Emit one output record.
    pub fn emit(&mut self, key: &[u8], value: &[u8]) {
        write_record(&mut self.out, key, value);
    }

    /// Report one processed key group.
    pub fn progress(&mut self) {
        self.groups += 1;
        (self.progress_cb)(self.groups);
    }
}

/// The map/reduce functions of one job kind.
pub trait JobLogic: Send + Sync {
    /// Map one input record.
    fn map(&self, ctx: &mut MapContext, key: &[u8], value: &[u8]) -> io::Result<()>;

    /// One-time setup before mapping (e.g. load side data into
    /// [`MapContext::scratch`]).
    fn map_setup(&self, _ctx: &mut MapContext) -> io::Result<()> {
        Ok(())
    }

    /// Run a whole map task. The default reads the split file from HDFS
    /// and feeds its records through [`JobLogic::map`]; synthetic jobs
    /// (RandomWriter) override this.
    fn run_map(&self, ctx: &mut MapContext) -> io::Result<()> {
        let data = ctx
            .dfs
            .read_file(ctx.split)
            .map_err(|e| io::Error::other(format!("reading split {}: {e}", ctx.split)))?;
        let mut reader = RecordReader::new(&data);
        while let Some((k, v)) = reader.next()? {
            self.map(ctx, k, v)?;
            ctx.progress();
        }
        Ok(())
    }

    /// One-time setup before reducing (e.g. load side data).
    fn reduce_setup(&self, _ctx: &mut ReduceContext) -> io::Result<()> {
        Ok(())
    }

    /// Reduce one key group.
    fn reduce(&self, ctx: &mut ReduceContext, key: &[u8], values: &[Vec<u8>]) -> io::Result<()>;

    /// Map-side combiner: fold a key group's values locally before the
    /// shuffle (Hadoop's combiner). Return `None` (the default) to pass
    /// values through untouched.
    fn combine(&self, _key: &[u8], _values: &[Vec<u8>]) -> io::Result<Option<Vec<Vec<u8>>>> {
        Ok(None)
    }

    /// Route a key to a reduce partition. Default: FNV-style hash, like
    /// Hadoop's HashPartitioner. `conf` carries job parameters for
    /// configured partitioners (e.g. TeraSort's sampled boundaries).
    fn partition(&self, _conf: &JobConf, key: &[u8], n_reduces: u32) -> u32 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % n_reduces as u64) as u32
    }
}

/// Resolve the logic for a job kind (the "job jar" lookup).
pub fn logic_for(kind: JobKind) -> Arc<dyn JobLogic> {
    match kind {
        JobKind::RandomWriter => Arc::new(randomwriter::RandomWriter),
        JobKind::Sort => Arc::new(sort::Sort),
        JobKind::WordCount => Arc::new(wordcount::WordCount),
        JobKind::Grep => Arc::new(grep::Grep),
        JobKind::CloudburstAlign => Arc::new(cloudburst::Align),
        JobKind::CloudburstFilter => Arc::new(cloudburst::Filter),
        JobKind::KMeans => Arc::new(kmeans::KMeans),
        JobKind::TeraSort => Arc::new(terasort::TeraSort),
    }
}

/// Execute a map task end to end; returns the per-partition sorted runs
/// (for shuffle) or, for map-only jobs, the final output bytes.
pub fn run_map_task(
    logic: &dyn JobLogic,
    conf: &JobConf,
    map_idx: u32,
    split: &str,
    dfs: &DfsClient,
    progress_cb: impl FnMut(u64) + Send,
) -> io::Result<Vec<Vec<u8>>> {
    let n_reduces = conf.n_reduces;
    let n_parts = n_reduces.max(1) as usize;
    let logic_ref: &dyn JobLogic = logic;
    let mut ctx = MapContext {
        conf,
        map_idx,
        split,
        dfs,
        scratch: Vec::new(),
        n_reduces,
        partitions: vec![Vec::new(); n_parts],
        partition_of: Box::new(move |key| logic_ref.partition(conf, key, n_reduces.max(1))),
        progress_cb: Box::new(progress_cb),
        records: 0,
    };
    logic.map_setup(&mut ctx)?;
    logic.run_map(&mut ctx)?;
    let partitions = std::mem::take(&mut ctx.partitions);
    drop(ctx);
    // Sort each partition by key (Hadoop's map-side sort), then run the
    // combiner over each key group. Map-only jobs keep emission order.
    if n_reduces == 0 {
        return Ok(partitions);
    }
    partitions
        .into_iter()
        .map(|run| {
            let sorted = sort_run(run)?;
            apply_combiner(logic, sorted)
        })
        .collect()
}

/// Run the job's combiner over a sorted run; a pass-through when the job
/// has no combiner.
fn apply_combiner(logic: &dyn JobLogic, run: Vec<u8>) -> io::Result<Vec<u8>> {
    let mut records = Vec::new();
    {
        let mut reader = RecordReader::new(&run);
        while let Some((k, v)) = reader.next()? {
            records.push((k.to_vec(), v.to_vec()));
        }
    }
    let mut out = Vec::with_capacity(run.len());
    let mut combined_any = false;
    let mut i = 0;
    while i < records.len() {
        let mut j = i + 1;
        while j < records.len() && records[j].0 == records[i].0 {
            j += 1;
        }
        let key = &records[i].0;
        let values: Vec<Vec<u8>> = records[i..j].iter().map(|(_, v)| v.clone()).collect();
        match logic.combine(key, &values)? {
            Some(folded) => {
                combined_any = true;
                for v in folded {
                    write_record(&mut out, key, &v);
                }
            }
            None => {
                for v in &values {
                    write_record(&mut out, key, v);
                }
            }
        }
        i = j;
    }
    // Without a combiner the rewrite is byte-identical; return the
    // original to skip the copy.
    Ok(if combined_any { out } else { run })
}

/// Sort a record run by key (stable, preserving value order per key).
pub fn sort_run(run: Vec<u8>) -> io::Result<Vec<u8>> {
    let mut records = Vec::new();
    let mut reader = RecordReader::new(&run);
    while let Some((k, v)) = reader.next()? {
        records.push((k.to_vec(), v.to_vec()));
    }
    records.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(run.len());
    for (k, v) in records {
        write_record(&mut out, &k, &v);
    }
    Ok(out)
}

/// Execute a reduce task over the fetched (sorted) runs; returns the
/// output file bytes.
pub fn run_reduce_task(
    logic: &dyn JobLogic,
    conf: &JobConf,
    reduce_idx: u32,
    runs: Vec<Vec<u8>>,
    dfs: &DfsClient,
    progress_cb: impl FnMut(u64) + Send,
) -> io::Result<Vec<u8>> {
    // Merge: collect and sort (runs are individually sorted; a k-way
    // merge would also work, but collect-and-sort is simpler and the
    // volumes are scaled down).
    let mut records = Vec::new();
    for run in &runs {
        let mut reader = RecordReader::new(run);
        while let Some((k, v)) = reader.next()? {
            records.push((k.to_vec(), v.to_vec()));
        }
    }
    records.sort_by(|a, b| a.0.cmp(&b.0));

    let mut ctx = ReduceContext {
        conf,
        reduce_idx,
        dfs,
        out: Vec::new(),
        scratch: Vec::new(),
        progress_cb: Box::new(progress_cb),
        groups: 0,
    };
    logic.reduce_setup(&mut ctx)?;

    let mut i = 0;
    while i < records.len() {
        let mut j = i + 1;
        while j < records.len() && records[j].0 == records[i].0 {
            j += 1;
        }
        let key = records[i].0.clone();
        let values: Vec<Vec<u8>> = records[i..j].iter().map(|(_, v)| v.clone()).collect();
        logic.reduce(&mut ctx, &key, &values)?;
        ctx.progress();
        i = j;
    }
    Ok(ctx.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::read_all;

    struct Identity;
    impl JobLogic for Identity {
        fn map(&self, ctx: &mut MapContext, key: &[u8], value: &[u8]) -> io::Result<()> {
            ctx.emit(key, value);
            Ok(())
        }
        fn reduce(
            &self,
            ctx: &mut ReduceContext,
            key: &[u8],
            values: &[Vec<u8>],
        ) -> io::Result<()> {
            for v in values {
                ctx.emit(key, v);
            }
            Ok(())
        }
    }

    #[test]
    fn sort_run_orders_by_key() {
        let mut run = Vec::new();
        write_record(&mut run, b"zebra", b"1");
        write_record(&mut run, b"apple", b"2");
        write_record(&mut run, b"mango", b"3");
        let sorted = sort_run(run).unwrap();
        let records = read_all(&sorted).unwrap();
        let keys: Vec<&[u8]> = records.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"apple".as_slice(), b"mango", b"zebra"]);
    }

    #[test]
    fn default_partition_is_stable_and_in_range() {
        let logic = Identity;
        let conf = JobConf::default();
        for key in [b"a".as_slice(), b"bb", b"ccc", b""] {
            let p = logic.partition(&conf, key, 7);
            assert!(p < 7);
            assert_eq!(p, logic.partition(&conf, key, 7), "deterministic");
        }
    }

    #[test]
    fn reduce_groups_equal_keys() {
        let mut run1 = Vec::new();
        write_record(&mut run1, b"k1", b"a");
        write_record(&mut run1, b"k2", b"b");
        let mut run2 = Vec::new();
        write_record(&mut run2, b"k1", b"c");
        // A throwaway DfsClient is hard to build here; reduce only touches
        // dfs when the logic asks for it, and Identity does not. Use a
        // null pointer trick via Option? Instead, spin a tiny MiniDfs-free
        // context by constructing ReduceContext through run_reduce_task's
        // internals — covered by the integration tests. Here we exercise
        // grouping via a local reimplementation guard.
        let mut records = Vec::new();
        for run in [&run1, &run2] {
            records.extend(read_all(run).unwrap());
        }
        records.sort();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].0, b"k1");
        assert_eq!(records[1].0, b"k1");
    }
}
