//! RandomWriter: the map-only generator of Figure 6(a). Each map emits
//! `bytes.per.map` of random key/value pairs; the framework writes them
//! to the job output directory (used as Sort input).

use std::io;

use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

use super::{JobLogic, MapContext, ReduceContext};

/// Parameter: bytes each map should generate (default 1 MiB).
pub const BYTES_PER_MAP: &str = "randomwriter.bytes.per.map";
/// Parameter: RNG seed base.
pub const SEED: &str = "randomwriter.seed";

pub struct RandomWriter;

impl JobLogic for RandomWriter {
    fn map(&self, _ctx: &mut MapContext, _key: &[u8], _value: &[u8]) -> io::Result<()> {
        unreachable!("RandomWriter is synthetic; run_map is overridden")
    }

    fn run_map(&self, ctx: &mut MapContext) -> io::Result<()> {
        let target = ctx.conf.param_u64(BYTES_PER_MAP, 1 << 20);
        let seed = ctx
            .conf
            .param_u64(SEED, 1)
            .wrapping_add(ctx.map_idx as u64 * 7919);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut produced = 0u64;
        let mut key = [0u8; 10];
        while produced < target {
            rng.fill_bytes(&mut key);
            // Hadoop's RandomWriter varies value sizes; keep 64..192.
            let vlen = rng.gen_range(64..192);
            let mut value = vec![0u8; vlen];
            rng.fill_bytes(&mut value);
            ctx.emit(&key, &value);
            produced += (key.len() + vlen) as u64;
            ctx.progress();
        }
        Ok(())
    }

    fn reduce(&self, _ctx: &mut ReduceContext, _key: &[u8], _values: &[Vec<u8>]) -> io::Result<()> {
        Err(io::Error::other("RandomWriter is map-only"))
    }
}
