//! TeraSort-style total-order sort: identity map/reduce with a
//! **sampled range partitioner** (Hadoop's `TotalOrderPartitioner`).
//!
//! The plain [`super::sort::Sort`] job partitions on the first key byte,
//! which balances only uniformly distributed keys. TeraSort instead
//! samples the input before submission, derives `n_reduces - 1` key
//! boundaries, and ships them to the mappers through a job parameter;
//! each key routes to the partition whose boundary range contains it —
//! so the concatenated outputs are globally sorted *and* the reduce load
//! stays balanced under arbitrary key skew.

use std::io;

use mini_hdfs::DfsClient;
use rand::{rngs::StdRng, Rng, SeedableRng};

use super::{JobLogic, MapContext, ReduceContext};
use crate::record::RecordReader;
use crate::types::JobConf;

/// Parameter: hex-encoded, `,`-separated partition boundary keys.
pub const BOUNDARIES: &str = "terasort.boundaries";

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Serialize boundaries into the job-parameter form.
pub fn encode_boundaries(boundaries: &[Vec<u8>]) -> String {
    boundaries
        .iter()
        .map(|b| hex_encode(b))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse the job-parameter form back into boundary keys.
pub fn decode_boundaries(param: &str) -> Vec<Vec<u8>> {
    if param.is_empty() {
        return Vec::new();
    }
    param.split(',').filter_map(hex_decode).collect()
}

pub struct TeraSort;

impl JobLogic for TeraSort {
    fn map(&self, ctx: &mut MapContext, key: &[u8], value: &[u8]) -> io::Result<()> {
        ctx.emit(key, value);
        Ok(())
    }

    fn reduce(&self, ctx: &mut ReduceContext, key: &[u8], values: &[Vec<u8>]) -> io::Result<()> {
        for v in values {
            ctx.emit(key, v);
        }
        Ok(())
    }

    /// Partition `i` holds keys in `[boundary[i-1], boundary[i])`:
    /// binary search over the sampled boundaries.
    fn partition(&self, conf: &JobConf, key: &[u8], n_reduces: u32) -> u32 {
        let boundaries = decode_boundaries(conf.param(BOUNDARIES).unwrap_or(""));
        if boundaries.is_empty() {
            return 0;
        }
        let idx = boundaries.partition_point(|b| b.as_slice() <= key) as u32;
        idx.min(n_reduces - 1)
    }
}

/// Sample the input files and derive `n_reduces - 1` balanced boundary
/// keys (Hadoop's `InputSampler.RandomSampler` + `TotalOrderPartitioner`
/// pre-pass, run by the job client before submission).
pub fn sample_boundaries(
    dfs: &DfsClient,
    input: &[String],
    n_reduces: u32,
    samples_per_file: usize,
    seed: u64,
) -> io::Result<Vec<Vec<u8>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampled: Vec<Vec<u8>> = Vec::new();
    for path in input {
        let data = dfs
            .read_file(path)
            .map_err(|e| io::Error::other(format!("sampling {path}: {e}")))?;
        let mut keys = Vec::new();
        let mut reader = RecordReader::new(&data);
        while let Some((k, _)) = reader.next()? {
            keys.push(k.to_vec());
        }
        for _ in 0..samples_per_file.min(keys.len()) {
            sampled.push(keys[rng.gen_range(0..keys.len())].clone());
        }
    }
    if sampled.is_empty() {
        return Ok(Vec::new());
    }
    sampled.sort();
    // Evenly spaced quantiles become the boundaries.
    let boundaries = (1..n_reduces)
        .map(|i| sampled[(i as usize * sampled.len()) / n_reduces as usize].clone())
        .collect();
    Ok(boundaries)
}

/// Build a ready-to-submit TeraSort configuration (samples the input).
pub fn make_conf(
    dfs: &DfsClient,
    input: Vec<String>,
    output: &str,
    n_reduces: u32,
    seed: u64,
) -> io::Result<JobConf> {
    let boundaries = sample_boundaries(dfs, &input, n_reduces, 20, seed)?;
    Ok(JobConf {
        name: "terasort".into(),
        kind: crate::types::JobKind::TeraSort,
        input,
        output: output.to_owned(),
        n_reduces,
        n_maps: 0,
        params: vec![(BOUNDARIES.into(), encode_boundaries(&boundaries))],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for bytes in [
            vec![],
            vec![0u8],
            vec![0xde, 0xad, 0xbe, 0xef],
            vec![0xff; 32],
        ] {
            assert_eq!(hex_decode(&hex_encode(&bytes)), Some(bytes));
        }
        assert_eq!(hex_decode("zz"), None);
        assert_eq!(hex_decode("abc"), None);
    }

    #[test]
    fn boundary_codec_roundtrip() {
        let boundaries = vec![b"apple".to_vec(), b"mango".to_vec(), vec![0, 255, 7]];
        let encoded = encode_boundaries(&boundaries);
        assert_eq!(decode_boundaries(&encoded), boundaries);
        assert!(decode_boundaries("").is_empty());
    }

    #[test]
    fn partition_is_monotone_and_respects_boundaries() {
        let boundaries = vec![b"f".to_vec(), b"p".to_vec()];
        let conf = JobConf {
            params: vec![(BOUNDARIES.into(), encode_boundaries(&boundaries))],
            ..JobConf::default()
        };
        let ts = TeraSort;
        assert_eq!(ts.partition(&conf, b"apple", 3), 0);
        assert_eq!(ts.partition(&conf, b"f", 3), 1, "boundary key goes right");
        assert_eq!(ts.partition(&conf, b"grape", 3), 1);
        assert_eq!(ts.partition(&conf, b"zebra", 3), 2);
        // Monotone over arbitrary keys.
        let mut last = 0;
        for b in 0u8..=255 {
            let p = ts.partition(&conf, &[b], 3);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn empty_boundaries_degenerate_to_single_partition() {
        let ts = TeraSort;
        let conf = JobConf::default();
        assert_eq!(ts.partition(&conf, b"anything", 4), 0);
    }
}
