//! Sort: identity map + identity reduce with a *range* partitioner on the
//! first key byte, so that concatenating `part-r-*` in order yields a
//! globally sorted dataset (per-partition sorting alone is what stock
//! hash-partitioned Sort gives; range partitioning keeps the output
//! checkable end to end).

use std::io;

use super::{JobLogic, MapContext, ReduceContext};

pub struct Sort;

impl JobLogic for Sort {
    fn map(&self, ctx: &mut MapContext, key: &[u8], value: &[u8]) -> io::Result<()> {
        ctx.emit(key, value);
        Ok(())
    }

    fn reduce(&self, ctx: &mut ReduceContext, key: &[u8], values: &[Vec<u8>]) -> io::Result<()> {
        for v in values {
            ctx.emit(key, v);
        }
        Ok(())
    }

    fn partition(&self, _conf: &crate::types::JobConf, key: &[u8], n_reduces: u32) -> u32 {
        let first = key.first().copied().unwrap_or(0) as u32;
        (first * n_reduces) >> 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_partition_is_monotone_in_first_byte() {
        let sort = Sort;
        let conf = crate::types::JobConf::default();
        let n = 4;
        let mut last = 0;
        for b in 0u8..=255 {
            let p = sort.partition(&conf, &[b, 99], n);
            assert!(p < n);
            assert!(p >= last, "partition must be monotone");
            last = p;
        }
        assert_eq!(sort.partition(&conf, &[0], n), 0);
        assert_eq!(sort.partition(&conf, &[255], n), n - 1);
        assert_eq!(
            sort.partition(&conf, &[], n),
            0,
            "empty key goes to partition 0"
        );
    }
}
