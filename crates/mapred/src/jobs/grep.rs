//! Grep: emit records whose value contains a literal pattern; the reduce
//! side is identity (collecting matches per key).

use std::io;

use super::{JobLogic, MapContext, ReduceContext};

/// Parameter: the literal pattern to search for.
pub const PATTERN: &str = "grep.pattern";

pub struct Grep;

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

impl JobLogic for Grep {
    fn map(&self, ctx: &mut MapContext, key: &[u8], value: &[u8]) -> io::Result<()> {
        let pattern = ctx.conf.param(PATTERN).unwrap_or("").as_bytes().to_vec();
        if contains(value, &pattern) {
            ctx.emit(key, value);
        }
        Ok(())
    }

    fn reduce(&self, ctx: &mut ReduceContext, key: &[u8], values: &[Vec<u8>]) -> io::Result<()> {
        for v in values {
            ctx.emit(key, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substring_matcher() {
        assert!(contains(b"hello world", b"lo wo"));
        assert!(contains(b"abc", b""));
        assert!(!contains(b"abc", b"abcd"));
        assert!(contains(b"abc", b"abc"));
        assert!(!contains(b"", b"x"));
    }
}
