//! K-means clustering: the canonical *iterative* MapReduce workload
//! (listed by the paper's citations as the class of application whose
//! per-iteration job overhead Hadoop RPC dominates).
//!
//! One job = one Lloyd iteration: the map phase assigns each point to
//! its nearest centroid (centroids are side data, loaded from HDFS in
//! `map_setup`), the combiner pre-aggregates partial sums, and the
//! reduce phase emits the new centroids. [`drive`] chains jobs until the
//! centroids converge.

use std::io;
use std::time::Duration;

use mini_hdfs::DfsClient;
use rand::{rngs::StdRng, Rng, SeedableRng};

use super::{JobLogic, MapContext, ReduceContext};
use crate::client::JobClient;
use crate::record::{read_all, write_record, RecordReader};
use crate::types::{JobConf, JobKind};

/// Parameter: number of clusters.
pub const K: &str = "kmeans.k";
/// Parameter: point dimensionality.
pub const DIM: &str = "kmeans.dim";
/// Parameter: HDFS path of the current centroids file.
pub const CENTROIDS: &str = "kmeans.centroids.path";

/// Serialize a point (or centroid) as little-endian f64s.
pub fn encode_point(coords: &[f64]) -> Vec<u8> {
    coords.iter().flat_map(|c| c.to_le_bytes()).collect()
}

/// Parse a point serialized by [`encode_point`].
pub fn decode_point(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Partial aggregate carried through shuffle: `[count f64][sum coords…]`.
fn encode_partial(count: f64, sums: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * (sums.len() + 1));
    out.extend_from_slice(&count.to_le_bytes());
    out.extend(sums.iter().flat_map(|c| c.to_le_bytes()));
    out
}

fn decode_partial(bytes: &[u8]) -> (f64, Vec<f64>) {
    let values = decode_point(bytes);
    (values[0], values[1..].to_vec())
}

pub struct KMeans;

impl KMeans {
    fn centroids_of(ctx_scratch: &[u8]) -> io::Result<Vec<Vec<f64>>> {
        read_all(ctx_scratch)
            .map(|records| records.into_iter().map(|(_, v)| decode_point(&v)).collect())
    }

    fn fold(values: &[Vec<u8>]) -> (f64, Vec<f64>) {
        let mut total = 0.0;
        let mut sums: Vec<f64> = Vec::new();
        for v in values {
            let (count, partial) = decode_partial(v);
            total += count;
            if sums.is_empty() {
                sums = partial;
            } else {
                for (s, p) in sums.iter_mut().zip(&partial) {
                    *s += p;
                }
            }
        }
        (total, sums)
    }
}

impl JobLogic for KMeans {
    fn map_setup(&self, ctx: &mut MapContext) -> io::Result<()> {
        let path = ctx
            .conf
            .param(CENTROIDS)
            .ok_or_else(|| io::Error::other("missing kmeans.centroids.path"))?
            .to_owned();
        ctx.scratch = ctx
            .dfs
            .read_file(&path)
            .map_err(|e| io::Error::other(format!("loading centroids: {e}")))?;
        Ok(())
    }

    fn map(&self, ctx: &mut MapContext, _key: &[u8], value: &[u8]) -> io::Result<()> {
        let centroids = Self::centroids_of(&ctx.scratch)?;
        let point = decode_point(value);
        let nearest = centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                squared_distance(a, &point).total_cmp(&squared_distance(b, &point))
            })
            .map(|(i, _)| i as u32)
            .ok_or_else(|| io::Error::other("no centroids"))?;
        ctx.emit(&nearest.to_be_bytes(), &encode_partial(1.0, &point));
        Ok(())
    }

    /// Partial sums are associative — fold them map-side.
    fn combine(&self, _key: &[u8], values: &[Vec<u8>]) -> io::Result<Option<Vec<Vec<u8>>>> {
        let (count, sums) = Self::fold(values);
        Ok(Some(vec![encode_partial(count, &sums)]))
    }

    fn reduce(&self, ctx: &mut ReduceContext, key: &[u8], values: &[Vec<u8>]) -> io::Result<()> {
        let (count, sums) = Self::fold(values);
        if count == 0.0 {
            return Ok(());
        }
        let centroid: Vec<f64> = sums.iter().map(|s| s / count).collect();
        ctx.emit(key, &encode_point(&centroid));
        Ok(())
    }
}

/// Result of an iterative k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    pub centroids: Vec<Vec<f64>>,
    pub iterations: usize,
    pub converged: bool,
}

/// Drive k-means to convergence: one MapReduce job per iteration, reading
/// the new centroids back from HDFS between jobs.
#[allow(clippy::too_many_arguments)] // a driver invocation, not an API surface
pub fn drive(
    jobs: &JobClient,
    dfs: &DfsClient,
    input: Vec<String>,
    work_dir: &str,
    k: usize,
    dim: usize,
    max_iterations: usize,
    epsilon: f64,
    seed: u64,
) -> io::Result<KMeansResult> {
    let err = |e: rpcoib::RpcError| io::Error::other(e.to_string());
    dfs.mkdirs(work_dir).map_err(err)?;

    // Seed centroids: random points in the unit cube.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iterations && !converged {
        // Publish current centroids for the mappers.
        let centroid_path = format!("{work_dir}/centroids-{iterations:03}");
        let mut buf = Vec::new();
        for (i, c) in centroids.iter().enumerate() {
            write_record(&mut buf, &(i as u32).to_be_bytes(), &encode_point(c));
        }
        dfs.write_file(&centroid_path, &buf).map_err(err)?;

        let output = format!("{work_dir}/iter-{iterations:03}");
        let conf = JobConf {
            name: format!("kmeans-{iterations}"),
            kind: JobKind::KMeans,
            input: input.clone(),
            output: output.clone(),
            n_reduces: (k as u32).min(4),
            n_maps: 0,
            params: vec![
                (K.into(), k.to_string()),
                (DIM.into(), dim.to_string()),
                (CENTROIDS.into(), centroid_path),
            ],
        };
        jobs.run(&conf, Duration::from_secs(300)).map_err(err)?;

        // Collect the new centroids (clusters that lost every point keep
        // their previous position).
        let mut next = centroids.clone();
        for part in dfs.list(&output).map_err(err)? {
            let data = dfs.read_file(&part.path).map_err(err)?;
            let mut reader = RecordReader::new(&data);
            while let Some((key, value)) = reader.next()? {
                let idx = u32::from_be_bytes(key.try_into().expect("u32 key")) as usize;
                next[idx] = decode_point(value);
            }
        }

        let movement: f64 = centroids
            .iter()
            .zip(&next)
            .map(|(a, b)| squared_distance(a, b).sqrt())
            .fold(0.0f64, f64::max);
        centroids = next;
        iterations += 1;
        converged = movement < epsilon;
    }
    Ok(KMeansResult {
        centroids,
        iterations,
        converged,
    })
}

/// Generate clustered input: `points_per_file` points per file, drawn
/// around `k` well-separated true centers in `dim` dimensions.
pub fn generate_input(
    dfs: &DfsClient,
    dir: &str,
    n_files: usize,
    points_per_file: usize,
    k: usize,
    dim: usize,
    seed: u64,
) -> rpcoib::RpcResult<(Vec<String>, Vec<Vec<f64>>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    // True centers spread on the unit cube diagonal-ish, well separated.
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|i| {
            (0..dim)
                .map(|d| (i + 1) as f64 / (k + 1) as f64 + 0.01 * d as f64)
                .collect()
        })
        .collect();
    dfs.mkdirs(dir)?;
    let mut files = Vec::new();
    let mut point_id = 0u32;
    for f in 0..n_files {
        let mut buf = Vec::new();
        for _ in 0..points_per_file {
            let center = &centers[rng.gen_range(0..k)];
            let point: Vec<f64> = center
                .iter()
                .map(|c| c + rng.gen_range(-0.02..0.02))
                .collect();
            write_record(&mut buf, &point_id.to_be_bytes(), &encode_point(&point));
            point_id += 1;
        }
        let path = format!("{dir}/points-{f:04}");
        dfs.write_file(&path, &buf)?;
        files.push(path);
    }
    Ok((files, centers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_codec_roundtrips() {
        let p = vec![1.5, -2.25, 0.0, 1e9];
        assert_eq!(decode_point(&encode_point(&p)), p);
    }

    #[test]
    fn partial_codec_and_fold() {
        let a = encode_partial(2.0, &[1.0, 2.0]);
        let b = encode_partial(3.0, &[10.0, 20.0]);
        let (count, sums) = KMeans::fold(&[a, b]);
        assert_eq!(count, 5.0);
        assert_eq!(sums, vec![11.0, 22.0]);
    }

    #[test]
    fn distance_is_euclidean_squared() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
