//! CloudBurst-style short-read mapping (Figure 6(b)).
//!
//! CloudBurst (Schatz, 2009) maps reads to a reference with MapReduce in
//! two chained jobs. This is a faithful-in-structure, simplified-in-
//! genomics reimplementation:
//!
//! * **Alignment** (the big job — 240 maps / 48 reduces in the paper's
//!   run): the map phase emits k-mer seeds from both the reference and
//!   the reads; the reduce phase joins seeds, then *extends* each
//!   candidate by comparing the full read against the reference
//!   (mismatch-counting, ≤ `cloudburst.max.mismatches`), emitting
//!   `(read_id, (position, mismatches))` alignments.
//! * **Filtering** (the small job — 24/24): picks the best alignment per
//!   read.
//!
//! Input records: key `[b'R'][u32 chunk_id]` with value
//! `[u32 offset][bases…]` for reference chunks, or key `[b'Q'][u32
//! read_id]` with value `[bases…]` for reads. [`generate_input`] writes a
//! synthetic genome, sampled reads (with injected mutations), and the
//! plain reference file the reducers load for extension.

use std::io;

use mini_hdfs::DfsClient;
use rand::{rngs::StdRng, Rng, SeedableRng};

use super::{JobLogic, MapContext, ReduceContext};
use crate::record::write_record;

/// Parameter: seed (k-mer) length. Default 12.
pub const KMER: &str = "cloudburst.kmer";
/// Parameter: maximum mismatches for a valid alignment. Default 2.
pub const MAX_MISMATCHES: &str = "cloudburst.max.mismatches";
/// Parameter: HDFS path of the plain reference bases.
pub const REF_PATH: &str = "cloudburst.ref.path";

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// The Alignment job.
pub struct Align;

impl JobLogic for Align {
    fn map(&self, ctx: &mut MapContext, key: &[u8], value: &[u8]) -> io::Result<()> {
        let k = ctx.conf.param_u64(KMER, 12) as usize;
        match key.first() {
            Some(b'R') => {
                // Reference chunk: emit every k-mer with its global position.
                let offset = read_u32(&value[..4])?;
                let bases = &value[4..];
                for (i, window) in bases.windows(k).enumerate() {
                    let mut v = Vec::with_capacity(5);
                    v.push(0u8); // tag: reference
                    v.extend_from_slice(&(offset + i as u32).to_be_bytes());
                    ctx.emit(window, &v);
                }
            }
            Some(b'Q') => {
                // Read: emit its leading k-mer seed, carrying id + bases.
                let read_id = read_u32(&key[1..5])?;
                if value.len() >= k {
                    let mut v = Vec::with_capacity(5 + value.len());
                    v.push(1u8); // tag: read
                    v.extend_from_slice(&read_id.to_be_bytes());
                    v.extend_from_slice(value);
                    ctx.emit(&value[..k], &v);
                }
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad cloudburst key",
                ))
            }
        }
        Ok(())
    }

    fn reduce_setup(&self, ctx: &mut ReduceContext) -> io::Result<()> {
        let path = ctx
            .conf
            .param(REF_PATH)
            .ok_or_else(|| io::Error::other("missing cloudburst.ref.path"))?
            .to_owned();
        ctx.scratch = ctx
            .dfs
            .read_file(&path)
            .map_err(|e| io::Error::other(format!("loading reference: {e}")))?;
        Ok(())
    }

    fn reduce(&self, ctx: &mut ReduceContext, _seed: &[u8], values: &[Vec<u8>]) -> io::Result<()> {
        let max_mm = ctx.conf.param_u64(MAX_MISMATCHES, 2) as u32;
        let mut ref_positions = Vec::new();
        let mut reads: Vec<(u32, &[u8])> = Vec::new();
        for v in values {
            match v.first() {
                Some(0) => ref_positions.push(read_u32(&v[1..5])?),
                Some(1) => reads.push((read_u32(&v[1..5])?, &v[5..])),
                _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad seed value")),
            }
        }
        if ref_positions.is_empty() || reads.is_empty() {
            return Ok(());
        }
        let reference = std::mem::take(&mut ctx.scratch);
        for &pos in &ref_positions {
            for &(read_id, bases) in &reads {
                // Extension: the seed matched at `pos`; compare the whole
                // read against reference[pos..pos+len].
                let end = pos as usize + bases.len();
                if end > reference.len() {
                    continue;
                }
                let window = &reference[pos as usize..end];
                let mismatches = window.iter().zip(bases).filter(|(a, b)| a != b).count() as u32;
                if mismatches <= max_mm {
                    let mut key = [0u8; 4];
                    key.copy_from_slice(&read_id.to_be_bytes());
                    let mut value = Vec::with_capacity(8);
                    value.extend_from_slice(&pos.to_be_bytes());
                    value.extend_from_slice(&mismatches.to_be_bytes());
                    ctx.emit(&key, &value);
                }
            }
        }
        ctx.scratch = reference;
        Ok(())
    }
}

/// The Filtering job: best alignment per read.
pub struct Filter;

impl JobLogic for Filter {
    fn map(&self, ctx: &mut MapContext, key: &[u8], value: &[u8]) -> io::Result<()> {
        // Alignment output is already keyed by read id.
        ctx.emit(key, value);
        Ok(())
    }

    fn reduce(&self, ctx: &mut ReduceContext, key: &[u8], values: &[Vec<u8>]) -> io::Result<()> {
        let best = values
            .iter()
            .min_by_key(|v| v.get(4..8).map(|mm| read_u32(mm).unwrap_or(u32::MAX)))
            .ok_or_else(|| io::Error::other("empty group"))?;
        ctx.emit(key, best);
        Ok(())
    }
}

fn read_u32(bytes: &[u8]) -> io::Result<u32> {
    bytes
        .get(..4)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_be_bytes)
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "short u32"))
}

/// Synthetic CloudBurst input: a random genome, reference seed files, and
/// read files sampled from the genome with up to `max_mm` injected
/// mutations per read. Returns (reference-record files, read files).
#[allow(clippy::too_many_arguments)]
pub fn generate_input(
    dfs: &DfsClient,
    dir: &str,
    genome_len: usize,
    ref_chunk: usize,
    n_read_files: usize,
    reads_per_file: usize,
    read_len: usize,
    seed: u64,
) -> rpcoib::RpcResult<(Vec<String>, Vec<String>, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let genome: Vec<u8> = (0..genome_len)
        .map(|_| BASES[rng.gen_range(0..4usize)])
        .collect();
    dfs.mkdirs(dir)?;

    // Plain reference (loaded by reducers for extension).
    let ref_path = format!("{dir}/reference.bases");
    dfs.write_file(&ref_path, &genome)?;

    // Reference seed records, chunked.
    let mut ref_files = Vec::new();
    for (chunk_id, chunk_start) in (0..genome_len).step_by(ref_chunk).enumerate() {
        let end = (chunk_start + ref_chunk).min(genome_len);
        let mut buf = Vec::new();
        let mut key = vec![b'R'];
        key.extend_from_slice(&(chunk_id as u32).to_be_bytes());
        let mut value = Vec::with_capacity(4 + end - chunk_start);
        value.extend_from_slice(&(chunk_start as u32).to_be_bytes());
        value.extend_from_slice(&genome[chunk_start..end]);
        write_record(&mut buf, &key, &value);
        let path = format!("{dir}/ref-{chunk_id:04}");
        dfs.write_file(&path, &buf)?;
        ref_files.push(path);
    }

    // Read files.
    let mut read_files = Vec::new();
    let mut read_id = 0u32;
    for f in 0..n_read_files {
        let mut buf = Vec::new();
        for _ in 0..reads_per_file {
            let start = rng.gen_range(0..genome_len.saturating_sub(read_len).max(1));
            let mut bases = genome[start..(start + read_len).min(genome_len)].to_vec();
            // Inject 0..=2 mutations after the seed region.
            for _ in 0..rng.gen_range(0..3usize) {
                if bases.len() > 16 {
                    let p = rng.gen_range(16..bases.len());
                    bases[p] = BASES[rng.gen_range(0..4usize)];
                }
            }
            let mut key = vec![b'Q'];
            key.extend_from_slice(&read_id.to_be_bytes());
            write_record(&mut buf, &key, &bases);
            read_id += 1;
        }
        let path = format!("{dir}/reads-{f:04}");
        dfs.write_file(&path, &buf)?;
        read_files.push(path);
    }
    Ok((ref_files, read_files, ref_path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_parsing() {
        assert_eq!(read_u32(&[0, 0, 1, 2]).unwrap(), 258);
        assert!(read_u32(&[1, 2]).is_err());
    }
}
