//! The TaskTracker: slots, heartbeats, the task umbilical server, runner
//! threads, and the shuffle service.
//!
//! Tasks execute on runner threads in-process (standing in for Hadoop's
//! child JVMs) but speak the real `mapred.TaskUmbilicalProtocol` over the
//! RPC engine — `getTask`, `ping`, `statusUpdate`, `commitPending`,
//! `canCommit`, `getMapCompletionEvents`, `done` — which is precisely the
//! traffic Table I profiles.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use mini_hdfs::dataxfer::DataConnPool;
use mini_hdfs::{DfsClient, HostNet};
use parking_lot::Mutex;
use rpcoib::transport::rdma::RdmaConn;
use rpcoib::transport::socket::SocketConn;
use rpcoib::transport::Conn;
use rpcoib::{Client, RpcConfig, RpcError, RpcResult, RpcService, Server, ServiceRegistry};
use simnet::{Cluster, Host, SimAddr, SimListener};
use wire::{BooleanWritable, DataInput, IntWritable, NullWritable, VLongWritable, Writable};

use crate::config::MrConfig;
use crate::jobs::{logic_for, run_map_task, run_reduce_task};
use crate::shuffle::{self, MapOutputStore};
use crate::types::{
    HeartbeatArgs, HeartbeatResponse, MapCompletionEvent, TaskAssignment, TaskReport, TaskSpec,
    TrackerInfo,
};
use crate::{SHUFFLE_PORT, UMBILICAL_PORT};

const IDLE_SLICE: Duration = Duration::from_millis(100);
const UMBILICAL_PROTOCOL: &str = "mapred.TaskUmbilicalProtocol";
const INTERTRACKER_PROTOCOL: &str = "mapred.InterTrackerProtocol";

struct TtState {
    cfg: MrConfig,
    id: u32,
    jt: SimAddr,
    jt_client: Client,
    umb_client: Client,
    umb_addr: SimAddr,
    dfs: Arc<DfsClient>,
    store: Arc<MapOutputStore>,
    shuffle_pool: DataConnPool,
    assignments: Mutex<HashMap<u64, TaskAssignment>>,
    map_q: (Sender<u64>, Receiver<u64>),
    reduce_q: (Sender<u64>, Receiver<u64>),
    running: Mutex<HashMap<u64, TaskReport>>,
    completed: Mutex<Vec<u64>>,
    failed: Mutex<Vec<u64>>,
    in_flight_maps: AtomicU32,
    in_flight_reduces: AtomicU32,
    stop: AtomicBool,
}

/// The umbilical RPC service hosted for this tracker's tasks.
struct Umbilical {
    state: Arc<TtState>,
}

impl RpcService for Umbilical {
    fn protocol(&self) -> &'static str {
        UMBILICAL_PROTOCOL
    }

    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String> {
        let state = &self.state;
        match method {
            "getTask" => {
                let mut attempt = VLongWritable::default();
                attempt.read_fields(param).map_err(|e| e.to_string())?;
                let assignment = state
                    .assignments
                    .lock()
                    .get(&(attempt.0 as u64))
                    .cloned()
                    .ok_or_else(|| format!("no assignment for attempt {}", attempt.0))?;
                Ok(Box::new(assignment))
            }
            "ping" => {
                let mut attempt = VLongWritable::default();
                attempt.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(BooleanWritable(true)))
            }
            "statusUpdate" => {
                let mut report = TaskReport::default();
                report.read_fields(param).map_err(|e| e.to_string())?;
                state.running.lock().insert(report.attempt, report);
                Ok(Box::new(BooleanWritable(true)))
            }
            "commitPending" => {
                // Carries a full TaskStatus, like Hadoop's commitPending.
                let mut report = TaskReport::default();
                report.read_fields(param).map_err(|e| e.to_string())?;
                Ok(Box::new(NullWritable))
            }
            "canCommit" => {
                let mut attempt = VLongWritable::default();
                attempt.read_fields(param).map_err(|e| e.to_string())?;
                // Proxy to the JobTracker, which arbitrates commits.
                let granted: BooleanWritable = state
                    .jt_client
                    .call(state.jt, INTERTRACKER_PROTOCOL, "canCommit", &attempt)
                    .map_err(|e| e.to_string())?;
                Ok(Box::new(granted))
            }
            "getMapCompletionEvents" => {
                let mut job = IntWritable::default();
                let mut from = IntWritable::default();
                job.read_fields(param).map_err(|e| e.to_string())?;
                from.read_fields(param).map_err(|e| e.to_string())?;
                let events: Vec<MapCompletionEvent> = state
                    .jt_client
                    .call(
                        state.jt,
                        INTERTRACKER_PROTOCOL,
                        "getMapCompletionEvents",
                        &(job, from),
                    )
                    .map_err(|e| e.to_string())?;
                Ok(Box::new(events))
            }
            "done" => {
                let mut attempt = VLongWritable::default();
                attempt.read_fields(param).map_err(|e| e.to_string())?;
                state.assignments.lock().remove(&(attempt.0 as u64));
                Ok(Box::new(NullWritable))
            }
            other => Err(format!("TaskUmbilicalProtocol has no method {other}")),
        }
    }
}

/// A running TaskTracker.
pub struct TaskTracker {
    state: Arc<TtState>,
    umbilical_server: Server,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TaskTracker {
    /// Register with the JobTracker at `jt` and start slots + services on
    /// `host`.
    pub fn start(
        cluster: &Cluster,
        host: Host,
        jt: SimAddr,
        nn: SimAddr,
        cfg: MrConfig,
    ) -> RpcResult<TaskTracker> {
        // RPC rail (JT, umbilical) per cfg.rpc. The shuffle follows the
        // same rail: on RPCoIB configurations map outputs ride the verbs
        // bulk data plane (64 KiB chunks go one-sided through the slot
        // ring), otherwise they stay on the Ethernet sockets.
        let (rpc_fabric, rpc_node) = if cfg.rpc.ib_enabled {
            (cluster.ib().clone(), cluster.ib_node(host))
        } else {
            (cluster.eth().clone(), cluster.eth_node(host))
        };
        let shuffle_node = rpc_node;

        let jt_client = Client::new(&rpc_fabric, rpc_node, cfg.rpc.clone())?;
        let me = TrackerInfo {
            tt_id: 0,
            shuffle_node: shuffle_node.0,
            shuffle_port: SHUFFLE_PORT,
        };
        let id: IntWritable = jt_client.call(jt, INTERTRACKER_PROTOCOL, "registerTracker", &me)?;
        let id = id.0 as u32;

        let hdfs_net = HostNet::of(cluster, host, &cfg.hdfs);
        let dfs = Arc::new(DfsClient::new(&hdfs_net, nn, cfg.hdfs.clone())?);

        let umb_addr = SimAddr::new(rpc_node, UMBILICAL_PORT);
        let umb_client = Client::new(&rpc_fabric, rpc_node, cfg.rpc.clone())?;
        let shuffle_cfg = if cfg.rpc.ib_enabled {
            cfg.rpc.clone()
        } else {
            RpcConfig::socket()
        };
        let shuffle_pool = DataConnPool::new(&rpc_fabric, shuffle_node, shuffle_cfg)?;
        let shuffle_listener =
            SimListener::bind(&rpc_fabric, SimAddr::new(shuffle_node, SHUFFLE_PORT))?;

        let state = Arc::new(TtState {
            cfg: cfg.clone(),
            id,
            jt,
            jt_client,
            umb_client,
            umb_addr,
            dfs,
            store: Arc::new(MapOutputStore::new()),
            shuffle_pool,
            assignments: Mutex::new(HashMap::new()),
            map_q: unbounded(),
            reduce_q: unbounded(),
            running: Mutex::new(HashMap::new()),
            completed: Mutex::new(Vec::new()),
            failed: Mutex::new(Vec::new()),
            in_flight_maps: AtomicU32::new(0),
            in_flight_reduces: AtomicU32::new(0),
            stop: AtomicBool::new(false),
        });

        // Umbilical RPC server (a couple of handlers is plenty: its only
        // clients are this node's tasks).
        let umb_cfg = RpcConfig {
            handlers: 2,
            ..cfg.rpc.clone()
        };
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(Umbilical {
            state: Arc::clone(&state),
        }));
        let umbilical_server =
            Server::start(&rpc_fabric, rpc_node, UMBILICAL_PORT, umb_cfg, registry)?;

        let mut threads = Vec::new();
        {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tt{id}-heartbeat"))
                    .spawn(move || heartbeat_loop(state))
                    .expect("spawn heartbeat"),
            );
        }
        for slot in 0..cfg.map_slots {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tt{id}-map-{slot}"))
                    .spawn(move || runner_loop(state, true))
                    .expect("spawn map runner"),
            );
        }
        for slot in 0..cfg.reduce_slots {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tt{id}-reduce-{slot}"))
                    .spawn(move || runner_loop(state, false))
                    .expect("spawn reduce runner"),
            );
        }
        {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tt{id}-shuffle"))
                    .spawn(move || shuffle_acceptor(state, shuffle_listener))
                    .expect("spawn shuffle"),
            );
        }

        Ok(TaskTracker {
            state,
            umbilical_server,
            threads: Mutex::new(threads),
        })
    }

    /// The tracker's JobTracker-assigned id.
    pub fn id(&self) -> u32 {
        self.state.id
    }

    /// The umbilical RPC client (its metrics are the Table I input).
    pub fn umbilical_metrics(&self) -> &rpcoib::MetricsRegistry {
        self.state.umb_client.metrics()
    }

    /// The JobTracker-facing client (heartbeat metrics feed Figure 3).
    pub fn jt_metrics(&self) -> &rpcoib::MetricsRegistry {
        self.state.jt_client.metrics()
    }

    /// The HDFS client shared by this tracker's tasks.
    pub fn dfs(&self) -> &Arc<DfsClient> {
        &self.state.dfs
    }

    /// Stop all threads. Idempotent.
    pub fn stop(&self) {
        if self.state.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.umbilical_server.stop();
        self.state.jt_client.shutdown();
        self.state.umb_client.shutdown();
        self.state.dfs.shutdown();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TaskTracker {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for TaskTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskTracker")
            .field("id", &self.state.id)
            .finish()
    }
}

fn heartbeat_loop(state: Arc<TtState>) {
    while !state.stop.load(Ordering::Acquire) {
        std::thread::sleep(state.cfg.heartbeat);
        let completed: Vec<u64> = state.completed.lock().clone();
        let failed: Vec<u64> = state.failed.lock().clone();
        let running: Vec<TaskReport> = state.running.lock().values().cloned().collect();
        let args = HeartbeatArgs {
            tt_id: state.id,
            free_map_slots: (state.cfg.map_slots as u32)
                .saturating_sub(state.in_flight_maps.load(Ordering::Acquire)),
            free_reduce_slots: (state.cfg.reduce_slots as u32)
                .saturating_sub(state.in_flight_reduces.load(Ordering::Acquire)),
            completed: completed.clone(),
            failed: failed.clone(),
            running,
        };
        let response: HeartbeatResponse =
            match state
                .jt_client
                .call(state.jt, INTERTRACKER_PROTOCOL, "heartbeat", &args)
            {
                Ok(r) => r,
                Err(_) => continue, // keep the deltas; retry next beat
            };
        // The JobTracker has acknowledged these deltas.
        state.completed.lock().retain(|a| !completed.contains(a));
        state.failed.lock().retain(|a| !failed.contains(a));
        {
            let mut running = state.running.lock();
            for a in completed.iter().chain(failed.iter()) {
                running.remove(a);
            }
        }

        for action in response.actions {
            let attempt = action.attempt;
            let is_map = matches!(action.spec, TaskSpec::Map { .. });
            state.assignments.lock().insert(attempt, action);
            if is_map {
                state.in_flight_maps.fetch_add(1, Ordering::AcqRel);
                let _ = state.map_q.0.send(attempt);
            } else {
                state.in_flight_reduces.fetch_add(1, Ordering::AcqRel);
                let _ = state.reduce_q.0.send(attempt);
            }
        }
    }
}

fn runner_loop(state: Arc<TtState>, is_map: bool) {
    let rx = if is_map {
        state.map_q.1.clone()
    } else {
        state.reduce_q.1.clone()
    };
    loop {
        match rx.recv_timeout(IDLE_SLICE) {
            Ok(attempt) => {
                let result = if is_map {
                    run_map_attempt(&state, attempt)
                } else {
                    run_reduce_attempt(&state, attempt)
                };
                if is_map {
                    state.in_flight_maps.fetch_sub(1, Ordering::AcqRel);
                } else {
                    state.in_flight_reduces.fetch_sub(1, Ordering::AcqRel);
                }
                // The final report stays in `running` until a heartbeat
                // has carried the completion to the JobTracker (Hadoop
                // reports every not-yet-acknowledged task's status).
                match result {
                    Ok(()) => state.completed.lock().push(attempt),
                    Err(_) => {
                        state.assignments.lock().remove(&attempt);
                        state.running.lock().remove(&attempt);
                        state.failed.lock().push(attempt);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if state.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Build a Hadoop-`TaskStatus`-shaped report with the standard counters.
fn task_report(attempt: u64, phase: &str, state: &str, records: u64) -> TaskReport {
    let counters: Vec<(String, i64)> = match phase {
        "MAP" => vec![
            ("MAP_INPUT_RECORDS".into(), records as i64),
            ("MAP_OUTPUT_RECORDS".into(), records as i64),
            ("MAP_OUTPUT_BYTES".into(), (records * 110) as i64),
            ("SPILLED_RECORDS".into(), records as i64),
            ("HDFS_BYTES_READ".into(), (records * 110) as i64),
            ("FILE_BYTES_WRITTEN".into(), (records * 112) as i64),
            ("COMBINE_INPUT_RECORDS".into(), 0),
            ("CPU_MILLISECONDS".into(), (records / 50) as i64),
        ],
        _ => vec![
            ("REDUCE_INPUT_GROUPS".into(), records as i64),
            ("REDUCE_INPUT_RECORDS".into(), (records * 2) as i64),
            ("REDUCE_OUTPUT_RECORDS".into(), records as i64),
            ("REDUCE_SHUFFLE_BYTES".into(), (records * 110) as i64),
            ("SPILLED_RECORDS".into(), records as i64),
            ("HDFS_BYTES_WRITTEN".into(), (records * 110) as i64),
            ("FILE_BYTES_READ".into(), (records * 112) as i64),
            ("CPU_MILLISECONDS".into(), (records / 50) as i64),
        ],
    };
    TaskReport {
        attempt,
        progress: ((records % 100) as f32) / 100.0,
        state: state.into(),
        phase: phase.into(),
        counters,
    }
}

/// Umbilical call helpers (every task conversation goes over RPC).
fn umb_call<Req: Writable, Resp: Writable + Default>(
    state: &TtState,
    method: &str,
    req: &Req,
) -> RpcResult<Resp> {
    state
        .umb_client
        .call(state.umb_addr, UMBILICAL_PROTOCOL, method, req)
}

fn run_map_attempt(state: &Arc<TtState>, attempt: u64) -> RpcResult<()> {
    let assignment: TaskAssignment = umb_call(state, "getTask", &VLongWritable(attempt as i64))?;
    let (map_idx, split) = match &assignment.spec {
        TaskSpec::Map { map_idx, split } => (*map_idx, split.clone()),
        _ => return Err(RpcError::Protocol("map runner got non-map task".into())),
    };
    let conf = assignment.conf;
    let logic = logic_for(conf.kind);

    let status_every = state.cfg.status_every_records as u64;
    let status_interval = state.cfg.status_interval;
    let state_cb = Arc::clone(state);
    let mut last_status = Instant::now();
    let progress_cb = move |records: u64| {
        if records.is_multiple_of(status_every.max(1)) || last_status.elapsed() >= status_interval {
            last_status = Instant::now();
            let _ = umb_call::<TaskReport, BooleanWritable>(
                &state_cb,
                "statusUpdate",
                &task_report(attempt, "MAP", "RUNNING", records),
            );
        }
    };

    let partitions = run_map_task(
        logic.as_ref(),
        &conf,
        map_idx,
        &split,
        &state.dfs,
        progress_cb,
    )
    .map_err(|e| RpcError::Remote(e.to_string()))?;

    if conf.n_reduces == 0 {
        // Map-only job: the map writes its output file directly (creating
        // the output directory, as Hadoop's OutputCommitter setup does —
        // this is the `mkdirs` traffic visible in Table I).
        state.dfs.mkdirs(&conf.output)?;
        let path = format!("{}/part-m-{map_idx:05}", conf.output);
        let data = partitions.into_iter().next().unwrap_or_default();
        state.dfs.write_file(&path, &data)?;
    } else {
        for (r, run) in partitions.into_iter().enumerate() {
            state.store.insert(assignment.job, map_idx, r as u32, run);
        }
    }
    // Final status, then done — as a finishing Hadoop task reports.
    let _: BooleanWritable = umb_call(
        state,
        "statusUpdate",
        &task_report(attempt, "MAP", "SUCCEEDED", 100),
    )?;
    let _: NullWritable = umb_call(state, "done", &VLongWritable(attempt as i64))?;
    Ok(())
}

fn run_reduce_attempt(state: &Arc<TtState>, attempt: u64) -> RpcResult<()> {
    let assignment: TaskAssignment = umb_call(state, "getTask", &VLongWritable(attempt as i64))?;
    let (reduce_idx, n_maps) = match assignment.spec {
        TaskSpec::Reduce { reduce_idx, n_maps } => (reduce_idx, n_maps),
        _ => {
            return Err(RpcError::Protocol(
                "reduce runner got non-reduce task".into(),
            ))
        }
    };
    let conf = assignment.conf;
    let job = assignment.job;
    let logic = logic_for(conf.kind);

    // Collect map-completion events until every map output is located.
    let mut events: HashMap<u32, MapCompletionEvent> = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    while events.len() < n_maps as usize {
        if state.stop.load(Ordering::Acquire) {
            return Err(RpcError::ConnectionClosed);
        }
        if Instant::now() > deadline {
            return Err(RpcError::Timeout);
        }
        let fresh: Vec<MapCompletionEvent> = umb_call(
            state,
            "getMapCompletionEvents",
            &(IntWritable(job as i32), IntWritable(0)),
        )?;
        for e in fresh {
            events.insert(e.map_idx, e);
        }
        if events.len() < n_maps as usize {
            let _: BooleanWritable = umb_call(state, "ping", &VLongWritable(attempt as i64))?;
            std::thread::sleep(state.cfg.status_interval);
        }
    }

    // Shuffle: fetch this reduce's partition of every map output.
    let mut runs = Vec::with_capacity(n_maps as usize);
    for map_idx in 0..n_maps {
        let mut fetched = None;
        for _ in 0..100 {
            let event = events[&map_idx];
            match shuffle::fetch(
                &state.shuffle_pool,
                event.shuffle_addr(),
                job,
                map_idx,
                reduce_idx,
            ) {
                Ok(Some(data)) => {
                    fetched = Some(data);
                    break;
                }
                Ok(None) | Err(_) => {
                    // The map may have been re-run elsewhere: refresh events.
                    let fresh: Vec<MapCompletionEvent> = umb_call(
                        state,
                        "getMapCompletionEvents",
                        &(IntWritable(job as i32), IntWritable(0)),
                    )?;
                    for e in fresh {
                        events.insert(e.map_idx, e);
                    }
                    std::thread::sleep(state.cfg.status_interval);
                }
            }
        }
        let data = fetched.ok_or_else(|| {
            RpcError::Protocol(format!(
                "could not fetch map {map_idx} partition {reduce_idx}"
            ))
        })?;
        runs.push(data);
        let _: BooleanWritable = umb_call(
            state,
            "statusUpdate",
            &task_report(attempt, "SHUFFLE", "RUNNING", (map_idx + 1) as u64),
        )?;
    }

    // Reduce.
    let status_every = state.cfg.status_every_records as u64;
    let state_cb = Arc::clone(state);
    let progress_cb = move |groups: u64| {
        if groups.is_multiple_of(status_every.max(1)) {
            let _ = umb_call::<TaskReport, BooleanWritable>(
                &state_cb,
                "statusUpdate",
                &task_report(attempt, "REDUCE", "RUNNING", groups),
            );
        }
    };
    let output = run_reduce_task(
        logic.as_ref(),
        &conf,
        reduce_idx,
        runs,
        &state.dfs,
        progress_cb,
    )
    .map_err(|e| RpcError::Remote(e.to_string()))?;

    // Commit dance: commitPending (with a full status, as Hadoop sends),
    // then canCommit arbitration at the JT.
    let _: NullWritable = umb_call(
        state,
        "commitPending",
        &task_report(attempt, "REDUCE", "COMMIT_PENDING", reduce_idx as u64),
    )?;
    let granted: BooleanWritable = umb_call(state, "canCommit", &VLongWritable(attempt as i64))?;
    if granted.0 {
        state.dfs.mkdirs(&conf.output)?;
        let path = format!("{}/part-r-{reduce_idx:05}", conf.output);
        state.dfs.write_file(&path, &output)?;
    }
    let _: BooleanWritable = umb_call(
        state,
        "statusUpdate",
        &task_report(attempt, "REDUCE", "SUCCEEDED", 100),
    )?;
    let _: NullWritable = umb_call(state, "done", &VLongWritable(attempt as i64))?;
    Ok(())
}

fn shuffle_acceptor(state: Arc<TtState>, listener: SimListener) {
    let mut handlers = Vec::new();
    while !state.stop.load(Ordering::Acquire) {
        match listener.try_accept() {
            Ok(Some((stream, _))) => {
                let state2 = Arc::clone(&state);
                handlers.push(
                    std::thread::Builder::new()
                        .name(format!("tt{}-shuffle-conn", state.id))
                        .spawn(move || {
                            // Same transport the fetch side's pool picked:
                            // a verbs bootstrap when the shuffle rides IB,
                            // a framed socket otherwise.
                            let conn: Arc<dyn Conn> = match state2.shuffle_pool.ib_context() {
                                Some(ctx) => {
                                    match RdmaConn::bootstrap(&stream, ctx, &state2.cfg.rpc) {
                                        Ok(conn) => Arc::new(conn),
                                        // A peer that vanished mid-hello;
                                        // nothing to serve.
                                        Err(_) => return,
                                    }
                                }
                                None => Arc::new(SocketConn::new(stream, 4096)),
                            };
                            shuffle::serve_connection(&conn, &state2.store, || {
                                state2.stop.load(Ordering::Acquire)
                            });
                        })
                        .expect("spawn shuffle conn"),
                );
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(1)),
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}
