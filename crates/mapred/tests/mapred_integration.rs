//! End-to-end MapReduce tests: RandomWriter → Sort chains, WordCount,
//! Grep, CloudBurst, failure recovery — under both RPC transports.

use std::time::Duration;

use mini_mapred::jobs::{cloudburst, grep, randomwriter};
use mini_mapred::record::read_all;
use mini_mapred::{JobConf, JobKind, MiniMr, MrConfig};
use simnet::model;

const JOB_TIMEOUT: Duration = Duration::from_secs(120);

fn shrink(mut cfg: MrConfig) -> MrConfig {
    // Small blocks + fast heartbeats keep test jobs quick.
    cfg.hdfs.block_size = 256 * 1024;
    cfg.heartbeat = Duration::from_millis(80);
    cfg.status_interval = Duration::from_millis(80);
    cfg
}

fn randomwriter_conf(out: &str, maps: u32, bytes_per_map: u64) -> JobConf {
    JobConf {
        name: "randomwriter".into(),
        kind: JobKind::RandomWriter,
        input: Vec::new(),
        output: out.into(),
        n_reduces: 0,
        n_maps: maps,
        params: vec![
            (
                randomwriter::BYTES_PER_MAP.into(),
                bytes_per_map.to_string(),
            ),
            (randomwriter::SEED.into(), "11".into()),
        ],
    }
}

fn run_randomwriter_sort(cfg: MrConfig) {
    let mr = MiniMr::start(model::IPOIB_QDR, 3, shrink(cfg)).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    // Phase 1: RandomWriter (map-only).
    let status = jobs
        .run(&randomwriter_conf("/rw", 4, 64 * 1024), JOB_TIMEOUT)
        .unwrap();
    assert_eq!(status.maps_done, 4);
    let parts = dfs.list("/rw").unwrap();
    assert_eq!(parts.len(), 4);
    let input: Vec<String> = parts.iter().map(|s| s.path.clone()).collect();

    // Phase 2: Sort.
    let sort = JobConf {
        name: "sort".into(),
        kind: JobKind::Sort,
        input,
        output: "/sorted".into(),
        n_reduces: 3,
        n_maps: 0,
        params: Vec::new(),
    };
    let status = jobs.run(&sort, JOB_TIMEOUT).unwrap();
    assert_eq!(status.reduces_done, 3);

    // Validate: concatenated reduce outputs are a globally sorted
    // permutation of the RandomWriter output.
    let mut input_records = Vec::new();
    for part in dfs.list("/rw").unwrap() {
        input_records.extend(read_all(&dfs.read_file(&part.path).unwrap()).unwrap());
    }
    let mut output_records = Vec::new();
    for part in dfs.list("/sorted").unwrap() {
        let records = read_all(&dfs.read_file(&part.path).unwrap()).unwrap();
        // Each part is internally sorted.
        assert!(
            records.windows(2).all(|w| w[0].0 <= w[1].0),
            "{} unsorted",
            part.path
        );
        output_records.extend(records);
    }
    // Range partitioning on the first byte makes the concatenation
    // globally sorted.
    assert!(
        output_records.windows(2).all(|w| w[0].0 <= w[1].0),
        "global order violated"
    );
    assert_eq!(output_records.len(), input_records.len());
    let mut a = input_records.clone();
    let mut b = output_records.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "sort output must be a permutation of its input");

    mr.stop();
}

#[test]
fn randomwriter_then_sort_over_sockets() {
    run_randomwriter_sort(MrConfig::socket());
}

#[test]
fn randomwriter_then_sort_over_rpcoib() {
    run_randomwriter_sort(MrConfig::rpc_ib());
}

#[test]
fn wordcount_counts_words() {
    let mr = MiniMr::start(model::IPOIB_QDR, 2, shrink(MrConfig::socket())).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    let mut file_a = Vec::new();
    mini_mapred::record::write_record(&mut file_a, b"0", b"the quick brown fox");
    mini_mapred::record::write_record(&mut file_a, b"1", b"the lazy dog");
    let mut file_b = Vec::new();
    mini_mapred::record::write_record(&mut file_b, b"0", b"the dog barks");
    dfs.mkdirs("/text").unwrap();
    dfs.write_file("/text/a", &file_a).unwrap();
    dfs.write_file("/text/b", &file_b).unwrap();

    let conf = JobConf {
        name: "wordcount".into(),
        kind: JobKind::WordCount,
        input: vec!["/text/a".into(), "/text/b".into()],
        output: "/counts".into(),
        n_reduces: 2,
        n_maps: 0,
        params: Vec::new(),
    };
    jobs.run(&conf, JOB_TIMEOUT).unwrap();

    let mut counts = std::collections::HashMap::new();
    for part in dfs.list("/counts").unwrap() {
        for (k, v) in read_all(&dfs.read_file(&part.path).unwrap()).unwrap() {
            let n = u64::from_be_bytes(v.as_slice().try_into().unwrap());
            counts.insert(String::from_utf8(k).unwrap(), n);
        }
    }
    assert_eq!(counts["the"], 3);
    assert_eq!(counts["dog"], 2);
    assert_eq!(counts["fox"], 1);
    assert_eq!(counts.len(), 7, "the quick brown fox lazy dog barks");
    mr.stop();
}

#[test]
fn grep_filters_records() {
    let mr = MiniMr::start(model::IPOIB_QDR, 2, shrink(MrConfig::socket())).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    let mut file = Vec::new();
    mini_mapred::record::write_record(&mut file, b"r1", b"error: disk on fire");
    mini_mapred::record::write_record(&mut file, b"r2", b"info: all well");
    mini_mapred::record::write_record(&mut file, b"r3", b"error: more fire");
    dfs.write_file("/log", &file).unwrap();

    let conf = JobConf {
        name: "grep".into(),
        kind: JobKind::Grep,
        input: vec!["/log".into()],
        output: "/matches".into(),
        n_reduces: 1,
        n_maps: 0,
        params: vec![(grep::PATTERN.into(), "error".into())],
    };
    jobs.run(&conf, JOB_TIMEOUT).unwrap();

    let mut matched = Vec::new();
    for part in dfs.list("/matches").unwrap() {
        matched.extend(read_all(&dfs.read_file(&part.path).unwrap()).unwrap());
    }
    assert_eq!(matched.len(), 2);
    assert!(matched.iter().all(|(_, v)| v.starts_with(b"error")));
    mr.stop();
}

#[test]
fn cloudburst_alignment_and_filtering() {
    let mr = MiniMr::start(model::IPOIB_QDR, 3, shrink(MrConfig::socket())).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    let (ref_files, read_files, ref_path) =
        cloudburst::generate_input(&dfs, "/cb", 4000, 1000, 3, 30, 36, 99).unwrap();
    let mut input = ref_files;
    let n_reads = 3 * 30;
    input.extend(read_files);

    let align = JobConf {
        name: "cb-align".into(),
        kind: JobKind::CloudburstAlign,
        input,
        output: "/cb-align".into(),
        n_reduces: 4,
        n_maps: 0,
        params: vec![
            (cloudburst::KMER.into(), "12".into()),
            (cloudburst::MAX_MISMATCHES.into(), "2".into()),
            (cloudburst::REF_PATH.into(), ref_path),
        ],
    };
    jobs.run(&align, JOB_TIMEOUT).unwrap();

    let align_parts: Vec<String> = dfs
        .list("/cb-align")
        .unwrap()
        .iter()
        .map(|s| s.path.clone())
        .collect();
    let mut alignments = Vec::new();
    for p in &align_parts {
        alignments.extend(read_all(&dfs.read_file(p).unwrap()).unwrap());
    }
    assert!(
        !alignments.is_empty(),
        "reads sampled from the genome must align"
    );

    let filter = JobConf {
        name: "cb-filter".into(),
        kind: JobKind::CloudburstFilter,
        input: align_parts,
        output: "/cb-best".into(),
        n_reduces: 2,
        n_maps: 0,
        params: Vec::new(),
    };
    jobs.run(&filter, JOB_TIMEOUT).unwrap();

    let mut best = std::collections::HashMap::new();
    for part in dfs.list("/cb-best").unwrap() {
        for (k, v) in read_all(&dfs.read_file(&part.path).unwrap()).unwrap() {
            let read_id = u32::from_be_bytes(k.as_slice().try_into().unwrap());
            let mm = u32::from_be_bytes(v[4..8].try_into().unwrap());
            assert!(mm <= 2);
            assert!(
                best.insert(read_id, mm).is_none(),
                "one best alignment per read"
            );
        }
    }
    // Most reads (sampled with <=2 mutations) should align somewhere.
    assert!(
        best.len() * 2 >= n_reads,
        "{} of {} reads aligned",
        best.len(),
        n_reads
    );
    mr.stop();
}

#[test]
fn job_with_failing_logic_reports_failure() {
    let mr = MiniMr::start(model::IPOIB_QDR, 2, shrink(MrConfig::socket())).unwrap();
    let jobs = mr.job_client().unwrap();
    // Sort over a nonexistent input file: every map attempt fails, and
    // after max attempts the job must be declared Failed (not hang).
    let conf = JobConf {
        name: "doomed".into(),
        kind: JobKind::Sort,
        input: vec!["/does/not/exist".into()],
        output: "/never".into(),
        n_reduces: 1,
        n_maps: 0,
        params: Vec::new(),
    };
    let err = jobs.run(&conf, JOB_TIMEOUT).err().unwrap();
    assert!(
        matches!(err, rpcoib::RpcError::Remote(ref m) if m.contains("failed")),
        "{err}"
    );
    mr.stop();
}

#[test]
fn sort_survives_tasktracker_loss() {
    let mut cfg = shrink(MrConfig::socket());
    cfg.tt_timeout = Duration::from_millis(1200);
    let mr = MiniMr::start(model::IPOIB_QDR, 4, cfg).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    jobs.run(&randomwriter_conf("/rw", 6, 48 * 1024), JOB_TIMEOUT)
        .unwrap();
    let input: Vec<String> = dfs
        .list("/rw")
        .unwrap()
        .iter()
        .map(|s| s.path.clone())
        .collect();

    let sort = JobConf {
        name: "sort-with-failure".into(),
        kind: JobKind::Sort,
        input,
        output: "/sorted".into(),
        n_reduces: 2,
        n_maps: 0,
        params: Vec::new(),
    };
    let job = jobs.submit(&sort).unwrap();
    // Kill one TaskTracker shortly after submission. Note: its host also
    // runs a DataNode, but replication covers the data.
    std::thread::sleep(Duration::from_millis(150));
    mr.tasktrackers()[3].stop();

    let status = jobs.wait(job, JOB_TIMEOUT).unwrap();
    assert_eq!(status.state, mini_mapred::JobState::Succeeded);

    let mut total = 0usize;
    for part in dfs.list("/sorted").unwrap() {
        let records = read_all(&dfs.read_file(&part.path).unwrap()).unwrap();
        assert!(records.windows(2).all(|w| w[0].0 <= w[1].0));
        total += records.len();
    }
    assert!(total > 0);
    mr.stop();
}

#[test]
fn umbilical_traffic_matches_table1_rows() {
    let mr = MiniMr::start(model::IPOIB_QDR, 2, shrink(MrConfig::socket())).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();
    jobs.run(&randomwriter_conf("/rw", 2, 32 * 1024), JOB_TIMEOUT)
        .unwrap();
    let input: Vec<String> = dfs
        .list("/rw")
        .unwrap()
        .iter()
        .map(|s| s.path.clone())
        .collect();
    let sort = JobConf {
        name: "sort".into(),
        kind: JobKind::Sort,
        input,
        output: "/s".into(),
        n_reduces: 1,
        n_maps: 0,
        params: Vec::new(),
    };
    jobs.run(&sort, JOB_TIMEOUT).unwrap();

    let mut methods = std::collections::HashSet::new();
    for tt in mr.tasktrackers() {
        for ((proto, method), _) in tt.umbilical_metrics().snapshot() {
            if proto == "mapred.TaskUmbilicalProtocol" {
                methods.insert(method);
            }
        }
    }
    for expected in [
        "getTask",
        "done",
        "getMapCompletionEvents",
        "commitPending",
        "canCommit",
    ] {
        assert!(
            methods.contains(expected),
            "missing umbilical call {expected}: {methods:?}"
        );
    }
    mr.stop();
}

#[test]
fn wordcount_combiner_shrinks_the_shuffle() {
    // Same input both ways; WordCount's combiner folds map-side counts,
    // so per-map shuffle volume must shrink while results stay identical.
    use mini_mapred::jobs::{logic_for, run_map_task, JobLogic};

    struct NoCombine;
    impl JobLogic for NoCombine {
        fn map(
            &self,
            ctx: &mut mini_mapred::jobs::MapContext,
            key: &[u8],
            value: &[u8],
        ) -> std::io::Result<()> {
            logic_for(JobKind::WordCount).map(ctx, key, value)
        }
        fn reduce(
            &self,
            _ctx: &mut mini_mapred::jobs::ReduceContext,
            _key: &[u8],
            _values: &[Vec<u8>],
        ) -> std::io::Result<()> {
            unreachable!()
        }
    }

    let mr = MiniMr::start(model::IPOIB_QDR, 1, shrink(MrConfig::socket())).unwrap();
    let dfs = mr.dfs_client().unwrap();
    let mut file = Vec::new();
    for _ in 0..200 {
        mini_mapred::record::write_record(&mut file, b"0", b"alpha beta alpha");
    }
    dfs.write_file("/wc-in", &file).unwrap();

    let conf = JobConf {
        name: "wc".into(),
        kind: JobKind::WordCount,
        input: vec!["/wc-in".into()],
        output: "/wc-out".into(),
        n_reduces: 1,
        n_maps: 0,
        params: Vec::new(),
    };
    let combined = run_map_task(
        logic_for(JobKind::WordCount).as_ref(),
        &conf,
        0,
        "/wc-in",
        &dfs,
        |_| {},
    )
    .unwrap();
    let raw = run_map_task(&NoCombine, &conf, 0, "/wc-in", &dfs, |_| {}).unwrap();
    let combined_bytes: usize = combined.iter().map(Vec::len).sum();
    let raw_bytes: usize = raw.iter().map(Vec::len).sum();
    assert!(
        combined_bytes * 10 < raw_bytes,
        "combiner must fold 600 records into 2: {combined_bytes} vs {raw_bytes}"
    );
    // And the records are the correct folded counts.
    let records = mini_mapred::record::read_all(&combined[0]).unwrap();
    assert_eq!(records.len(), 2);
    for (k, v) in records {
        let count = u64::from_be_bytes(v.as_slice().try_into().unwrap());
        match k.as_slice() {
            b"alpha" => assert_eq!(count, 400),
            b"beta" => assert_eq!(count, 200),
            other => panic!("unexpected word {other:?}"),
        }
    }
    mr.stop();
}

#[test]
fn kmeans_converges_to_true_centers() {
    use mini_mapred::jobs::kmeans;

    let mr = MiniMr::start(model::IPOIB_QDR, 3, shrink(MrConfig::socket())).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    let k = 3;
    let dim = 2;
    let (input, true_centers) = kmeans::generate_input(&dfs, "/km", 3, 80, k, dim, 2024).unwrap();

    let result = kmeans::drive(&jobs, &dfs, input, "/km-work", k, dim, 12, 1e-4, 7).unwrap();
    assert!(
        result.converged,
        "did not converge in {} iterations",
        result.iterations
    );
    assert!(
        result.iterations >= 2,
        "iterative job must actually iterate"
    );

    // Every true center must have a found centroid nearby (clusters are
    // separated by ~0.33 with noise 0.02, so 0.1 is a generous match).
    for center in &true_centers {
        let best = result
            .centroids
            .iter()
            .map(|c| {
                c.iter()
                    .zip(center)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.1, "no centroid near {center:?} (closest {best})");
    }
    mr.stop();
}

#[test]
fn terasort_balances_skewed_keys() {
    use mini_mapred::jobs::terasort;

    let mr = MiniMr::start(model::IPOIB_QDR, 3, shrink(MrConfig::socket())).unwrap();
    let jobs = mr.job_client().unwrap();
    let dfs = mr.dfs_client().unwrap();

    // Heavily skewed keys: every key starts with the same byte, which
    // collapses the plain Sort job's first-byte partitioner onto one
    // reduce. TeraSort's sampled boundaries must still spread the load.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4242);
    let mut files = Vec::new();
    for f in 0..3 {
        let mut buf = Vec::new();
        for _ in 0..200 {
            let key = format!("user{:08}", rng.gen_range(0..100_000u32));
            mini_mapred::record::write_record(&mut buf, key.as_bytes(), b"v");
        }
        let path = format!("/ts-in/part-{f}");
        dfs.mkdirs("/ts-in").unwrap();
        dfs.write_file(&path, &buf).unwrap();
        files.push(path);
    }

    let conf = terasort::make_conf(&dfs, files.clone(), "/ts-out", 4, 7).unwrap();
    jobs.run(&conf, JOB_TIMEOUT).unwrap();

    // Validate: global order, permutation, and balanced partitions.
    let mut input_records = Vec::new();
    for f in &files {
        input_records.extend(read_all(&dfs.read_file(f).unwrap()).unwrap());
    }
    let mut all = Vec::new();
    let mut part_sizes = Vec::new();
    for part in dfs.list("/ts-out").unwrap() {
        let records = read_all(&dfs.read_file(&part.path).unwrap()).unwrap();
        assert!(
            records.windows(2).all(|w| w[0].0 <= w[1].0),
            "{} unsorted",
            part.path
        );
        part_sizes.push(records.len());
        all.extend(records);
    }
    assert!(
        all.windows(2).all(|w| w[0].0 <= w[1].0),
        "global order violated"
    );
    assert_eq!(all.len(), input_records.len());
    let mut a = input_records;
    let mut b = all;
    a.sort();
    b.sort();
    assert_eq!(a, b, "terasort output must be a permutation of its input");
    // Balance: with 600 skewed records over 4 sampled partitions, no
    // partition should hold more than half the data (the first-byte
    // partitioner would put 100% in one).
    let max = *part_sizes.iter().max().unwrap();
    assert!(
        part_sizes.len() >= 3 && max <= 300,
        "sampled partitioner failed to balance: {part_sizes:?}"
    );
    mr.stop();
}

#[test]
fn kill_job_stops_a_running_job() {
    let mr = MiniMr::start(model::IPOIB_QDR, 2, shrink(MrConfig::socket())).unwrap();
    let jobs = mr.job_client().unwrap();
    // A job big enough to still be running when the kill lands.
    let job = jobs.submit(&randomwriter_conf("/big", 8, 4 << 20)).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let status = jobs.kill(job).unwrap();
    assert_eq!(status.state, mini_mapred::JobState::Failed);
    // wait() observes the terminal state promptly instead of hanging.
    let terminal = jobs.wait(job, Duration::from_secs(5)).unwrap();
    assert_eq!(terminal.state, mini_mapred::JobState::Failed);
    // Killing an already-dead job is idempotent.
    let again = jobs.kill(job).unwrap();
    assert_eq!(again.state, mini_mapred::JobState::Failed);
    mr.stop();
}
