//! Client-side resilience policy: bounded retries with exponential
//! backoff, jitter, and an overall per-call deadline.
//!
//! Hadoop's RPC client survives transient server trouble by retrying
//! idempotent calls with a backoff schedule (`RetryPolicies` in the real
//! codebase). This module is the engine-level equivalent: a small value
//! type carried in [`crate::RpcConfig`] that the client consults after
//! every failed attempt.
//!
//! Semantics:
//!
//! * `max_attempts` counts **total** attempts, not retries: `1` means
//!   fail on the first error ([`RetryPolicy::none`]).
//! * The backoff before attempt `n+1` is
//!   `base_backoff * multiplier^(n-1)`, capped at `max_backoff`, then
//!   spread by ±`jitter` (a fraction in `[0, 1]`) to avoid retry
//!   convoys when many callers fail together.
//! * `deadline`, when set, bounds the **total** wall-clock time of the
//!   call across every attempt and backoff sleep. The remaining budget
//!   also caps each attempt's receive wait, so a deadline of 1 s can
//!   never wait out a 30 s `call_timeout`.
//!
//! Which errors are worth retrying is the error's own call
//! ([`crate::RpcError::is_retryable`]); the policy only says how often
//! and how patiently.

use std::time::Duration;

/// Retry schedule for one RPC call. Carried by [`crate::RpcConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per call (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Sleep before the second attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Growth factor between consecutive backoffs. Must be ≥ 1.
    pub multiplier: f64,
    /// Fraction in `[0, 1]` by which each sleep is randomly spread:
    /// a computed sleep `s` becomes uniform in `[s·(1−j), s·(1+j)]`.
    pub jitter: f64,
    /// Overall wall-clock budget for the call across all attempts,
    /// backoffs included. `None` = bounded only by
    /// `call_timeout × max_attempts`.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    /// Hadoop's baseline behavior: one transparent immediate retry, so a
    /// cached connection to a restarted server heals without the caller
    /// noticing, but nothing resembling a retry storm.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// Fail fast: a single attempt, no retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Exponential backoff: `max_attempts` tries, sleeping
    /// `base, 2·base, 4·base, …` (±20% jitter, capped at `32·base`)
    /// between them.
    pub fn exponential(max_attempts: u32, base_backoff: Duration) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff,
            max_backoff: base_backoff.saturating_mul(32),
            multiplier: 2.0,
            jitter: 0.2,
            deadline: None,
        }
    }

    /// Same policy with an overall per-call deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Same policy with a different jitter fraction (`0.0..=1.0`).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Internal consistency; folded into [`crate::RpcConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry.max_attempts must be >= 1".into());
        }
        if self.multiplier.is_nan() || self.multiplier < 1.0 {
            return Err(format!(
                "retry.multiplier must be >= 1 (got {})",
                self.multiplier
            ));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(format!(
                "retry.jitter must be in [0, 1] (got {})",
                self.jitter
            ));
        }
        if self.max_backoff < self.base_backoff {
            return Err("retry.max_backoff must be >= retry.base_backoff".into());
        }
        if self.deadline == Some(Duration::ZERO) {
            return Err("retry.deadline must be positive when set".into());
        }
        Ok(())
    }

    /// The sleep after `failed_attempts` attempts have failed (≥ 1).
    /// `entropy` decorrelates concurrent callers' jitter; pass anything
    /// call-unique (the engine uses the call id).
    pub fn backoff(&self, failed_attempts: u32, entropy: u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .multiplier
            .powi(failed_attempts.saturating_sub(1).min(63) as i32);
        let mut nanos =
            (self.base_backoff.as_nanos() as f64 * exp).min(self.max_backoff.as_nanos() as f64);
        if self.jitter > 0.0 {
            // splitmix64 of (entropy, attempt) → uniform in [-1, 1).
            let mut z = entropy
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(failed_attempts as u64);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // [0, 1)
            nanos *= 1.0 + self.jitter * (2.0 * unit - 1.0);
        }
        Duration::from_nanos(nanos.max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_one_immediate_retry() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 2);
        assert_eq!(p.backoff(1, 7), Duration::ZERO);
        p.validate().unwrap();
    }

    #[test]
    fn none_is_single_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        p.validate().unwrap();
    }

    #[test]
    fn exponential_grows_and_caps() {
        let p = RetryPolicy::exponential(5, Duration::from_millis(10)).with_jitter(0.0);
        assert_eq!(p.backoff(1, 0), Duration::from_millis(10));
        assert_eq!(p.backoff(2, 0), Duration::from_millis(20));
        assert_eq!(p.backoff(3, 0), Duration::from_millis(40));
        // Cap: 32 × base = 320 ms regardless of attempt count.
        assert_eq!(p.backoff(30, 0), Duration::from_millis(320));
    }

    #[test]
    fn jitter_spreads_but_stays_bounded() {
        let p = RetryPolicy::exponential(3, Duration::from_millis(100)).with_jitter(0.5);
        let lo = Duration::from_millis(50);
        let hi = Duration::from_millis(150);
        let sleeps: Vec<Duration> = (0..64).map(|e| p.backoff(1, e)).collect();
        for s in &sleeps {
            assert!(*s >= lo && *s <= hi, "jittered sleep out of range: {s:?}");
        }
        // Different entropy must actually decorrelate.
        assert!(sleeps.iter().any(|s| *s != sleeps[0]));
        // Same entropy replays the same sleep.
        assert_eq!(p.backoff(1, 9), p.backoff(1, 9));
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            multiplier: 0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            jitter: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            base_backoff: Duration::from_secs(1),
            max_backoff: Duration::ZERO,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
