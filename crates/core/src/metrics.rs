//! Per-call instrumentation.
//!
//! Table I of the paper reports, per `<protocol, method>`: average memory
//! adjustment count, average serialization time, and average send time.
//! Figure 1 reports the ratio of receive-side buffer-allocation time to
//! total call-receive time. Figure 3 needs the serialized size of every
//! call in sequence. This module collects all of those.
//!
//! On top of the averages, every `<protocol, method>` key also gets a set
//! of [`LatencyHistogram`]s — one per call [`Phase`] (serialize, wire,
//! server queue, handler, deserialize) — so the latency *distribution*
//! (p50/p95/p99/max) is observable, not just the mean.
//!
//! The registry is keyed by interned [`MethodId`]s ([`crate::intern`]):
//! each key's counters live in a [`MethodEntry`] reached through a
//! lock-free id-indexed pointer table, and recording a sample — stats or
//! histogram — is only relaxed atomic adds. Hot-path callers resolve the
//! `Arc<MethodEntry>` handle once ([`MetricsRegistry::entry`]) and record
//! through it with no map lock and no `to_owned()`; the `&str` APIs
//! remain for tests and tools, riding the interner.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::intern::{self, MethodKey};

/// One client-side call observation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallProfile {
    /// Time spent serializing the request (buffer writes + adjustments).
    pub serialize_ns: u64,
    /// Time spent handing the serialized frame to the transport.
    pub send_ns: u64,
    /// Memory adjustments performed while serializing (Algorithm 1 count;
    /// always 0 on the RPCoIB path unless the pool had to grow).
    pub adjustments: u64,
    /// Serialized request size in bytes.
    pub size: usize,
}

/// One receive-side observation (server reading a request, or client
/// reading a response).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecvProfile {
    /// Time spent allocating the receive buffer (Listing 2's
    /// `ByteBuffer.allocate(len)`; ~0 on the pooled RPCoIB path).
    pub alloc_ns: u64,
    /// Total time from frame-length availability to payload in hand.
    pub total_ns: u64,
    /// Received payload size in bytes.
    pub size: usize,
}

/// Aggregated statistics for one `<protocol, method>` key.
#[derive(Debug, Clone, Default)]
pub struct MethodStats {
    pub calls: u64,
    pub serialize_ns: u64,
    pub send_ns: u64,
    pub adjustments: u64,
    pub recvs: u64,
    pub recv_alloc_ns: u64,
    pub recv_total_ns: u64,
    /// Serialized sizes in call order (only kept when tracing is enabled).
    pub sizes: Vec<u32>,
}

impl MethodStats {
    pub fn avg_adjustments(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.adjustments as f64 / self.calls as f64
        }
    }
    pub fn avg_serialize_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.serialize_ns as f64 / self.calls as f64 / 1e3
        }
    }
    pub fn avg_send_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.send_ns as f64 / self.calls as f64 / 1e3
        }
    }
    pub fn avg_recv_alloc_us(&self) -> f64 {
        if self.recvs == 0 {
            0.0
        } else {
            self.recv_alloc_ns as f64 / self.recvs as f64 / 1e3
        }
    }
    pub fn avg_recv_total_us(&self) -> f64 {
        if self.recvs == 0 {
            0.0
        } else {
            self.recv_total_ns as f64 / self.recvs as f64 / 1e3
        }
    }
    /// Figure 1's y-axis: allocation time / total receive time.
    pub fn alloc_ratio(&self) -> f64 {
        if self.recv_total_ns == 0 {
            0.0
        } else {
            self.recv_alloc_ns as f64 / self.recv_total_ns as f64
        }
    }
}

/// A phase of an RPC call's life, as seen by the instrumented engine.
///
/// Client-observed phases: `Serialize` and `Wire` (recorded by the
/// transport as it sends), and `Deserialize` (response parse). Server-
/// observed phases: `ServerQueue` (reader admission → handler pickup) and
/// `Handler` (dispatch + response serialization); the server's transports
/// also record `Serialize`/`Wire` for the responses they send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Writing the request (or response) into the transport's buffer.
    Serialize,
    /// Handing the serialized frame to the wire: staging copies, stack
    /// traversal and egress serialization as modeled by the transport.
    Wire,
    /// Time a request spent parked in the server's bounded call queue.
    ServerQueue,
    /// Service dispatch plus response serialization on the server.
    Handler,
    /// Parsing a received response back into caller-visible fields.
    Deserialize,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 5;

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Serialize,
        Phase::Wire,
        Phase::ServerQueue,
        Phase::Handler,
        Phase::Deserialize,
    ];

    /// Stable snake_case name (used as the JSON key in bench artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Serialize => "serialize",
            Phase::Wire => "wire",
            Phase::ServerQueue => "server_queue",
            Phase::Handler => "handler",
            Phase::Deserialize => "deserialize",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Serialize => 0,
            Phase::Wire => 1,
            Phase::ServerQueue => 2,
            Phase::Handler => 3,
            Phase::Deserialize => 4,
        }
    }
}

/// Number of log2 buckets. Bucket `i` holds samples in `[2^(i-1), 2^i)`
/// nanoseconds (bucket 0 holds zeros); 40 buckets reach ~9 minutes,
/// far beyond any per-call phase this engine can produce.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A lock-free log2-bucketed latency histogram.
///
/// Recording is three relaxed atomic RMWs (bucket, count+sum, max); there
/// is no lock and no allocation, so it is safe to call from reader,
/// handler and responder hot paths.
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            ((64 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Record one sample of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        let idx = Self::bucket_index(ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a [`Duration`] sample.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Consistent-enough copy of the current state (relaxed loads; exact
    /// once recording has quiesced).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    /// Per-bucket sample counts; bucket `i` covers `[2^(i-1), 2^i)` ns.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Value at or below which `q` (0.0–1.0) of samples fall, reported as
    /// the upper bound of the containing log2 bucket (the histogram's
    /// resolution). The top bucket reports the observed max instead, so a
    /// handful of outliers cannot inflate to "9 minutes".
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 {
                    0
                } else if i == self.buckets.len() - 1 {
                    self.max_ns
                } else {
                    (1u64 << i) - 1
                };
            }
        }
        self.max_ns
    }

    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// One [`LatencyHistogram`] per [`Phase`], for one `<protocol, method>`.
pub struct PhaseHistograms {
    phases: [LatencyHistogram; PHASE_COUNT],
}

impl Default for PhaseHistograms {
    fn default() -> Self {
        PhaseHistograms {
            phases: std::array::from_fn(|_| LatencyHistogram::default()),
        }
    }
}

impl PhaseHistograms {
    /// Record `ns` into the given phase's histogram.
    pub fn record(&self, phase: Phase, ns: u64) {
        self.phases[phase.index()].record(ns);
    }

    /// The histogram backing one phase.
    pub fn get(&self, phase: Phase) -> &LatencyHistogram {
        &self.phases[phase.index()]
    }

    /// Snapshot all five phases.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            phases: std::array::from_fn(|i| self.phases[i].snapshot()),
        }
    }

    fn reset(&self) {
        for h in &self.phases {
            h.reset();
        }
    }
}

/// Point-in-time copy of all five phase histograms for one key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    phases: [HistogramSnapshot; PHASE_COUNT],
}

impl PhaseSnapshot {
    pub fn get(&self, phase: Phase) -> &HistogramSnapshot {
        &self.phases[phase.index()]
    }

    /// Iterate `(phase, histogram)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, &HistogramSnapshot)> {
        Phase::ALL.iter().map(|&p| (p, &self.phases[p.index()]))
    }
}

/// Buffer-pool counters surfaced into the unified metrics snapshot: the
/// shadow pool's size-history behaviour (paper §V.C) plus the native
/// registered-buffer pool underneath it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Size-history predictions that fit (no adjustment needed).
    pub history_hits: u64,
    /// History entries that had to grow to a larger class.
    pub grows: u64,
    /// History entries that shrank to a smaller class.
    pub shrinks: u64,
    /// First-touch acquisitions with no history to consult.
    pub cold: u64,
    /// Native pool: acquisitions served from a pooled buffer.
    pub native_hits: u64,
    /// Native pool: acquisitions that registered fresh memory.
    pub native_misses: u64,
    /// Native pool: buffers handed back for reuse.
    pub native_returns: u64,
    /// Native pool: requests larger than the largest pooled class.
    pub oversize: u64,
}

/// Which half of the sharded server pipeline a shard belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShardRole {
    /// An event-loop shard receiving frames from its assigned connections.
    Reader,
    /// A shard transmitting serialized responses for its connections.
    Responder,
    /// An M:N handler-runtime worker (`handler_runtime = mn`): pops the
    /// admission queue, runs lightweight call tasks, steals from
    /// siblings. Absent in `threads` mode.
    Worker,
}

impl ShardRole {
    /// Stable snake_case name (the JSON key in bench artifacts).
    pub fn name(self) -> &'static str {
        match self {
            ShardRole::Reader => "reader",
            ShardRole::Responder => "responder",
            ShardRole::Worker => "worker",
        }
    }
}

/// Live counters for one reader or responder shard. Registered with the
/// [`MetricsRegistry`] at server start; the owning shard thread updates
/// them with relaxed atomics on its hot path.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Connections currently assigned to this shard (reader shards; a
    /// gauge — incremented at registration, decremented at teardown).
    connections: AtomicU64,
    /// Work items currently queued for this shard (responder shards: the
    /// outbound response queue).
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth` over the shard's lifetime.
    queue_depth_max: AtomicU64,
    /// Work items this shard has completed (reader shards: frames read;
    /// responder shards: response transmissions attempted; workers:
    /// tasks completed).
    processed: AtomicU64,
    /// Busy rejections this shard issued (reader shards).
    busy_rejections: AtomicU64,
    /// Work taken from a sibling: reader shards count ready tokens
    /// stolen from a hot sibling's wake list; M:N workers count tasks
    /// stolen from a sibling's run queue.
    steals: AtomicU64,
    /// Tasks this worker parked (suspended awaiting a wake). Reader and
    /// responder shards never park work; always 0 for them.
    parks: AtomicU64,
    /// Parked tasks made runnable again, attributed to the worker that
    /// parked them (timer expiry or an external wake handle).
    wakes: AtomicU64,
}

impl ShardStats {
    pub fn conn_added(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    pub fn conn_removed(&self) {
        self.connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// One item entered this shard's queue: bump the depth gauge and fold
    /// it into the high-water mark. Call *before* the item becomes
    /// visible to the consumer, or the matching [`ShardStats::dequeued`]
    /// can race ahead and underflow the gauge.
    pub fn enqueued(&self) {
        let depth = self
            .queue_depth
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(1);
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// One item left this shard's queue (whether or not the send worked).
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn inc_processed(&self) {
        self.processed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_busy(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_wake(&self) {
        self.wakes.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one shard's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    pub role: ShardRole,
    pub index: usize,
    pub connections: u64,
    pub queue_depth: u64,
    pub queue_depth_max: u64,
    pub processed: u64,
    pub busy_rejections: u64,
    pub steals: u64,
    pub parks: u64,
    pub wakes: u64,
}

/// Resilience-event totals for one engine instance (client or server).
///
/// Clients count `retries`, `reconnects`, and `failed_calls`; servers
/// count `frame_errors` and `broken_sends`. The counters live in one
/// struct because both sides share [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Call attempts re-issued after a retryable failure.
    pub retries: u64,
    /// Connections re-established to a server this client had already
    /// connected to (i.e. recoveries, not first contacts).
    pub reconnects: u64,
    /// Calls that failed definitively (non-retryable error, attempts
    /// exhausted, or deadline exceeded).
    pub failed_calls: u64,
    /// Inbound frames dropped as corrupt; each one also costs the
    /// connection it arrived on.
    pub frame_errors: u64,
    /// Responses the server could not transmit because the connection
    /// broke; the connection is closed in response.
    pub broken_sends: u64,
    /// Responses that arrived after their caller had already timed out
    /// and deregistered (client side). The connection survives; the
    /// payload is dropped.
    pub late_responses: u64,
    /// Calls refused admission because the server's call queue was full
    /// (answered with a retryable busy rejection, never executed).
    pub busy_rejections: u64,
    /// Connections the Listener refused before setup — past
    /// `max_connections` — answered with the retryable busy ack and
    /// dropped (server side). Backlog pressure is not counted here: it
    /// defers accepting rather than refusing.
    pub accept_rejections: u64,
    /// Queued calls dropped because their propagated deadline budget
    /// expired before a handler picked them up; answered with
    /// `STATUS_EXPIRED`, never executed.
    pub deadline_sheds: u64,
    /// Retried calls answered from the server's retry cache instead of
    /// being re-executed.
    pub retry_cache_hits: u64,
    /// Duplicate attempts that arrived while the first attempt was still
    /// executing and were parked until it finished.
    pub retry_cache_parked: u64,
    /// Completed retry-cache entries discarded to stay within capacity.
    pub retry_cache_evictions: u64,
    /// Completed retry-cache entries discarded because their TTL passed.
    pub retry_cache_expired: u64,
}

/// Registry of per-call-kind statistics. Cheap to clone and share.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<MetricsInner>,
}

/// Unified point-in-time view of everything the registry tracks: the
/// Table-I style per-method averages, the per-phase latency histograms,
/// the engine resilience counters, and (when the engine runs the RPCoIB
/// transport) the buffer-pool counters.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-`<protocol, method>` aggregates, sorted by key.
    pub methods: Vec<((String, String), MethodStats)>,
    /// Per-`<protocol, method>` phase histograms, sorted by key.
    pub phases: Vec<((String, String), PhaseSnapshot)>,
    /// Engine resilience counters.
    pub counters: EngineCounters,
    /// Buffer-pool counters; `None` on transports without a pool.
    pub pool: Option<PoolCounters>,
    /// Per-shard pipeline counters, sorted by (role, index). Empty on
    /// clients (only servers register shards).
    pub shards: Vec<ShardSnapshot>,
    /// Per-tenant admission counters, sorted by `client_id`. A tenant
    /// appears once it has been busy-rejected or shed at least once;
    /// well-behaved tenants stay off the list.
    pub tenants: Vec<TenantSnapshot>,
    /// Connections currently alive (accepted and not yet torn down).
    /// Filled by `Server::metrics_snapshot` from the live conn table;
    /// `0` in registry-only snapshots (clients).
    pub connections: usize,
    /// Bytes buffered inside live connections' transports awaiting
    /// `recv_msg` — the per-connection memory the server currently
    /// holds for peers. Filled by `Server::metrics_snapshot`.
    pub conn_buffered_bytes: usize,
}

/// Point-in-time admission counters for one tenant (handshake
/// `client_id`; V1 peers pool under id 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantSnapshot {
    pub client_id: u64,
    /// Calls of this tenant refused admission (queue full or tenant over
    /// quota).
    pub busy_rejections: u64,
    /// Calls of this tenant shed because their deadline budget expired
    /// while queued.
    pub deadline_sheds: u64,
}

impl MetricsSnapshot {
    /// Phase histograms for one key, if present. Allocation-free: binary
    /// search over the key-sorted snapshot, comparing `&str` halves
    /// directly.
    pub fn phase(&self, protocol: &str, method: &str) -> Option<&PhaseSnapshot> {
        self.phases
            .binary_search_by(|((p, m), _)| (p.as_str(), m.as_str()).cmp(&(protocol, method)))
            .ok()
            .map(|i| &self.phases[i].1)
    }
}

/// Live counters for one interned `<protocol, method>` key.
///
/// Hot-path callers hold the `Arc<MethodEntry>` returned by
/// [`MetricsRegistry::entry`] (cached per connection / per call), so a
/// sample record is only relaxed atomic adds: no registry lock, no key
/// allocation. Size tracing (a `Vec` append under a per-entry mutex) is
/// the one exception, and only when the registry was built with
/// `trace_sizes` — benches and the steady-state path run without it.
pub struct MethodEntry {
    key: MethodKey,
    trace: bool,
    calls: AtomicU64,
    serialize_ns: AtomicU64,
    send_ns: AtomicU64,
    adjustments: AtomicU64,
    recvs: AtomicU64,
    recv_alloc_ns: AtomicU64,
    recv_total_ns: AtomicU64,
    sizes: Mutex<Vec<u32>>,
    /// Whether this key's phase histograms were ever exposed/recorded
    /// (keeps `phase_snapshot` listing only keys that opted in, matching
    /// the pre-interning map semantics).
    phases_touched: AtomicBool,
    phases: Arc<PhaseHistograms>,
}

impl MethodEntry {
    fn new(key: MethodKey, trace: bool) -> Self {
        MethodEntry {
            key,
            trace,
            calls: AtomicU64::new(0),
            serialize_ns: AtomicU64::new(0),
            send_ns: AtomicU64::new(0),
            adjustments: AtomicU64::new(0),
            recvs: AtomicU64::new(0),
            recv_alloc_ns: AtomicU64::new(0),
            recv_total_ns: AtomicU64::new(0),
            sizes: Mutex::new(Vec::new()),
            phases_touched: AtomicBool::new(false),
            phases: Arc::new(PhaseHistograms::default()),
        }
    }

    /// The interned key this entry aggregates.
    pub fn key(&self) -> MethodKey {
        self.key
    }

    /// Record a client-side send profile (relaxed atomic adds).
    pub fn record_call(&self, profile: CallProfile) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.serialize_ns
            .fetch_add(profile.serialize_ns, Ordering::Relaxed);
        self.send_ns.fetch_add(profile.send_ns, Ordering::Relaxed);
        self.adjustments
            .fetch_add(profile.adjustments, Ordering::Relaxed);
        if self.trace {
            self.sizes.lock().push(profile.size as u32);
        }
    }

    /// Record a receive-side profile (relaxed atomic adds).
    pub fn record_recv(&self, profile: RecvProfile) {
        self.recvs.fetch_add(1, Ordering::Relaxed);
        self.recv_alloc_ns
            .fetch_add(profile.alloc_ns, Ordering::Relaxed);
        self.recv_total_ns
            .fetch_add(profile.total_ns, Ordering::Relaxed);
    }

    /// Record one phase sample (relaxed atomic adds into the log2
    /// histogram).
    pub fn record_phase(&self, phase: Phase, ns: u64) {
        self.phases_touched.store(true, Ordering::Relaxed);
        self.phases.record(phase, ns);
    }

    /// The phase-histogram block, for callers that batch several records.
    pub fn phase_histograms(&self) -> Arc<PhaseHistograms> {
        self.phases_touched.store(true, Ordering::Relaxed);
        Arc::clone(&self.phases)
    }

    fn has_stats(&self) -> bool {
        self.calls.load(Ordering::Relaxed) > 0 || self.recvs.load(Ordering::Relaxed) > 0
    }

    fn stats(&self) -> MethodStats {
        MethodStats {
            calls: self.calls.load(Ordering::Relaxed),
            serialize_ns: self.serialize_ns.load(Ordering::Relaxed),
            send_ns: self.send_ns.load(Ordering::Relaxed),
            adjustments: self.adjustments.load(Ordering::Relaxed),
            recvs: self.recvs.load(Ordering::Relaxed),
            recv_alloc_ns: self.recv_alloc_ns.load(Ordering::Relaxed),
            recv_total_ns: self.recv_total_ns.load(Ordering::Relaxed),
            sizes: self.sizes.lock().clone(),
        }
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.serialize_ns.store(0, Ordering::Relaxed);
        self.send_ns.store(0, Ordering::Relaxed);
        self.adjustments.store(0, Ordering::Relaxed);
        self.recvs.store(0, Ordering::Relaxed);
        self.recv_alloc_ns.store(0, Ordering::Relaxed);
        self.recv_total_ns.store(0, Ordering::Relaxed);
        self.sizes.lock().clear();
        self.phases_touched.store(false, Ordering::Relaxed);
        self.phases.reset();
    }
}

/// Ids below this resolve through the lock-free per-registry pointer
/// table; later ids (a workload with thousands of distinct keys) fall
/// back to a mutex-guarded map, correct but not lock-free.
const FAST_ENTRIES: usize = 4096;

struct MetricsInner {
    /// id-indexed entry table. A slot is written once (under the
    /// `overflow` mutex) and never replaced or freed while the registry
    /// lives, which is what makes the lock-free read safe.
    entries: Box<[AtomicPtr<MethodEntry>; FAST_ENTRIES]>,
    /// Entries for ids beyond the fast table.
    overflow: Mutex<HashMap<u32, Arc<MethodEntry>>>,
    shards: Mutex<Vec<(ShardRole, usize, Arc<ShardStats>)>>,
    trace_sizes: AtomicBool,
    retries: AtomicU64,
    reconnects: AtomicU64,
    failed_calls: AtomicU64,
    frame_errors: AtomicU64,
    broken_sends: AtomicU64,
    late_responses: AtomicU64,
    busy_rejections: AtomicU64,
    accept_rejections: AtomicU64,
    deadline_sheds: AtomicU64,
    retry_cache_hits: AtomicU64,
    retry_cache_parked: AtomicU64,
    retry_cache_evictions: AtomicU64,
    retry_cache_expired: AtomicU64,
    /// Per-tenant rejection/shed counters. Mutex-guarded: these paths run
    /// only when a call is refused or shed, never on the per-call hot
    /// path. Bounded at [`TENANT_TRACK_CAP`] distinct tenants.
    tenants: Mutex<HashMap<u64, TenantCells>>,
}

/// Mutable per-tenant counter cell (see `MetricsInner::tenants`).
#[derive(Debug, Default, Clone, Copy)]
struct TenantCells {
    busy_rejections: u64,
    deadline_sheds: u64,
}

/// Hard bound on distinct tenants tracked individually; beyond it, new
/// tenants still count in the global totals but get no per-tenant row.
const TENANT_TRACK_CAP: usize = 1024;

impl Default for MetricsInner {
    fn default() -> Self {
        MetricsInner {
            entries: Box::new(std::array::from_fn(
                |_| AtomicPtr::new(std::ptr::null_mut()),
            )),
            overflow: Mutex::new(HashMap::new()),
            shards: Mutex::new(Vec::new()),
            trace_sizes: AtomicBool::new(false),
            retries: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            failed_calls: AtomicU64::new(0),
            frame_errors: AtomicU64::new(0),
            broken_sends: AtomicU64::new(0),
            late_responses: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            accept_rejections: AtomicU64::new(0),
            deadline_sheds: AtomicU64::new(0),
            retry_cache_hits: AtomicU64::new(0),
            retry_cache_parked: AtomicU64::new(0),
            retry_cache_evictions: AtomicU64::new(0),
            retry_cache_expired: AtomicU64::new(0),
            tenants: Mutex::new(HashMap::new()),
        }
    }
}

impl Drop for MetricsInner {
    fn drop(&mut self) {
        // Reclaim the `Arc` strong count parked in each fast slot. No
        // reader can be concurrent with drop of the last registry handle.
        for slot in self.entries.iter() {
            let ptr = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !ptr.is_null() {
                drop(unsafe { Arc::from_raw(ptr) });
            }
        }
    }
}

impl MetricsInner {
    /// The entry for an interned key if it exists in this registry;
    /// lock-free for fast-table ids, never creates.
    fn entry_if_present(&self, key: MethodKey) -> Option<Arc<MethodEntry>> {
        let id = key.id().0 as usize;
        if id < FAST_ENTRIES {
            let ptr = self.entries[id].load(Ordering::Acquire);
            if ptr.is_null() {
                return None;
            }
            // Safe: the slot is written once and freed only when the
            // registry itself drops, so `ptr` outlives this call.
            unsafe {
                Arc::increment_strong_count(ptr);
                return Some(Arc::from_raw(ptr));
            }
        }
        self.overflow.lock().get(&key.id().0).cloned()
    }

    /// Iterate every live entry (fast table + overflow).
    fn for_each_entry(&self, mut f: impl FnMut(&MethodEntry)) {
        for slot in self.entries.iter() {
            let ptr = slot.load(Ordering::Acquire);
            if !ptr.is_null() {
                f(unsafe { &*ptr });
            }
        }
        for e in self.overflow.lock().values() {
            f(e);
        }
    }
}

impl MetricsRegistry {
    pub fn new(trace_sizes: bool) -> Self {
        let reg = MetricsRegistry::default();
        reg.inner.trace_sizes.store(trace_sizes, Ordering::Relaxed);
        reg
    }

    /// The counter block for an interned key, created on first use.
    /// Steady state is one atomic load plus an `Arc` bump — no map lock.
    /// Hot-path callers cache the returned handle and record through it.
    pub fn entry(&self, key: MethodKey) -> Arc<MethodEntry> {
        if let Some(e) = self.inner.entry_if_present(key) {
            return e;
        }
        let id = key.id().0 as usize;
        let mut overflow = self.inner.overflow.lock();
        // Re-check under the creation lock.
        if id < FAST_ENTRIES {
            let ptr = self.inner.entries[id].load(Ordering::Acquire);
            if !ptr.is_null() {
                unsafe {
                    Arc::increment_strong_count(ptr);
                    return Arc::from_raw(ptr);
                }
            }
            let entry = Arc::new(MethodEntry::new(
                key,
                self.inner.trace_sizes.load(Ordering::Relaxed),
            ));
            let raw = Arc::into_raw(Arc::clone(&entry));
            self.inner.entries[id].store(raw as *mut MethodEntry, Ordering::Release);
            return entry;
        }
        Arc::clone(overflow.entry(key.id().0).or_insert_with(|| {
            Arc::new(MethodEntry::new(
                key,
                self.inner.trace_sizes.load(Ordering::Relaxed),
            ))
        }))
    }

    /// Record a client-side send profile (`&str` convenience; resolves
    /// through the interner).
    pub fn record_call(&self, protocol: &str, method: &str, profile: CallProfile) {
        self.entry(intern::method_key(protocol, method))
            .record_call(profile);
    }

    /// Record a receive-side profile (`&str` convenience).
    pub fn record_recv(&self, protocol: &str, method: &str, profile: RecvProfile) {
        self.entry(intern::method_key(protocol, method))
            .record_recv(profile);
    }

    /// Snapshot of every tracked key, sorted by (protocol, method).
    pub fn snapshot(&self) -> Vec<((String, String), MethodStats)> {
        let mut out = Vec::new();
        self.inner.for_each_entry(|e| {
            if e.has_stats() {
                let key = e.key();
                out.push((
                    (key.protocol().to_owned(), key.method().to_owned()),
                    e.stats(),
                ));
            }
        });
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The phase-histogram set for a key, creating it on first use. The
    /// returned `Arc` can be cached by hot-path callers so subsequent
    /// records skip the registry entirely.
    pub fn phase_histograms(&self, protocol: &str, method: &str) -> Arc<PhaseHistograms> {
        self.entry(intern::method_key(protocol, method))
            .phase_histograms()
    }

    /// Record one sample of `ns` into `phase` for `<protocol, method>`.
    pub fn record_phase(&self, protocol: &str, method: &str, phase: Phase, ns: u64) {
        self.entry(intern::method_key(protocol, method))
            .record_phase(phase, ns);
    }

    /// Snapshot of every key's phase histograms, sorted by key.
    pub fn phase_snapshot(&self) -> Vec<((String, String), PhaseSnapshot)> {
        let mut out = Vec::new();
        self.inner.for_each_entry(|e| {
            if e.phases_touched.load(Ordering::Relaxed) {
                let key = e.key();
                out.push((
                    (key.protocol().to_owned(), key.method().to_owned()),
                    e.phases.snapshot(),
                ));
            }
        });
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Register one pipeline shard's counter block. Called by server
    /// construction; the returned `Arc` is owned by the shard thread.
    pub fn register_shard(&self, role: ShardRole, index: usize) -> Arc<ShardStats> {
        let stats = Arc::new(ShardStats::default());
        self.inner
            .shards
            .lock()
            .push((role, index, Arc::clone(&stats)));
        stats
    }

    /// Snapshot of every registered shard's counters, sorted by
    /// (role, index).
    pub fn shard_snapshot(&self) -> Vec<ShardSnapshot> {
        let shards = self.inner.shards.lock();
        let mut out: Vec<_> = shards
            .iter()
            .map(|(role, index, s)| ShardSnapshot {
                role: *role,
                index: *index,
                connections: s.connections.load(Ordering::Relaxed),
                queue_depth: s.queue_depth.load(Ordering::Relaxed),
                queue_depth_max: s.queue_depth_max.load(Ordering::Relaxed),
                processed: s.processed.load(Ordering::Relaxed),
                busy_rejections: s.busy_rejections.load(Ordering::Relaxed),
                steals: s.steals.load(Ordering::Relaxed),
                parks: s.parks.load(Ordering::Relaxed),
                wakes: s.wakes.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|s| (s.role, s.index));
        out
    }

    /// Unified snapshot: method aggregates, phase histograms, engine
    /// counters, and (if the caller's transport has one) pool counters.
    pub fn full_snapshot(&self, pool: Option<PoolCounters>) -> MetricsSnapshot {
        MetricsSnapshot {
            methods: self.snapshot(),
            phases: self.phase_snapshot(),
            counters: self.counters(),
            pool,
            shards: self.shard_snapshot(),
            tenants: self.tenant_snapshot(),
            // Conn-table figures are the server's to fill; a bare
            // registry has no connection view.
            connections: 0,
            conn_buffered_bytes: 0,
        }
    }

    /// Statistics for a single key, if present. Allocation-free lookup:
    /// the `&str` pair resolves through the interner's lock-free table,
    /// never cloning the key halves (the returned stats are a copy).
    pub fn get(&self, protocol: &str, method: &str) -> Option<MethodStats> {
        let key = intern::lookup(protocol, method)?;
        let entry = self.inner.entry_if_present(key)?;
        if entry.has_stats() {
            Some(entry.stats())
        } else {
            None
        }
    }

    pub fn inc_retries(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_reconnects(&self) {
        self.inner.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_failed_calls(&self) {
        self.inner.failed_calls.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_frame_errors(&self) {
        self.inner.frame_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_broken_sends(&self) {
        self.inner.broken_sends.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_late_responses(&self) {
        self.inner.late_responses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_busy_rejections(&self) {
        self.inner.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection refused at the accept path (connection-level
    /// backpressure, as opposed to the per-call `busy_rejections`).
    pub fn inc_accept_rejections(&self) {
        self.inner.accept_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one busy rejection, attributed to `tenant` (the handshake
    /// `client_id`; V1 peers pool under 0). Bumps the global counter too.
    pub fn inc_busy_rejections_for(&self, tenant: u64) {
        self.inc_busy_rejections();
        self.bump_tenant(tenant, |c| c.busy_rejections += 1);
    }

    /// Count one deadline shed, attributed to `tenant`.
    pub fn inc_deadline_sheds_for(&self, tenant: u64) {
        self.inner.deadline_sheds.fetch_add(1, Ordering::Relaxed);
        self.bump_tenant(tenant, |c| c.deadline_sheds += 1);
    }

    fn bump_tenant(&self, tenant: u64, f: impl FnOnce(&mut TenantCells)) {
        let mut tenants = self.inner.tenants.lock();
        if tenants.len() >= TENANT_TRACK_CAP && !tenants.contains_key(&tenant) {
            return;
        }
        f(tenants.entry(tenant).or_default());
    }

    /// Per-tenant admission counters, sorted by `client_id`.
    pub fn tenant_snapshot(&self) -> Vec<TenantSnapshot> {
        let mut out: Vec<TenantSnapshot> = self
            .inner
            .tenants
            .lock()
            .iter()
            .map(|(&client_id, cells)| TenantSnapshot {
                client_id,
                busy_rejections: cells.busy_rejections,
                deadline_sheds: cells.deadline_sheds,
            })
            .collect();
        out.sort_by_key(|t| t.client_id);
        out
    }

    pub fn inc_retry_cache_hits(&self) {
        self.inner.retry_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_retry_cache_parked(&self) {
        self.inner
            .retry_cache_parked
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_retry_cache_evictions(&self) {
        self.inner
            .retry_cache_evictions
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_retry_cache_expired(&self) {
        self.inner
            .retry_cache_expired
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the resilience counters.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            retries: self.inner.retries.load(Ordering::Relaxed),
            reconnects: self.inner.reconnects.load(Ordering::Relaxed),
            failed_calls: self.inner.failed_calls.load(Ordering::Relaxed),
            frame_errors: self.inner.frame_errors.load(Ordering::Relaxed),
            broken_sends: self.inner.broken_sends.load(Ordering::Relaxed),
            late_responses: self.inner.late_responses.load(Ordering::Relaxed),
            busy_rejections: self.inner.busy_rejections.load(Ordering::Relaxed),
            accept_rejections: self.inner.accept_rejections.load(Ordering::Relaxed),
            deadline_sheds: self.inner.deadline_sheds.load(Ordering::Relaxed),
            retry_cache_hits: self.inner.retry_cache_hits.load(Ordering::Relaxed),
            retry_cache_parked: self.inner.retry_cache_parked.load(Ordering::Relaxed),
            retry_cache_evictions: self.inner.retry_cache_evictions.load(Ordering::Relaxed),
            retry_cache_expired: self.inner.retry_cache_expired.load(Ordering::Relaxed),
        }
    }

    /// Drop all recorded data (between benchmark phases). Method entries
    /// are zeroed in place (cached hot-path handles stay valid); shard
    /// counters are zeroed but stay registered — their threads hold the
    /// `Arc`s.
    pub fn reset(&self) {
        self.inner.for_each_entry(|e| e.reset());
        for (_, _, s) in self.inner.shards.lock().iter() {
            s.connections.store(0, Ordering::Relaxed);
            s.queue_depth.store(0, Ordering::Relaxed);
            s.queue_depth_max.store(0, Ordering::Relaxed);
            s.processed.store(0, Ordering::Relaxed);
            s.busy_rejections.store(0, Ordering::Relaxed);
            s.steals.store(0, Ordering::Relaxed);
            s.parks.store(0, Ordering::Relaxed);
            s.wakes.store(0, Ordering::Relaxed);
        }
        self.inner.retries.store(0, Ordering::Relaxed);
        self.inner.reconnects.store(0, Ordering::Relaxed);
        self.inner.failed_calls.store(0, Ordering::Relaxed);
        self.inner.frame_errors.store(0, Ordering::Relaxed);
        self.inner.broken_sends.store(0, Ordering::Relaxed);
        self.inner.late_responses.store(0, Ordering::Relaxed);
        self.inner.busy_rejections.store(0, Ordering::Relaxed);
        self.inner.accept_rejections.store(0, Ordering::Relaxed);
        self.inner.deadline_sheds.store(0, Ordering::Relaxed);
        self.inner.tenants.lock().clear();
        self.inner.retry_cache_hits.store(0, Ordering::Relaxed);
        self.inner.retry_cache_parked.store(0, Ordering::Relaxed);
        self.inner.retry_cache_evictions.store(0, Ordering::Relaxed);
        self.inner.retry_cache_expired.store(0, Ordering::Relaxed);
    }
}

/// Convenience: time a closure, returning (result, elapsed).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_are_per_call() {
        let reg = MetricsRegistry::new(false);
        for i in 0..4 {
            reg.record_call(
                "p",
                "m",
                CallProfile {
                    serialize_ns: 1000,
                    send_ns: 500,
                    adjustments: i % 2,
                    size: 64,
                },
            );
        }
        let stats = reg.get("p", "m").unwrap();
        assert_eq!(stats.calls, 4);
        assert_eq!(stats.avg_serialize_us(), 1.0);
        assert_eq!(stats.avg_send_us(), 0.5);
        assert_eq!(stats.avg_adjustments(), 0.5);
        assert!(stats.sizes.is_empty(), "tracing disabled");
    }

    #[test]
    fn size_tracing_keeps_order() {
        let reg = MetricsRegistry::new(true);
        for size in [100usize, 430, 431, 90] {
            reg.record_call(
                "p",
                "m",
                CallProfile {
                    size,
                    ..Default::default()
                },
            );
        }
        assert_eq!(reg.get("p", "m").unwrap().sizes, vec![100, 430, 431, 90]);
    }

    #[test]
    fn alloc_ratio_matches_fig1_definition() {
        let reg = MetricsRegistry::new(false);
        reg.record_recv(
            "p",
            "m",
            RecvProfile {
                alloc_ns: 30,
                total_ns: 100,
                size: 10,
            },
        );
        reg.record_recv(
            "p",
            "m",
            RecvProfile {
                alloc_ns: 10,
                total_ns: 100,
                size: 10,
            },
        );
        let stats = reg.get("p", "m").unwrap();
        assert!((stats.alloc_ratio() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn keys_are_protocol_and_method() {
        let reg = MetricsRegistry::new(false);
        reg.record_call("a", "m", CallProfile::default());
        reg.record_call("b", "m", CallProfile::default());
        assert_eq!(reg.snapshot().len(), 2);
        reg.reset();
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        h.record(1); // [1,1] -> bucket 1
        h.record(900); // [512,1023] -> bucket 10
        h.record(1023);
        h.record(1024); // bucket 11
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.max_ns, 1024);
        assert_eq!(s.sum_ns, 1 + 1 + 900 + 1023 + 1024);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[10], 2);
        assert_eq!(s.buckets[11], 1);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = LatencyHistogram::default();
        for _ in 0..98 {
            h.record(100); // bucket 7: [64,127]
        }
        h.record(5_000); // bucket 13
        h.record(1 << 35); // top-ish sample
        let s = h.snapshot();
        assert_eq!(s.p50_ns(), 127);
        assert_eq!(s.p95_ns(), 127);
        assert_eq!(s.quantile_ns(0.99), 8191);
        assert_eq!(s.quantile_ns(1.0), (1u64 << 36) - 1);
        let empty = LatencyHistogram::default().snapshot();
        assert_eq!(empty.p99_ns(), 0);
        assert_eq!(empty.mean_ns(), 0.0);
    }

    #[test]
    fn huge_samples_saturate_into_top_bucket() {
        let h = LatencyHistogram::default();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.p99_ns(), u64::MAX, "top bucket reports observed max");
    }

    #[test]
    fn phase_histograms_key_by_protocol_method() {
        let reg = MetricsRegistry::new(false);
        reg.record_phase("p", "m", Phase::Serialize, 10);
        reg.record_phase("p", "m", Phase::Serialize, 20);
        reg.record_phase("p", "m", Phase::Wire, 1000);
        reg.record_phase("p", "other", Phase::Handler, 5);
        let phases = reg.phase_snapshot();
        assert_eq!(phases.len(), 2);
        let pm = reg
            .full_snapshot(None)
            .phase("p", "m")
            .cloned()
            .expect("key recorded");
        assert_eq!(pm.get(Phase::Serialize).count, 2);
        assert_eq!(pm.get(Phase::Wire).count, 1);
        assert_eq!(pm.get(Phase::Deserialize).count, 0);
        assert_eq!(pm.iter().count(), PHASE_COUNT);
        reg.reset();
        assert!(reg.phase_snapshot().is_empty());
    }

    #[test]
    fn full_snapshot_carries_pool_counters() {
        let reg = MetricsRegistry::new(false);
        let snap = reg.full_snapshot(Some(PoolCounters {
            history_hits: 3,
            cold: 1,
            ..Default::default()
        }));
        let pool = snap.pool.expect("pool attached");
        assert_eq!(pool.history_hits, 3);
        assert_eq!(pool.cold, 1);
        assert!(reg.full_snapshot(None).pool.is_none());
    }

    #[test]
    fn shard_stats_snapshot_sorted_and_resettable() {
        let reg = MetricsRegistry::new(false);
        let resp = reg.register_shard(ShardRole::Responder, 0);
        let r1 = reg.register_shard(ShardRole::Reader, 1);
        let r0 = reg.register_shard(ShardRole::Reader, 0);
        r0.conn_added();
        r0.conn_added();
        r0.conn_removed();
        r0.inc_processed();
        r1.inc_busy();
        resp.enqueued();
        resp.enqueued();
        resp.dequeued();
        let snap = reg.shard_snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|s| (s.role, s.index)).collect::<Vec<_>>(),
            vec![
                (ShardRole::Reader, 0),
                (ShardRole::Reader, 1),
                (ShardRole::Responder, 0)
            ]
        );
        assert_eq!(snap[0].connections, 1);
        assert_eq!(snap[0].processed, 1);
        assert_eq!(snap[1].busy_rejections, 1);
        assert_eq!(snap[2].queue_depth, 1);
        assert_eq!(snap[2].queue_depth_max, 2);
        reg.reset();
        let snap = reg.shard_snapshot();
        assert_eq!(snap.len(), 3, "registration survives reset");
        assert!(snap.iter().all(|s| s.queue_depth_max == 0));
    }

    #[test]
    fn engine_counters_accumulate_and_reset() {
        let reg = MetricsRegistry::new(false);
        reg.inc_retries();
        reg.inc_retries();
        reg.inc_reconnects();
        reg.inc_failed_calls();
        reg.inc_frame_errors();
        reg.inc_broken_sends();
        reg.inc_late_responses();
        reg.inc_busy_rejections();
        reg.inc_deadline_sheds_for(7);
        reg.inc_retry_cache_hits();
        reg.inc_retry_cache_parked();
        reg.inc_retry_cache_evictions();
        reg.inc_retry_cache_expired();
        let c = reg.counters();
        assert_eq!(c.retries, 2);
        assert_eq!(c.reconnects, 1);
        assert_eq!(c.failed_calls, 1);
        assert_eq!(c.frame_errors, 1);
        assert_eq!(c.broken_sends, 1);
        assert_eq!(c.late_responses, 1);
        assert_eq!(c.busy_rejections, 1);
        assert_eq!(c.deadline_sheds, 1);
        assert_eq!(c.retry_cache_hits, 1);
        assert_eq!(c.retry_cache_parked, 1);
        assert_eq!(c.retry_cache_evictions, 1);
        assert_eq!(c.retry_cache_expired, 1);
        reg.reset();
        assert_eq!(reg.counters(), EngineCounters::default());
        assert!(reg.tenant_snapshot().is_empty(), "reset clears tenants");
    }

    #[test]
    fn tenant_counters_attribute_and_bound() {
        let reg = MetricsRegistry::new(false);
        reg.inc_busy_rejections_for(9);
        reg.inc_busy_rejections_for(9);
        reg.inc_busy_rejections_for(3);
        reg.inc_deadline_sheds_for(9);
        let c = reg.counters();
        assert_eq!(c.busy_rejections, 3, "per-tenant bumps count globally too");
        assert_eq!(c.deadline_sheds, 1);
        let tenants = reg.tenant_snapshot();
        assert_eq!(
            tenants,
            vec![
                TenantSnapshot {
                    client_id: 3,
                    busy_rejections: 1,
                    deadline_sheds: 0,
                },
                TenantSnapshot {
                    client_id: 9,
                    busy_rejections: 2,
                    deadline_sheds: 1,
                },
            ]
        );
        // The per-tenant table is bounded: tenants beyond the cap keep
        // counting globally but get no individual row.
        for t in 0..(TENANT_TRACK_CAP as u64 + 64) {
            reg.inc_busy_rejections_for(t + 1000);
        }
        assert_eq!(reg.tenant_snapshot().len(), TENANT_TRACK_CAP);
        assert_eq!(
            reg.counters().busy_rejections,
            3 + TENANT_TRACK_CAP as u64 + 64
        );
    }
}
