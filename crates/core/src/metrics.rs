//! Per-call instrumentation.
//!
//! Table I of the paper reports, per `<protocol, method>`: average memory
//! adjustment count, average serialization time, and average send time.
//! Figure 1 reports the ratio of receive-side buffer-allocation time to
//! total call-receive time. Figure 3 needs the serialized size of every
//! call in sequence. This module collects all of those.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// One client-side call observation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallProfile {
    /// Time spent serializing the request (buffer writes + adjustments).
    pub serialize_ns: u64,
    /// Time spent handing the serialized frame to the transport.
    pub send_ns: u64,
    /// Memory adjustments performed while serializing (Algorithm 1 count;
    /// always 0 on the RPCoIB path unless the pool had to grow).
    pub adjustments: u64,
    /// Serialized request size in bytes.
    pub size: usize,
}

/// One receive-side observation (server reading a request, or client
/// reading a response).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecvProfile {
    /// Time spent allocating the receive buffer (Listing 2's
    /// `ByteBuffer.allocate(len)`; ~0 on the pooled RPCoIB path).
    pub alloc_ns: u64,
    /// Total time from frame-length availability to payload in hand.
    pub total_ns: u64,
    /// Received payload size in bytes.
    pub size: usize,
}

/// Aggregated statistics for one `<protocol, method>` key.
#[derive(Debug, Clone, Default)]
pub struct MethodStats {
    pub calls: u64,
    pub serialize_ns: u64,
    pub send_ns: u64,
    pub adjustments: u64,
    pub recvs: u64,
    pub recv_alloc_ns: u64,
    pub recv_total_ns: u64,
    /// Serialized sizes in call order (only kept when tracing is enabled).
    pub sizes: Vec<u32>,
}

impl MethodStats {
    pub fn avg_adjustments(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.adjustments as f64 / self.calls as f64
        }
    }
    pub fn avg_serialize_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.serialize_ns as f64 / self.calls as f64 / 1e3
        }
    }
    pub fn avg_send_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.send_ns as f64 / self.calls as f64 / 1e3
        }
    }
    pub fn avg_recv_alloc_us(&self) -> f64 {
        if self.recvs == 0 {
            0.0
        } else {
            self.recv_alloc_ns as f64 / self.recvs as f64 / 1e3
        }
    }
    pub fn avg_recv_total_us(&self) -> f64 {
        if self.recvs == 0 {
            0.0
        } else {
            self.recv_total_ns as f64 / self.recvs as f64 / 1e3
        }
    }
    /// Figure 1's y-axis: allocation time / total receive time.
    pub fn alloc_ratio(&self) -> f64 {
        if self.recv_total_ns == 0 {
            0.0
        } else {
            self.recv_alloc_ns as f64 / self.recv_total_ns as f64
        }
    }
}

/// Resilience-event totals for one engine instance (client or server).
///
/// Clients count `retries`, `reconnects`, and `failed_calls`; servers
/// count `frame_errors` and `broken_sends`. The counters live in one
/// struct because both sides share [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Call attempts re-issued after a retryable failure.
    pub retries: u64,
    /// Connections re-established to a server this client had already
    /// connected to (i.e. recoveries, not first contacts).
    pub reconnects: u64,
    /// Calls that failed definitively (non-retryable error, attempts
    /// exhausted, or deadline exceeded).
    pub failed_calls: u64,
    /// Inbound frames dropped as corrupt; each one also costs the
    /// connection it arrived on.
    pub frame_errors: u64,
    /// Responses the server could not transmit because the connection
    /// broke; the connection is closed in response.
    pub broken_sends: u64,
    /// Responses that arrived after their caller had already timed out
    /// and deregistered (client side). The connection survives; the
    /// payload is dropped.
    pub late_responses: u64,
    /// Calls refused admission because the server's call queue was full
    /// (answered with a retryable busy rejection, never executed).
    pub busy_rejections: u64,
    /// Retried calls answered from the server's retry cache instead of
    /// being re-executed.
    pub retry_cache_hits: u64,
    /// Duplicate attempts that arrived while the first attempt was still
    /// executing and were parked until it finished.
    pub retry_cache_parked: u64,
    /// Completed retry-cache entries discarded to stay within capacity.
    pub retry_cache_evictions: u64,
    /// Completed retry-cache entries discarded because their TTL passed.
    pub retry_cache_expired: u64,
}

/// Registry of per-call-kind statistics. Cheap to clone and share.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<MetricsInner>,
}

#[derive(Default)]
struct MetricsInner {
    stats: Mutex<HashMap<(String, String), MethodStats>>,
    trace_sizes: Mutex<bool>,
    retries: AtomicU64,
    reconnects: AtomicU64,
    failed_calls: AtomicU64,
    frame_errors: AtomicU64,
    broken_sends: AtomicU64,
    late_responses: AtomicU64,
    busy_rejections: AtomicU64,
    retry_cache_hits: AtomicU64,
    retry_cache_parked: AtomicU64,
    retry_cache_evictions: AtomicU64,
    retry_cache_expired: AtomicU64,
}

impl MetricsRegistry {
    pub fn new(trace_sizes: bool) -> Self {
        let reg = MetricsRegistry::default();
        *reg.inner.trace_sizes.lock() = trace_sizes;
        reg
    }

    /// Record a client-side send profile.
    pub fn record_call(&self, protocol: &str, method: &str, profile: CallProfile) {
        let trace = *self.inner.trace_sizes.lock();
        let mut stats = self.inner.stats.lock();
        let entry = stats
            .entry((protocol.to_owned(), method.to_owned()))
            .or_default();
        entry.calls += 1;
        entry.serialize_ns += profile.serialize_ns;
        entry.send_ns += profile.send_ns;
        entry.adjustments += profile.adjustments;
        if trace {
            entry.sizes.push(profile.size as u32);
        }
    }

    /// Record a receive-side profile.
    pub fn record_recv(&self, protocol: &str, method: &str, profile: RecvProfile) {
        let mut stats = self.inner.stats.lock();
        let entry = stats
            .entry((protocol.to_owned(), method.to_owned()))
            .or_default();
        entry.recvs += 1;
        entry.recv_alloc_ns += profile.alloc_ns;
        entry.recv_total_ns += profile.total_ns;
    }

    /// Snapshot of every tracked key, sorted by (protocol, method).
    pub fn snapshot(&self) -> Vec<((String, String), MethodStats)> {
        let stats = self.inner.stats.lock();
        let mut out: Vec<_> = stats.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Statistics for a single key, if present.
    pub fn get(&self, protocol: &str, method: &str) -> Option<MethodStats> {
        self.inner
            .stats
            .lock()
            .get(&(protocol.to_owned(), method.to_owned()))
            .cloned()
    }

    pub fn inc_retries(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_reconnects(&self) {
        self.inner.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_failed_calls(&self) {
        self.inner.failed_calls.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_frame_errors(&self) {
        self.inner.frame_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_broken_sends(&self) {
        self.inner.broken_sends.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_late_responses(&self) {
        self.inner.late_responses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_busy_rejections(&self) {
        self.inner.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_retry_cache_hits(&self) {
        self.inner.retry_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_retry_cache_parked(&self) {
        self.inner
            .retry_cache_parked
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_retry_cache_evictions(&self) {
        self.inner
            .retry_cache_evictions
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn inc_retry_cache_expired(&self) {
        self.inner
            .retry_cache_expired
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the resilience counters.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            retries: self.inner.retries.load(Ordering::Relaxed),
            reconnects: self.inner.reconnects.load(Ordering::Relaxed),
            failed_calls: self.inner.failed_calls.load(Ordering::Relaxed),
            frame_errors: self.inner.frame_errors.load(Ordering::Relaxed),
            broken_sends: self.inner.broken_sends.load(Ordering::Relaxed),
            late_responses: self.inner.late_responses.load(Ordering::Relaxed),
            busy_rejections: self.inner.busy_rejections.load(Ordering::Relaxed),
            retry_cache_hits: self.inner.retry_cache_hits.load(Ordering::Relaxed),
            retry_cache_parked: self.inner.retry_cache_parked.load(Ordering::Relaxed),
            retry_cache_evictions: self.inner.retry_cache_evictions.load(Ordering::Relaxed),
            retry_cache_expired: self.inner.retry_cache_expired.load(Ordering::Relaxed),
        }
    }

    /// Drop all recorded data (between benchmark phases).
    pub fn reset(&self) {
        self.inner.stats.lock().clear();
        self.inner.retries.store(0, Ordering::Relaxed);
        self.inner.reconnects.store(0, Ordering::Relaxed);
        self.inner.failed_calls.store(0, Ordering::Relaxed);
        self.inner.frame_errors.store(0, Ordering::Relaxed);
        self.inner.broken_sends.store(0, Ordering::Relaxed);
        self.inner.late_responses.store(0, Ordering::Relaxed);
        self.inner.busy_rejections.store(0, Ordering::Relaxed);
        self.inner.retry_cache_hits.store(0, Ordering::Relaxed);
        self.inner.retry_cache_parked.store(0, Ordering::Relaxed);
        self.inner.retry_cache_evictions.store(0, Ordering::Relaxed);
        self.inner.retry_cache_expired.store(0, Ordering::Relaxed);
    }
}

/// Convenience: time a closure, returning (result, elapsed).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_are_per_call() {
        let reg = MetricsRegistry::new(false);
        for i in 0..4 {
            reg.record_call(
                "p",
                "m",
                CallProfile {
                    serialize_ns: 1000,
                    send_ns: 500,
                    adjustments: i % 2,
                    size: 64,
                },
            );
        }
        let stats = reg.get("p", "m").unwrap();
        assert_eq!(stats.calls, 4);
        assert_eq!(stats.avg_serialize_us(), 1.0);
        assert_eq!(stats.avg_send_us(), 0.5);
        assert_eq!(stats.avg_adjustments(), 0.5);
        assert!(stats.sizes.is_empty(), "tracing disabled");
    }

    #[test]
    fn size_tracing_keeps_order() {
        let reg = MetricsRegistry::new(true);
        for size in [100usize, 430, 431, 90] {
            reg.record_call(
                "p",
                "m",
                CallProfile {
                    size,
                    ..Default::default()
                },
            );
        }
        assert_eq!(reg.get("p", "m").unwrap().sizes, vec![100, 430, 431, 90]);
    }

    #[test]
    fn alloc_ratio_matches_fig1_definition() {
        let reg = MetricsRegistry::new(false);
        reg.record_recv(
            "p",
            "m",
            RecvProfile {
                alloc_ns: 30,
                total_ns: 100,
                size: 10,
            },
        );
        reg.record_recv(
            "p",
            "m",
            RecvProfile {
                alloc_ns: 10,
                total_ns: 100,
                size: 10,
            },
        );
        let stats = reg.get("p", "m").unwrap();
        assert!((stats.alloc_ratio() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn keys_are_protocol_and_method() {
        let reg = MetricsRegistry::new(false);
        reg.record_call("a", "m", CallProfile::default());
        reg.record_call("b", "m", CallProfile::default());
        assert_eq!(reg.snapshot().len(), 2);
        reg.reset();
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn engine_counters_accumulate_and_reset() {
        let reg = MetricsRegistry::new(false);
        reg.inc_retries();
        reg.inc_retries();
        reg.inc_reconnects();
        reg.inc_failed_calls();
        reg.inc_frame_errors();
        reg.inc_broken_sends();
        reg.inc_late_responses();
        reg.inc_busy_rejections();
        reg.inc_retry_cache_hits();
        reg.inc_retry_cache_parked();
        reg.inc_retry_cache_evictions();
        reg.inc_retry_cache_expired();
        let c = reg.counters();
        assert_eq!(c.retries, 2);
        assert_eq!(c.reconnects, 1);
        assert_eq!(c.failed_calls, 1);
        assert_eq!(c.frame_errors, 1);
        assert_eq!(c.broken_sends, 1);
        assert_eq!(c.late_responses, 1);
        assert_eq!(c.busy_rejections, 1);
        assert_eq!(c.retry_cache_hits, 1);
        assert_eq!(c.retry_cache_parked, 1);
        assert_eq!(c.retry_cache_evictions, 1);
        assert_eq!(c.retry_cache_expired, 1);
        reg.reset();
        assert_eq!(reg.counters(), EngineCounters::default());
    }
}
