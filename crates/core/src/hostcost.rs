//! Deterministic host-side metadata cost model.
//!
//! The simnet ledger charges *network* costs (stack traversal, wire time,
//! propagation) from the calibrated [`simnet::NetworkModel`]s; host-side
//! software costs — managed-heap allocation, lock acquisition — are
//! normally real wall-clock effects the ledger does not see. That is fine
//! while both designs under comparison do the same host work, but the
//! whole point of the interned hot path is that it *stops* doing that
//! work. To make the saving visible in the deterministic, replayable
//! bench figures, [`RpcConfig::legacy_metadata`](crate::RpcConfig) mode
//! re-enacts the pre-interning metadata path for real **and** charges the
//! caller's ledger with the constants below, one bundle per call.
//!
//! The constants are deliberately conservative round numbers in the range
//! reported for managed-runtime RPC stacks (the paper's §III measures
//! whole-buffer allocation at tens of microseconds; a single small
//! object allocation plus zeroing is ~100 ns on the paper's Westmere-era
//! hosts, an uncontended lock round-trip ~50 ns). The interned path
//! charges nothing: its metadata cost is a few relaxed atomic adds,
//! below the model's resolution.

/// Modeled cost of one managed small-object heap allocation (allocate +
/// zero + eventual collection amortized).
pub const MANAGED_ALLOC_NS: u64 = 110;

/// Modeled cost of one uncontended lock acquire/release round.
pub const LOCK_ROUND_NS: u64 = 45;

/// Heap allocations the pre-interning metadata path performed per call:
/// two owned key `String`s in the pending-call entry, two more cloned
/// into the metrics key, the per-call one-shot reply channel (channel
/// block + queue node), and the response-side key clones.
pub const LEGACY_ALLOCS_PER_CALL: u64 = 8;

/// Lock rounds the pre-interning path took per call: the global metrics
/// stats map (call + recv + two phase records), the single pending-table
/// mutex (insert + remove), and the trace flag.
pub const LEGACY_LOCKS_PER_CALL: u64 = 6;

/// The per-call ledger charge applied in legacy-metadata mode.
pub const fn legacy_call_ns() -> u64 {
    LEGACY_ALLOCS_PER_CALL * MANAGED_ALLOC_NS + LEGACY_LOCKS_PER_CALL * LOCK_ROUND_NS
}

/// Modeled host memcpy bandwidth for draining a received large frame out
/// of the registered region into a pooled buffer, ~10 GB/s (a single
/// stream of rep-movs on the paper's Westmere hosts). The one-sided bulk
/// plane charges this to the *receiver's* ledger per drained byte; the
/// sender side is zero-copy and charges nothing beyond the wire.
pub const DRAIN_BYTES_PER_NS: u64 = 10;

/// Modeled cost of copying `len` bytes out of the large region.
pub const fn drain_ns(len: usize) -> u64 {
    (len as u64).div_ceil(DRAIN_BYTES_PER_NS)
}

/// Re-enact the pre-interning metadata heap traffic for real — exactly
/// [`LEGACY_ALLOCS_PER_CALL`] boxed allocations of the call's key
/// strings — so allocation-counting harnesses observe the legacy path's
/// behavior, not just its modeled charge. Returns a value derived from
/// the allocations so the optimizer cannot elide them.
pub fn reenact_legacy_call(protocol: &str, method: &str) -> usize {
    let mut footprint = 0usize;
    for _ in 0..LEGACY_ALLOCS_PER_CALL / 2 {
        let p = std::hint::black_box(protocol.to_owned());
        let m = std::hint::black_box(method.to_owned());
        footprint = footprint.wrapping_add(p.len() + m.len());
    }
    footprint
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_bundle_is_the_documented_sum() {
        assert_eq!(legacy_call_ns(), 8 * 110 + 6 * 45);
        assert_eq!(legacy_call_ns(), 1150);
    }

    #[test]
    fn drain_cost_tracks_the_memcpy_model() {
        assert_eq!(drain_ns(0), 0);
        assert_eq!(drain_ns(1), 1);
        assert_eq!(drain_ns(10), 1);
        // 1 MiB at 10 GB/s ≈ 105 µs.
        assert_eq!(drain_ns(1 << 20), 104_858);
    }
}
