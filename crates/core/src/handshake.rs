//! Connect-time handshake: version negotiation and client identity.
//!
//! Before any RPC frame (and, in RPCoIB mode, before the verbs end-point
//! exchange) the client sends a 13-byte hello over the freshly connected
//! stream — magic, the highest frame version it speaks, and its
//! `client_id` — and the server answers with a 9-byte ack carrying the
//! *negotiated* version (`min(peer, MAX_VERSION)`) and the identity the
//! connection will speak under. Both sides then frame every message on
//! that connection in the negotiated version, which is how the V3
//! compact header gets turned on without any per-frame marker: a V2 peer
//! offers 2, is acked 2, and never sees a V3 byte.
//!
//! The `client_id` keys the server's retry cache, so it must be stable
//! across reconnects of one client and unique among all clients a server
//! ever sees. A client normally mints its own random id at construction
//! and presents it on every connect; a client that presents `0` is handed
//! a server-assigned id in the ack ("handed out at connect handshake"),
//! which it adopts and re-presents on subsequent connects.
//!
//! **Legacy (pre-handshake) peers.** The handshake only exists since
//! frame V2, so the server *sniffs* rather than demands it: it peeks at
//! the connection's first four bytes, and anything but the magic is
//! pushed back onto the stream and the connection proceeds exactly as in
//! the previous release — straight to the frame (socket) or verbs
//! endpoint exchange (RPCoIB), with no client identity and therefore no
//! retry caching. That keeps an old client working against a new server
//! for one release; the reverse direction (new client, old server) is
//! not supported, because an old server would read the hello as frame
//! bytes. A truly garbage peer passes the sniff as "legacy" and is then
//! rejected one layer down, when its bytes fail to parse as a frame.
//! (The sniff is ambiguous only if a legacy frame's length prefix equals
//! the magic — a 1.3 GB frame, far beyond any real call.)

use std::io::Write;

use simnet::SimStream;

use crate::error::{RpcError, RpcResult};

/// `b"RPCB"` — first bytes on every connection.
pub const MAGIC: u32 = 0x5250_4342;

/// Lowest version the handshake can negotiate (the handshake itself
/// only exists since V2; pre-V2 peers take the Legacy sniff path).
pub const MIN_VERSION: u8 = 2;

/// Highest frame/wire version this build speaks (see [`crate::frame`]).
pub const MAX_VERSION: u8 = 3;

/// Client side: offer versions up to `max_version` and present
/// `client_id` (0 = please assign one). Returns the negotiated version
/// and the id the server confirmed or assigned.
pub fn client_hello(stream: &SimStream, client_id: u64, max_version: u8) -> RpcResult<(u8, u64)> {
    let mut hello = [0u8; 13];
    hello[..4].copy_from_slice(&MAGIC.to_be_bytes());
    hello[4] = max_version;
    hello[5..].copy_from_slice(&client_id.to_be_bytes());
    (&*stream)
        .write_all(&hello)
        .map_err(|e| RpcError::Io(e.to_string()))?;

    let mut ack = [0u8; 9];
    stream
        .read_exact_at(&mut ack)
        .map_err(|e| RpcError::Io(e.to_string()))?;
    let version = ack[0];
    if version == 0 {
        // Accept-path backpressure: the server is at `max_connections`
        // (or its accept backlog) and refused this connection before any
        // setup. Retryable — the client backs off and reconnects.
        return Err(RpcError::ServerBusy);
    }
    if !(MIN_VERSION..=max_version).contains(&version) {
        return Err(RpcError::Protocol(format!(
            "server negotiated frame version {version}, this client speaks {MIN_VERSION}..={max_version}"
        )));
    }
    let confirmed = u64::from_be_bytes(ack[1..9].try_into().unwrap());
    if confirmed == 0 {
        return Err(RpcError::Protocol("server confirmed client_id 0".into()));
    }
    Ok((version, confirmed))
}

/// What the server learned from a freshly accepted connection's opening
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerHello {
    /// The peer spoke the handshake; the connection operates under the
    /// negotiated frame version and this client id.
    Modern { version: u8, client_id: u64 },
    /// The peer's first bytes were not the magic: a pre-handshake (V1)
    /// peer. The sniffed bytes were pushed back onto the stream, which is
    /// positioned exactly as the previous release expects — no ack was
    /// sent, no identity exists, and the retry cache stays out of play.
    Legacy,
}

/// Server side: sniff the connection's first four bytes. On the magic,
/// finish the handshake (assigning an id via `assign` if the client
/// presented 0), ack the negotiated version, and return it with the
/// connection's client id; on anything else, push the bytes back and
/// report a legacy peer.
///
/// `Protocol` errors mean the peer spoke the magic but an unsupportable
/// version (count it); `Io` means the peer vanished mid-handshake
/// (routine churn).
pub fn server_accept(stream: &SimStream, assign: impl FnOnce() -> u64) -> RpcResult<ServerHello> {
    let mut lead = [0u8; 4];
    stream
        .read_exact_at(&mut lead)
        .map_err(|e| RpcError::Io(e.to_string()))?;
    if u32::from_be_bytes(lead) != MAGIC {
        stream.unread(&lead);
        return Ok(ServerHello::Legacy);
    }
    let mut rest = [0u8; 9];
    stream
        .read_exact_at(&mut rest)
        .map_err(|e| RpcError::Io(e.to_string()))?;
    let peer_version = rest[0];
    if peer_version < MIN_VERSION {
        // The handshake itself only exists since V2 — a peer that sends
        // it speaks at least V2 (pre-V2 peers take the Legacy path).
        return Err(RpcError::Protocol(format!(
            "unsupported peer frame version {peer_version}"
        )));
    }
    let version = peer_version.min(MAX_VERSION);
    let presented = u64::from_be_bytes(rest[1..9].try_into().unwrap());
    let client_id = if presented == 0 { assign() } else { presented };

    let mut ack = [0u8; 9];
    ack[0] = version;
    ack[1..].copy_from_slice(&client_id.to_be_bytes());
    (&*stream)
        .write_all(&ack)
        .map_err(|e| RpcError::Io(e.to_string()))?;
    Ok(ServerHello::Modern { version, client_id })
}

/// Mint a random, non-zero client id. Mixes wall-clock entropy, the
/// caller-supplied salt (e.g. an address), and a process-wide counter
/// through splitmix64, so two clients created in the same nanosecond on
/// different nodes still diverge.
pub fn mint_client_id(salt: u64) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    let raw = nanos ^ salt.rotate_left(17) ^ COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed);
    let mut z = raw.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{model, Fabric, SimAddr, SimListener};
    use std::thread;

    fn stream_pair() -> (SimStream, SimStream) {
        let fabric = Fabric::new(model::IPOIB_QDR);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 9100);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let f2 = fabric.clone();
        let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
        let (srv, _) = listener.accept().unwrap();
        (h.join().unwrap(), srv)
    }

    #[test]
    fn presented_id_is_confirmed_at_max_version() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || client_hello(&cli, 0xfeed, MAX_VERSION).unwrap());
        let seen = server_accept(&srv, || panic!("must not assign")).unwrap();
        assert_eq!(
            seen,
            ServerHello::Modern {
                version: MAX_VERSION,
                client_id: 0xfeed
            }
        );
        assert_eq!(h.join().unwrap(), (MAX_VERSION, 0xfeed));
    }

    #[test]
    fn v2_peer_negotiates_down_to_v2() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || client_hello(&cli, 0xfeed, 2).unwrap());
        let seen = server_accept(&srv, || panic!("must not assign")).unwrap();
        assert_eq!(
            seen,
            ServerHello::Modern {
                version: 2,
                client_id: 0xfeed
            },
            "the server must never ack a version above the peer's offer"
        );
        assert_eq!(h.join().unwrap(), (2, 0xfeed));
    }

    #[test]
    fn future_peer_is_capped_at_our_max() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || {
            use std::io::Write;
            let mut hello = [0u8; 13];
            hello[..4].copy_from_slice(&MAGIC.to_be_bytes());
            hello[4] = MAX_VERSION + 5; // a build from the future
            hello[5..].copy_from_slice(&0xbeefu64.to_be_bytes());
            (&cli).write_all(&hello).unwrap();
            let mut ack = [0u8; 9];
            cli.read_exact_at(&mut ack).unwrap();
            ack[0]
        });
        let seen = server_accept(&srv, || 1).unwrap();
        assert_eq!(
            seen,
            ServerHello::Modern {
                version: MAX_VERSION,
                client_id: 0xbeef
            }
        );
        assert_eq!(h.join().unwrap(), MAX_VERSION);
    }

    #[test]
    fn zero_id_gets_assigned() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || client_hello(&cli, 0, MAX_VERSION).unwrap());
        let seen = server_accept(&srv, || 777).unwrap();
        assert_eq!(
            seen,
            ServerHello::Modern {
                version: MAX_VERSION,
                client_id: 777
            }
        );
        assert_eq!(
            h.join().unwrap(),
            (MAX_VERSION, 777),
            "assigned id travels back"
        );
    }

    #[test]
    fn non_magic_peer_is_legacy_with_bytes_preserved() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || {
            use std::io::Write;
            // A pre-handshake peer's first bytes: a frame length prefix.
            (&cli).write_all(&[0, 0, 0, 64, 0xab, 0xcd]).unwrap();
        });
        let seen = server_accept(&srv, || panic!("must not assign")).unwrap();
        assert_eq!(seen, ServerHello::Legacy);
        // The sniffed bytes were pushed back: the stream reads from the
        // very beginning, as the legacy framing layer expects.
        let mut first = [0u8; 6];
        srv.read_exact_at(&mut first).unwrap();
        assert_eq!(first, [0, 0, 0, 64, 0xab, 0xcd]);
        h.join().unwrap();
    }

    #[test]
    fn busy_ack_maps_to_retryable_server_busy() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || client_hello(&cli, 0xfeed, MAX_VERSION));
        // The listener's refusal: the 9-byte ack with version byte 0,
        // written without reading the hello.
        (&srv).write_all(&[0u8; 9]).unwrap();
        let err = h.join().unwrap().unwrap_err();
        drop(srv);
        assert!(matches!(err, RpcError::ServerBusy), "{err}");
        assert!(err.is_retryable(), "accept rejection must be retryable");
    }

    #[test]
    fn magic_with_unsupported_version_is_a_protocol_error() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || {
            use std::io::Write;
            let mut hello = [0u8; 13];
            hello[..4].copy_from_slice(&MAGIC.to_be_bytes());
            hello[4] = 1; // claims a version predating the handshake
            (&cli).write_all(&hello).unwrap();
        });
        let err = server_accept(&srv, || 1).unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
        h.join().unwrap();
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let id = mint_client_id(i % 3);
            assert_ne!(id, 0);
            assert!(seen.insert(id), "collision at iteration {i}");
        }
    }
}
