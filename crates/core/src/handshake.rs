//! Connect-time handshake: version negotiation and client identity.
//!
//! Before any RPC frame (and, in RPCoIB mode, before the verbs end-point
//! exchange) the client sends a 13-byte hello over the freshly connected
//! stream — magic, frame version, and its `client_id` — and the server
//! answers with a 9-byte ack confirming the version and the identity the
//! connection will speak under.
//!
//! The `client_id` keys the server's retry cache, so it must be stable
//! across reconnects of one client and unique among all clients a server
//! ever sees. A client normally mints its own random id at construction
//! and presents it on every connect; a client that presents `0` is handed
//! a server-assigned id in the ack ("handed out at connect handshake"),
//! which it must re-present on subsequent connects.
//!
//! A peer that opens the connection with anything but the magic is not
//! speaking this protocol (or predates the handshake): the connection is
//! refused and counted as a frame error.

use std::io::Write;

use simnet::SimStream;

use crate::error::{RpcError, RpcResult};

/// `b"RPCB"` — first bytes on every connection.
pub const MAGIC: u32 = 0x5250_4342;

/// Current frame/wire version (see [`crate::frame`]).
pub const VERSION: u8 = 2;

/// Client side: present `client_id` (0 = please assign one), return the
/// id the server confirmed or assigned.
pub fn client_hello(stream: &SimStream, client_id: u64) -> RpcResult<u64> {
    let mut hello = [0u8; 13];
    hello[..4].copy_from_slice(&MAGIC.to_be_bytes());
    hello[4] = VERSION;
    hello[5..].copy_from_slice(&client_id.to_be_bytes());
    (&*stream)
        .write_all(&hello)
        .map_err(|e| RpcError::Io(e.to_string()))?;

    let mut ack = [0u8; 9];
    stream
        .read_exact_at(&mut ack)
        .map_err(|e| RpcError::Io(e.to_string()))?;
    if ack[0] != VERSION {
        return Err(RpcError::Protocol(format!(
            "server speaks frame version {}, this client speaks {VERSION}",
            ack[0]
        )));
    }
    let confirmed = u64::from_be_bytes(ack[1..9].try_into().unwrap());
    if confirmed == 0 {
        return Err(RpcError::Protocol("server confirmed client_id 0".into()));
    }
    Ok(confirmed)
}

/// Server side: read the hello, assign an id if the client asked for one
/// (via `assign`), ack, and return the connection's client id.
///
/// Errors distinguish a wrong-protocol peer (`Protocol` — count it) from
/// a peer that vanished mid-handshake (`Io` — routine churn).
pub fn server_accept(stream: &SimStream, assign: impl FnOnce() -> u64) -> RpcResult<u64> {
    let mut hello = [0u8; 13];
    stream
        .read_exact_at(&mut hello)
        .map_err(|e| RpcError::Io(e.to_string()))?;
    let magic = u32::from_be_bytes(hello[..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(RpcError::Protocol(format!(
            "bad handshake magic {magic:#010x}"
        )));
    }
    let peer_version = hello[4];
    if peer_version < VERSION {
        // V1 frames are still decoded, but the handshake itself only
        // exists since V2 — a peer that sends it speaks at least V2.
        return Err(RpcError::Protocol(format!(
            "unsupported peer frame version {peer_version}"
        )));
    }
    let presented = u64::from_be_bytes(hello[5..13].try_into().unwrap());
    let client_id = if presented == 0 { assign() } else { presented };

    let mut ack = [0u8; 9];
    ack[0] = VERSION;
    ack[1..].copy_from_slice(&client_id.to_be_bytes());
    (&*stream)
        .write_all(&ack)
        .map_err(|e| RpcError::Io(e.to_string()))?;
    Ok(client_id)
}

/// Mint a random, non-zero client id. Mixes wall-clock entropy, the
/// caller-supplied salt (e.g. an address), and a process-wide counter
/// through splitmix64, so two clients created in the same nanosecond on
/// different nodes still diverge.
pub fn mint_client_id(salt: u64) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    let raw = nanos ^ salt.rotate_left(17) ^ COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed);
    let mut z = raw.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{model, Fabric, SimAddr, SimListener};
    use std::thread;

    fn stream_pair() -> (SimStream, SimStream) {
        let fabric = Fabric::new(model::IPOIB_QDR);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 9100);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let f2 = fabric.clone();
        let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
        let (srv, _) = listener.accept().unwrap();
        (h.join().unwrap(), srv)
    }

    #[test]
    fn presented_id_is_confirmed() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || client_hello(&cli, 0xfeed).unwrap());
        let seen = server_accept(&srv, || panic!("must not assign")).unwrap();
        assert_eq!(seen, 0xfeed);
        assert_eq!(h.join().unwrap(), 0xfeed);
    }

    #[test]
    fn zero_id_gets_assigned() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || client_hello(&cli, 0).unwrap());
        let seen = server_accept(&srv, || 777).unwrap();
        assert_eq!(seen, 777);
        assert_eq!(h.join().unwrap(), 777, "assigned id travels back");
    }

    #[test]
    fn garbage_hello_is_a_protocol_error() {
        let (cli, srv) = stream_pair();
        let h = thread::spawn(move || {
            use std::io::Write;
            (&cli).write_all(&[0xff; 13]).unwrap();
        });
        let err = server_accept(&srv, || 1).unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
        h.join().unwrap();
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let id = mint_client_id(i % 3);
            assert_ne!(id, 0);
            assert!(seen.insert(id), "collision at iteration {i}");
        }
    }
}
