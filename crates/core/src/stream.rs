//! The RDMA-backed, Java-IO-compatible streams of Section III-A/B.
//!
//! [`RdmaOutputStream`] implements `std::io::Write` (hence
//! `wire::DataOutput`), so the unmodified `Writable` serialization code
//! writes **directly into a pooled, pre-registered memory region** — no
//! intermediate `DataOutputBuffer`, no `BufferedOutputStream` copy, no
//! JVM-heap → native copy. When the serialized object outgrows the buffer
//! the stream re-acquires at double the class (Section III-C) and, on
//! `finish`, reports the final size so the `<protocol, method>` history
//! converges.
//!
//! [`RdmaInputStream`] is the mirror image: it reads directly out of the
//! pooled buffer an incoming frame landed in.

use std::io::{self, Read, Write};

use bufpool::{PoolMem, PooledBuf, ShadowPool};
use simnet::MemoryRegion;

use crate::intern::MethodKey;

/// Size of the inline write-combining stage. `Writable` serialization
/// emits many 1–8 byte fields; batching them before touching the (locked)
/// region keeps the per-field cost at memcpy speed — the same reason real
/// HCAs are driven through write-combining mappings.
const STAGE_BYTES: usize = 512;

/// Output stream serializing straight into registered pool memory.
pub struct RdmaOutputStream {
    pool: ShadowPool<MemoryRegion>,
    buf: Option<PooledBuf<MemoryRegion>>,
    pos: usize,
    grows: u64,
    stage: [u8; STAGE_BYTES],
    stage_len: usize,
    key: MethodKey,
}

impl RdmaOutputStream {
    /// Acquire a history-sized buffer for a call of the given kind. The
    /// interned key is a `Copy` handle, so opening a stream allocates
    /// nothing beyond the pooled buffer itself.
    pub fn new(pool: &ShadowPool<MemoryRegion>, key: MethodKey) -> Self {
        let buf = pool.acquire(key.protocol(), key.method());
        RdmaOutputStream {
            pool: pool.clone(),
            buf: Some(buf),
            pos: 0,
            grows: 0,
            stage: [0u8; STAGE_BYTES],
            stage_len: 0,
            key,
        }
    }

    /// Bytes written so far.
    pub fn position(&self) -> usize {
        self.pos + self.stage_len
    }

    /// How many times the buffer had to be re-acquired at a larger class —
    /// the RPCoIB analogue of Algorithm 1's "memory adjustment times"
    /// (zero whenever the size history predicted correctly).
    pub fn grows(&self) -> u64 {
        self.grows
    }

    fn buf(&self) -> &PooledBuf<MemoryRegion> {
        self.buf.as_ref().expect("stream already finished")
    }

    fn buf_mut(&mut self) -> &mut PooledBuf<MemoryRegion> {
        self.buf.as_mut().expect("stream already finished")
    }

    /// Section III-C: "re-get a new buffer from the buffer pool by
    /// doubling buffer space until it is enough".
    fn ensure_capacity(&mut self, needed: usize) {
        while needed > self.buf().capacity() {
            let used = self.pos;
            let old = self.buf.take().expect("stream already finished");
            self.buf = Some(self.pool.grow(old, used));
            self.grows += 1;
        }
    }

    /// Push the staged bytes into the region.
    fn flush_stage(&mut self) {
        if self.stage_len == 0 {
            return;
        }
        self.ensure_capacity(self.pos + self.stage_len);
        let (pos, len) = (self.pos, self.stage_len);
        let stage = self.stage;
        self.buf_mut().mem_mut().put(pos, &stage[..len]);
        self.pos += len;
        self.stage_len = 0;
    }

    /// Finish serialization: record the final size in the pool history and
    /// hand the buffer (plus valid length) to the transport.
    pub fn finish(mut self) -> (PooledBuf<MemoryRegion>, usize, u64) {
        self.flush_stage();
        self.pool
            .record(self.key.protocol(), self.key.method(), self.pos.max(1));
        (
            self.buf.take().expect("stream already finished"),
            self.pos,
            self.grows,
        )
    }
}

impl Write for RdmaOutputStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.len() >= STAGE_BYTES {
            // Bulk write: bypass the stage.
            self.flush_stage();
            self.ensure_capacity(self.pos + data.len());
            let pos = self.pos;
            self.buf_mut().mem_mut().put(pos, data);
            self.pos += data.len();
        } else {
            if self.stage_len + data.len() > STAGE_BYTES {
                self.flush_stage();
            }
            self.stage[self.stage_len..self.stage_len + data.len()].copy_from_slice(data);
            self.stage_len += data.len();
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_stage();
        Ok(())
    }
}

impl std::fmt::Debug for RdmaOutputStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdmaOutputStream")
            .field("pos", &self.pos)
            .field("capacity", &self.buf.as_ref().map(|b| b.capacity()))
            .field("grows", &self.grows)
            .finish()
    }
}

/// Output stream serializing into a *chain* of pooled registered
/// segments — the scatter/gather producer for the one-sided bulk plane.
///
/// Behaves byte-for-byte like [`RdmaOutputStream`] while the message fits
/// one segment (same history-driven acquire, same doubling growth, same
/// `record` on finish), so eager-path sends are unchanged. Once the
/// current segment reaches `seg_limit` capacity and fills, it is *sealed*
/// into the segment list and a fresh `seg_limit`-class buffer continues
/// the stream. A multi-megabyte frame therefore occupies a handful of
/// recv-buffer-sized pooled segments — all pre-registered, all recycled —
/// instead of one jumbo staging buffer that would have to be allocated,
/// registered and memcpy'd before the RDMA write. The transport writes
/// the sealed segments into the peer's region back-to-back (gather), so
/// no staging copy ever happens.
pub struct RdmaGatherStream {
    pool: ShadowPool<MemoryRegion>,
    /// Sealed full segments, each holding exactly `seg_limit` bytes.
    segs: Vec<PooledBuf<MemoryRegion>>,
    buf: Option<PooledBuf<MemoryRegion>>,
    /// Valid bytes in the open segment (never exceeds `seg_limit`).
    pos: usize,
    /// Total bytes across sealed segments.
    sealed: usize,
    grows: u64,
    seg_limit: usize,
    stage: [u8; STAGE_BYTES],
    stage_len: usize,
    key: MethodKey,
}

impl RdmaGatherStream {
    /// Open a stream that seals segments at `seg_limit` bytes. `segs` is
    /// the (empty) vector sealed segments are pushed into — callers pass
    /// a recycled scratch vector so steady-state sends allocate nothing.
    pub fn new(
        pool: &ShadowPool<MemoryRegion>,
        key: MethodKey,
        seg_limit: usize,
        segs: Vec<PooledBuf<MemoryRegion>>,
    ) -> Self {
        debug_assert!(segs.is_empty());
        // History-driven acquire, capped at the segment class: a method
        // whose history says "2 MB" must start at one segment, not pull a
        // jumbo buffer off the shelf it will immediately outgrow-by-parts.
        let buf = match pool.recorded_class(key.protocol(), key.method()) {
            Some(c) if pool.native().classes().capacity(c) > seg_limit => {
                pool.acquire_size(seg_limit)
            }
            _ => pool.acquire(key.protocol(), key.method()),
        };
        RdmaGatherStream {
            pool: pool.clone(),
            segs,
            buf: Some(buf),
            pos: 0,
            sealed: 0,
            grows: 0,
            seg_limit,
            stage: [0u8; STAGE_BYTES],
            stage_len: 0,
            key,
        }
    }

    /// Bytes written so far.
    pub fn position(&self) -> usize {
        self.sealed + self.pos + self.stage_len
    }

    /// Doubling re-acquires, as in [`RdmaOutputStream::grows`].
    pub fn grows(&self) -> u64 {
        self.grows
    }

    fn buf(&self) -> &PooledBuf<MemoryRegion> {
        self.buf.as_ref().expect("stream already finished")
    }

    fn buf_mut(&mut self) -> &mut PooledBuf<MemoryRegion> {
        self.buf.as_mut().expect("stream already finished")
    }

    /// Append bytes, growing within the open segment up to `seg_limit`
    /// and sealing full segments as needed.
    fn push_bytes(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            if self.pos >= self.seg_limit {
                // Open segment is full: seal it, continue in a fresh one.
                let full = self.buf.take().expect("stream already finished");
                self.segs.push(full);
                self.sealed += self.pos;
                self.pos = 0;
                self.buf = Some(self.pool.acquire_size(self.seg_limit));
            }
            let target = (self.pos + data.len()).min(self.seg_limit);
            while self.buf().capacity() < target {
                let used = self.pos;
                let old = self.buf.take().expect("stream already finished");
                self.buf = Some(self.pool.grow(old, used));
                self.grows += 1;
            }
            let n = data
                .len()
                .min(self.buf().capacity().min(self.seg_limit) - self.pos);
            let pos = self.pos;
            self.buf_mut().mem_mut().put(pos, &data[..n]);
            self.pos += n;
            data = &data[n..];
        }
    }

    fn flush_stage(&mut self) {
        if self.stage_len == 0 {
            return;
        }
        let len = self.stage_len;
        let stage = self.stage;
        self.stage_len = 0;
        self.push_bytes(&stage[..len]);
    }

    /// Finish: record the *total* size in the history and return the
    /// ordered segment chain plus total length and grow count. Every
    /// segment but the last holds exactly `seg_limit` valid bytes; the
    /// last holds the remainder.
    pub fn finish(mut self) -> (Vec<PooledBuf<MemoryRegion>>, usize, u64) {
        self.flush_stage();
        let total = self.sealed + self.pos;
        self.pool
            .record(self.key.protocol(), self.key.method(), total.max(1));
        let mut segs = std::mem::take(&mut self.segs);
        segs.push(self.buf.take().expect("stream already finished"));
        (segs, total, self.grows)
    }
}

impl Write for RdmaGatherStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.len() >= STAGE_BYTES {
            self.flush_stage();
            self.push_bytes(data);
        } else {
            if self.stage_len + data.len() > STAGE_BYTES {
                self.flush_stage();
            }
            self.stage[self.stage_len..self.stage_len + data.len()].copy_from_slice(data);
            self.stage_len += data.len();
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_stage();
        Ok(())
    }
}

impl std::fmt::Debug for RdmaGatherStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdmaGatherStream")
            .field("sealed_segs", &self.segs.len())
            .field("pos", &self.pos)
            .field("seg_limit", &self.seg_limit)
            .field("grows", &self.grows)
            .finish()
    }
}

/// Input stream reading directly from a pooled receive buffer.
pub struct RdmaInputStream {
    buf: PooledBuf<MemoryRegion>,
    len: usize,
    pos: usize,
}

impl RdmaInputStream {
    /// Wrap a pooled buffer holding `len` valid bytes.
    pub fn new(buf: PooledBuf<MemoryRegion>, len: usize) -> Self {
        RdmaInputStream { buf, len, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Reclaim the underlying buffer (returned to the pool on drop).
    pub fn into_inner(self) -> PooledBuf<MemoryRegion> {
        self.buf
    }
}

impl Read for RdmaInputStream {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let n = self.remaining().min(out.len());
        if n == 0 {
            return Ok(0);
        }
        self.buf.mem().get(self.pos, &mut out[..n]);
        self.pos += n;
        Ok(n)
    }
}

/// Reader over a sub-range of a raw [`MemoryRegion`] — used to deserialize
/// a large frame in place, straight out of the region the peer
/// RDMA-wrote it into.
pub struct RegionReader<'a> {
    region: &'a MemoryRegion,
    pos: usize,
    end: usize,
}

impl<'a> RegionReader<'a> {
    /// Read `[0, len)` of `region`.
    pub fn new(region: &'a MemoryRegion, len: usize) -> Self {
        RegionReader {
            region,
            pos: 0,
            end: len,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }
}

impl Read for RegionReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let n = self.remaining().min(out.len());
        if n == 0 {
            return Ok(0);
        }
        self.region
            .read_at(self.pos, &mut out[..n])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufpool::{NativePool, RdmaMemFactory, SizeClasses};
    use simnet::{model, Fabric, RdmaDevice};
    use wire::{DataInput, DataOutput};

    fn rdma_pool() -> ShadowPool<MemoryRegion> {
        let fabric = Fabric::new(model::IB_QDR_VERBS);
        let node = fabric.add_node();
        let dev = RdmaDevice::open(&fabric, node).unwrap();
        let factory = RdmaMemFactory::new(dev);
        ShadowPool::new(
            NativePool::new(SizeClasses::up_to(1 << 20), move |len| {
                factory.allocate(len)
            }),
            true,
        )
    }

    #[test]
    fn serialize_into_registered_memory() {
        let pool = rdma_pool();
        let mut out = RdmaOutputStream::new(&pool, crate::intern::method_key("p", "m"));
        out.write_i32(7).unwrap();
        out.write_string("direct to the HCA").unwrap();
        let (buf, len, grows) = out.finish();
        assert_eq!(grows, 0, "fits in the smallest class");
        let mut input = RdmaInputStream::new(buf, len);
        assert_eq!(input.read_i32().unwrap(), 7);
        assert_eq!(input.read_string().unwrap(), "direct to the HCA");
        assert_eq!(input.remaining(), 0);
    }

    #[test]
    fn growth_is_doubling_and_recorded() {
        let pool = rdma_pool();
        let mut out = RdmaOutputStream::new(&pool, crate::intern::method_key("p", "big"));
        let payload = vec![0x5au8; 1000];
        out.write_all(&payload).unwrap();
        // 128 -> 256 -> 512 -> 1024: three grows.
        assert_eq!(out.grows(), 3);
        let (buf, len, _) = out.finish();
        assert_eq!(len, 1000);
        assert_eq!(buf.capacity(), 1024);
        drop(buf);

        // Next stream of the same kind starts at the learned class.
        let out2 = RdmaOutputStream::new(&pool, crate::intern::method_key("p", "big"));
        assert_eq!(out2.buf().capacity(), 1024);
    }

    #[test]
    fn history_predicts_after_first_call() {
        let pool = rdma_pool();
        for round in 0..3 {
            let mut out =
                RdmaOutputStream::new(&pool, crate::intern::method_key("proto", "statusUpdate"));
            out.write_all(&[0u8; 700]).unwrap();
            let expected_grows = if round == 0 { 3 } else { 0 };
            assert_eq!(out.grows(), expected_grows, "round {round}");
            let (_buf, len, _) = out.finish();
            assert_eq!(len, 700);
        }
    }

    #[test]
    fn gather_stream_is_single_segment_for_small_messages() {
        let pool = rdma_pool();
        let key = crate::intern::method_key("p", "small");
        let mut out = RdmaGatherStream::new(&pool, key, 4096, Vec::new());
        out.write_i32(7).unwrap();
        out.write_string("direct to the HCA").unwrap();
        let (segs, len, grows) = out.finish();
        assert_eq!(segs.len(), 1);
        assert_eq!(grows, 0);
        let mut input = RdmaInputStream::new(segs.into_iter().next().unwrap(), len);
        assert_eq!(input.read_i32().unwrap(), 7);
        assert_eq!(input.read_string().unwrap(), "direct to the HCA");
    }

    #[test]
    fn gather_stream_seals_full_segments_in_order() {
        let pool = rdma_pool();
        let key = crate::intern::method_key("p", "bulk");
        let mut out = RdmaGatherStream::new(&pool, key, 1024, Vec::new());
        let payload: Vec<u8> = (0..2500u32).map(|i| (i % 251) as u8).collect();
        out.write_all(&payload).unwrap();
        let (segs, len, _) = out.finish();
        assert_eq!(len, 2500);
        assert_eq!(segs.len(), 3, "two sealed 1024B segments plus the tail");
        let mut reassembled = Vec::new();
        let mut remaining = len;
        for seg in &segs {
            let take = remaining.min(1024);
            let mut chunk = vec![0u8; take];
            seg.mem().get(0, &mut chunk);
            reassembled.extend_from_slice(&chunk);
            remaining -= take;
        }
        assert_eq!(reassembled, payload);
    }

    #[test]
    fn gather_stream_caps_history_acquire_at_the_segment_class() {
        let pool = rdma_pool();
        let key = crate::intern::method_key("p", "huge");
        // Teach the history that this method serializes to ~300KB.
        pool.record(key.protocol(), key.method(), 300 * 1024);
        let out = RdmaGatherStream::new(&pool, key, 4096, Vec::new());
        assert!(
            out.buf().capacity() <= 4096,
            "history must not pull a jumbo buffer into the gather path"
        );
    }

    #[test]
    fn region_reader_reads_in_place() {
        let fabric = Fabric::new(model::IB_QDR_VERBS);
        let node = fabric.add_node();
        let dev = RdmaDevice::open(&fabric, node).unwrap();
        let region = dev.register(256);
        let mut bytes = Vec::new();
        bytes.write_string("in place").unwrap();
        region.write_at(0, &bytes).unwrap();
        let mut reader = RegionReader::new(&region, bytes.len());
        assert_eq!(reader.read_string().unwrap(), "in place");
        assert_eq!(reader.remaining(), 0);
    }
}
