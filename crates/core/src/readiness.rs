//! The reader shards' epoll-style readiness plane.
//!
//! Up to PR 7 a reader shard *swept* its connection list, calling
//! [`crate::transport::Conn::poll_ready`] on every connection per
//! iteration — 50k mostly-idle connections cost 50k probes per sweep.
//! This module inverts the dependency, the way `epoll` inverts `select`:
//! each connection owns a [`WakeState`] whose hook the transport fires
//! when input becomes observable (bytes arrive, EOF hits, a verbs recv
//! completes, a local close), and the shard blocks on its [`ReadyQueue`]
//! of *woken* connections. Idle connections are never visited, so the
//! shard's steady-state cost is proportional to traffic, not population.
//!
//! ## The wake-list contract
//!
//! * **Level-triggered truth, edge-triggered delivery.** A wake is only
//!   a hint; the shard re-checks `poll_ready` after every pop, so
//!   duplicate, coalesced, or spurious wakes are harmless. Conversely,
//!   the shard re-arms (re-enqueues) any connection that still has input
//!   after a bounded read burst, so a single edge can never strand
//!   residual bytes — the exact level-trigger re-arm discipline of an
//!   epoll loop reading less than the full buffer.
//! * **No lost wakeups.** [`WakeState::wake`] enqueues unless the token
//!   is already queued (one dedup flag flip per edge); the shard clears
//!   the flag *before* it starts reading ([`WakeState::begin_poll`]), so
//!   an edge racing the read re-enqueues instead of vanishing. At
//!   registration the shard arms the hook first and then probes
//!   `poll_ready` once, catching input that arrived pre-arm.
//! * **Stale tokens are inert.** Tokens are generation-stamped
//!   ([`token`]): slot index in the low half, the slot's reuse
//!   generation in the high half. When a connection is torn down its
//!   slot's generation is bumped, so a token queued by a dying
//!   connection's last gasp (its own `close()` fires the hook) can never
//!   index a recycled slot.
//! * **Wakes are charge-free and non-blocking.** Hooks run on the
//!   *producer's* thread (the peer's writer, `simnet`'s completion
//!   delivery); they flip an atomic and push onto a mutex-guarded queue,
//!   never touch the modeled-time ledger, and never call back into the
//!   transport.
//!
//! Shutdown is event-shaped too: [`ReadyQueue::close`] wakes every
//! blocked pop immediately, so `Server::drain` does not wait out a poll
//! timeout.
//!
//! The types are public so the `connections` bench figure and the
//! readiness/sweep equivalence tests drive the *real* structures rather
//! than a model of them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::metrics::ShardStats;

/// Pseudo-token the accept path pushes after handing a new connection to
/// a shard's registration channel: "wake up and adopt". Never counted in
/// queue-depth stats and never generation-checked.
pub const TOKEN_REGISTER: u64 = u64::MAX;

/// Compose a wake token from a shard-local slot index and that slot's
/// reuse generation.
pub fn token(slot: usize, gen: u32) -> u64 {
    (slot as u64) | (u64::from(gen) << 32)
}

/// The slot index half of a token.
pub fn token_slot(tok: u64) -> usize {
    (tok & 0xFFFF_FFFF) as usize
}

/// The generation half of a token.
pub fn token_gen(tok: u64) -> u32 {
    (tok >> 32) as u32
}

/// Result of one [`ReadyQueue::pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pop {
    /// A wake token (or [`TOKEN_REGISTER`]).
    Token(u64),
    /// Nothing arrived within the timeout; the caller re-checks its
    /// shutdown flags and pops again.
    TimedOut,
    /// The queue is closed and empty: the shard should exit. Queued
    /// tokens are always drained before this is reported.
    Closed,
}

struct QueueState {
    queue: VecDeque<u64>,
    closed: bool,
}

/// One reader shard's wake list: an MPSC queue of conn tokens, pushed by
/// transport hooks (any thread) and popped by the owning shard.
pub struct ReadyQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    /// When attached (the server's per-shard stats), real tokens feed the
    /// shard's queue-depth gauge and high-water mark.
    stats: Option<Arc<ShardStats>>,
}

impl ReadyQueue {
    pub fn new(stats: Option<Arc<ShardStats>>) -> ReadyQueue {
        ReadyQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            stats,
        }
    }

    /// Enqueue a token and wake one blocked pop. Non-blocking, no modeled
    /// charge — safe to call from a peer's writer thread.
    pub fn push(&self, tok: u64) {
        {
            let mut st = self.state.lock();
            st.queue.push_back(tok);
        }
        if tok != TOKEN_REGISTER {
            if let Some(stats) = &self.stats {
                stats.enqueued();
            }
        }
        self.cv.notify_one();
    }

    /// Block for the next token, up to `timeout`. Tokens still queued at
    /// close time are drained before [`Pop::Closed`] is reported.
    pub fn pop(&self, timeout: Duration) -> Pop {
        let mut st = self.state.lock();
        loop {
            if let Some(tok) = st.queue.pop_front() {
                drop(st);
                self.count_dequeue(tok);
                return Pop::Token(tok);
            }
            if st.closed {
                return Pop::Closed;
            }
            if self.cv.wait_for(&mut st, timeout).timed_out() {
                // One last look: a push may have slipped in as the wait
                // expired.
                if let Some(tok) = st.queue.pop_front() {
                    drop(st);
                    self.count_dequeue(tok);
                    return Pop::Token(tok);
                }
                return if st.closed {
                    Pop::Closed
                } else {
                    Pop::TimedOut
                };
            }
        }
    }

    /// Non-blocking pop (the virtual-time bench harness's scheduler).
    pub fn try_pop(&self) -> Option<u64> {
        let tok = self.state.lock().queue.pop_front();
        if let Some(tok) = tok {
            self.count_dequeue(tok);
        }
        tok
    }

    /// Work-stealing pop for a *sibling* shard: take the newest real
    /// token from the **back** of this queue (the owner drains the
    /// front, so contention on a hot queue is minimal and the owner's
    /// FIFO view of the rest is untouched). [`TOKEN_REGISTER`] is never
    /// stolen — adoption must happen on the owning shard, whose slot
    /// table the registration targets — and is left in place. Returns
    /// `None` when the queue is empty or holds only register
    /// pseudo-tokens at the back.
    pub fn steal(&self) -> Option<u64> {
        let tok = {
            let mut st = self.state.lock();
            match st.queue.back() {
                Some(&t) if t != TOKEN_REGISTER => st.queue.pop_back(),
                _ => None,
            }
        }?;
        self.count_dequeue(tok);
        Some(tok)
    }

    /// Close the queue: every blocked and future pop drains what is
    /// queued and then reports [`Pop::Closed`]. This is how `drain` and
    /// `stop` wake shards promptly instead of waiting out a timeout.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }

    /// Tokens currently queued (register pseudo-tokens included).
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn count_dequeue(&self, tok: u64) {
        if tok != TOKEN_REGISTER {
            if let Some(stats) = &self.stats {
                stats.dequeued();
            }
        }
    }
}

impl std::fmt::Debug for ReadyQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "ReadyQueue(len={}, closed={})",
            st.queue.len(),
            st.closed
        )
    }
}

/// Per-connection wake bookkeeping: the connection's token plus the
/// dedup flag that collapses edge storms into at most one queued token.
pub struct WakeState {
    tok: u64,
    /// True while the token sits in the queue (or the shard is between
    /// popping it and `begin_poll`). Edges arriving in that window are
    /// represented by the already-queued token.
    queued: AtomicBool,
    queue: Arc<ReadyQueue>,
}

impl WakeState {
    pub fn new(tok: u64, queue: Arc<ReadyQueue>) -> WakeState {
        WakeState {
            tok,
            queued: AtomicBool::new(false),
            queue,
        }
    }

    /// The readiness edge: enqueue this connection's token unless it is
    /// already queued. Called from transport hooks (any thread) and from
    /// the shard's own level-trigger re-arm.
    pub fn wake(&self) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.queue.push(self.tok);
        }
    }

    /// Called by the shard after popping this token, *before* it starts
    /// reading: clears the dedup flag so an edge that fires mid-read
    /// re-enqueues (the epoll discipline — consume the event before
    /// consuming the data).
    pub fn begin_poll(&self) {
        self.queued.store(false, Ordering::Release);
    }

    pub fn token(&self) -> u64 {
        self.tok
    }
}

impl std::fmt::Debug for WakeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WakeState(token={:#x}, queued={})",
            self.tok,
            self.queued.load(Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn tokens_roundtrip_slot_and_generation() {
        let t = token(12345, 7);
        assert_eq!(token_slot(t), 12345);
        assert_eq!(token_gen(t), 7);
        assert_ne!(token(3, 0), token(3, 1), "generations distinguish reuse");
    }

    #[test]
    fn wake_dedups_until_begin_poll() {
        let q = Arc::new(ReadyQueue::new(None));
        let ws = WakeState::new(token(4, 0), Arc::clone(&q));
        ws.wake();
        ws.wake();
        ws.wake();
        assert_eq!(q.len(), 1, "an edge storm queues one token");
        assert_eq!(q.try_pop(), Some(token(4, 0)));
        // Not re-armed yet: further wakes are still absorbed.
        ws.wake();
        assert_eq!(q.len(), 0);
        ws.begin_poll();
        ws.wake();
        assert_eq!(q.try_pop(), Some(token(4, 0)), "re-armed wake queues");
    }

    #[test]
    fn pop_blocks_until_push_and_close_wakes_promptly() {
        let q = Arc::new(ReadyQueue::new(None));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop(Duration::from_secs(30)));
        thread::sleep(Duration::from_millis(20));
        q.push(9);
        assert_eq!(h.join().unwrap(), Pop::Token(9));

        // Close wakes a blocked pop without waiting out its timeout.
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            let start = Instant::now();
            let r = q2.pop(Duration::from_secs(30));
            (r, start.elapsed())
        });
        thread::sleep(Duration::from_millis(20));
        q.close();
        let (r, waited) = h.join().unwrap();
        assert_eq!(r, Pop::Closed);
        assert!(
            waited < Duration::from_secs(5),
            "close must not wait out the timeout"
        );
    }

    #[test]
    fn close_drains_queued_tokens_first() {
        let q = ReadyQueue::new(None);
        q.push(1);
        q.push(2);
        q.close();
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Token(1));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Token(2));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn timeout_reports_timed_out() {
        let q = ReadyQueue::new(None);
        assert_eq!(q.pop(Duration::from_millis(5)), Pop::TimedOut);
    }

    #[test]
    fn steal_takes_newest_and_leaves_owner_fifo_intact() {
        let q = ReadyQueue::new(None);
        q.push(token(1, 0));
        q.push(token(2, 0));
        q.push(token(3, 0));
        // The thief takes the back…
        assert_eq!(q.steal(), Some(token(3, 0)));
        // …and the owner still sees the remaining tokens in order.
        assert_eq!(q.try_pop(), Some(token(1, 0)));
        assert_eq!(q.try_pop(), Some(token(2, 0)));
        assert_eq!(q.steal(), None, "empty queue yields nothing");
    }

    #[test]
    fn steal_never_takes_register_tokens() {
        let q = ReadyQueue::new(None);
        q.push(TOKEN_REGISTER);
        assert_eq!(q.steal(), None, "registration must stay on its owner");
        assert_eq!(q.len(), 1, "the pseudo-token is left in place");
        // A real token pushed after it is fair game…
        q.push(token(5, 0));
        assert_eq!(q.steal(), Some(token(5, 0)));
        // …and the register token is still there for the owner.
        assert_eq!(q.try_pop(), Some(TOKEN_REGISTER));
    }

    #[test]
    fn steal_counts_against_depth_stats() {
        let stats = Arc::new(ShardStats::default());
        let q = ReadyQueue::new(Some(Arc::clone(&stats)));
        q.push(token(1, 0));
        q.push(token(2, 0));
        assert_eq!(q.steal(), Some(token(2, 0)));
        assert_eq!(q.try_pop(), Some(token(1, 0)));
        // Depth gauge returns to zero: steals are proper dequeues.
        assert_eq!(q.len(), 0);
    }
}
