//! The RPC client: caller threads plus one Connection thread per server
//! (Section III-D keeps Hadoop's two-thread client design).
//!
//! Callers serialize and transmit on their own thread (so per-call
//! serialization cost lands on the caller, as in Hadoop), register the
//! call id in the pending table, and park until the Connection thread —
//! which owns the receive side — routes the response back.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use simnet::{Fabric, NodeId, SimAddr, SimStream};
use wire::Writable;

use crate::config::RpcConfig;
use crate::error::{RpcError, RpcResult};
use crate::frame::{read_response_header, write_request, Payload};
use crate::metrics::{CallProfile, MetricsRegistry, RecvProfile as MetricsRecv};
use crate::transport::rdma::{IbContext, RdmaConn};
use crate::transport::socket::SocketConn;
use crate::transport::Conn;

const IDLE_SLICE: Duration = Duration::from_millis(100);

struct PendingCall {
    tx: Sender<RpcResult<Payload>>,
    protocol: String,
    method: String,
}

struct ClientConnection {
    conn: Arc<dyn Conn>,
    server: SimAddr,
    pending: Mutex<HashMap<i32, PendingCall>>,
    broken: AtomicBool,
}

impl ClientConnection {
    fn fail_all(&self, err: RpcError) {
        self.broken.store(true, Ordering::Release);
        for (_, call) in self.pending.lock().drain() {
            let _ = call.tx.send(Err(err.clone()));
        }
    }
}

struct ClientInner {
    fabric: Fabric,
    node: NodeId,
    cfg: RpcConfig,
    ib: Option<IbContext>,
    conns: Mutex<HashMap<SimAddr, Arc<ClientConnection>>>,
    /// Serializes connection establishment: concurrent first callers must
    /// not each bootstrap a connection (an RPCoIB bootstrap registers a
    /// receive ring and a large region on *both* sides — losers of a
    /// connect race would leak all of it as zombies).
    connect_lock: Mutex<()>,
    next_call: AtomicI32,
    metrics: MetricsRegistry,
    stopped: AtomicBool,
    /// Servers this client has connected to at least once; a later
    /// establishment to one of them is a *re*connect (counted).
    ever_connected: Mutex<HashSet<SimAddr>>,
}

impl ClientInner {
    /// Drop `connection` from the cache — but only if it is still the
    /// cached entry. A concurrent caller may already have replaced it
    /// with a fresh, healthy connection that must not be torn down.
    fn forget_connection(&self, connection: &Arc<ClientConnection>) {
        let mut conns = self.conns.lock();
        if let Some(current) = conns.get(&connection.server) {
            if Arc::ptr_eq(current, connection) {
                conns.remove(&connection.server);
            }
        }
    }

    /// Mark `connection` unusable and evict it from the cache.
    fn invalidate(&self, connection: &Arc<ClientConnection>) {
        connection.broken.store(true, Ordering::Release);
        self.forget_connection(connection);
    }
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        // Last user-held handle gone: close every connection so the
        // per-connection threads exit and release their buffers. The
        // threads only hold `Weak` references, so this does run.
        self.stopped.store(true, Ordering::Release);
        for (_, conn) in self.conns.lock().drain() {
            conn.conn.close();
            conn.fail_all(RpcError::ConnectionClosed);
        }
    }
}

/// An RPC client anchored on one simulated node.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ClientInner>,
}

impl Client {
    /// Create a client on `node`. In RPCoIB mode this opens the HCA and
    /// pre-registers the buffer pool.
    pub fn new(fabric: &Fabric, node: NodeId, cfg: RpcConfig) -> RpcResult<Client> {
        cfg.validate().map_err(RpcError::Config)?;
        let ib = if cfg.ib_enabled {
            Some(IbContext::new(fabric, node, &cfg)?)
        } else {
            None
        };
        let trace = cfg.trace_sizes;
        Ok(Client {
            inner: Arc::new(ClientInner {
                fabric: fabric.clone(),
                node,
                cfg,
                ib,
                conns: Mutex::new(HashMap::new()),
                connect_lock: Mutex::new(()),
                next_call: AtomicI32::new(1),
                metrics: MetricsRegistry::new(trace),
                stopped: AtomicBool::new(false),
                ever_connected: Mutex::new(HashSet::new()),
            }),
        })
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Client-side metrics (Table I and Figure 3 read these).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// RPCoIB buffer-pool counters (hits, misses, returns, oversize);
    /// `None` on the socket transport.
    pub fn pool_stats(&self) -> Option<(u64, u64, u64, u64)> {
        self.inner.ib.as_ref().map(|ib| ib.pool_stats())
    }

    /// Number of cached (possibly broken) server connections.
    pub fn connection_count(&self) -> usize {
        self.inner.conns.lock().len()
    }

    /// Invoke `protocol.method(request)` on the server at `server` and
    /// deserialize the response into `Resp`.
    pub fn call<Req, Resp>(
        &self,
        server: SimAddr,
        protocol: &str,
        method: &str,
        request: &Req,
    ) -> RpcResult<Resp>
    where
        Req: Writable,
        Resp: Writable + Default,
    {
        let payload = self.call_raw(server, protocol, method, request)?;
        let result = (|| {
            let mut reader = payload.reader();
            let header =
                read_response_header(&mut reader).map_err(|e| RpcError::Protocol(e.to_string()))?;
            if header.ok {
                let mut resp = Resp::default();
                resp.read_fields(&mut reader)
                    .map_err(|e| RpcError::Protocol(e.to_string()))?;
                Ok(resp)
            } else {
                let mut message = String::new();
                message
                    .read_fields(&mut reader)
                    .map_err(|e| RpcError::Protocol(e.to_string()))?;
                Err(RpcError::Remote(message))
            }
        })();
        if result.is_err() {
            // A remote exception (or unparseable response) is as
            // definitive a failure as exhausted retries: count it.
            self.inner.metrics.inc_failed_calls();
        }
        result
    }

    /// Like [`Client::call`] but returns the raw response payload
    /// (header included), for callers that parse responses themselves.
    ///
    /// Drives the configured [`crate::RetryPolicy`]: each attempt gets at
    /// most `call_timeout` (capped by the remaining overall deadline, if
    /// one is set); retryable failures re-attempt after a jittered
    /// backoff, re-establishing the connection when the previous attempt
    /// broke it. Non-retryable errors, exhausted attempts, and an
    /// exhausted deadline fail the call (counted in
    /// [`MetricsRegistry::counters`]).
    pub fn call_raw<Req>(
        &self,
        server: SimAddr,
        protocol: &str,
        method: &str,
        request: &Req,
    ) -> RpcResult<Payload>
    where
        Req: Writable,
    {
        let policy = self.inner.cfg.retry.clone();
        let start = Instant::now();
        // Decorrelates this call's backoff jitter from concurrent calls'.
        let entropy = self.inner.next_call.load(Ordering::Relaxed) as u64;
        let mut attempt = 0u32;
        let err = loop {
            attempt += 1;
            let mut attempt_timeout = self.inner.cfg.call_timeout;
            if let Some(deadline) = policy.deadline {
                let remaining = deadline.saturating_sub(start.elapsed());
                if remaining.is_zero() {
                    break RpcError::Timeout;
                }
                attempt_timeout = attempt_timeout.min(remaining);
            }
            match self.try_call(server, protocol, method, request, attempt_timeout) {
                Ok(payload) => return Ok(payload),
                Err(e) => {
                    let exhausted = attempt >= policy.max_attempts
                        || self.inner.stopped.load(Ordering::Acquire);
                    if !e.is_retryable() || exhausted {
                        break e;
                    }
                    let mut pause = policy.backoff(attempt, entropy);
                    if let Some(deadline) = policy.deadline {
                        let remaining = deadline.saturating_sub(start.elapsed());
                        if remaining.is_zero() {
                            break e;
                        }
                        pause = pause.min(remaining);
                    }
                    self.inner.metrics.inc_retries();
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        };
        self.inner.metrics.inc_failed_calls();
        Err(err)
    }

    fn try_call<Req>(
        &self,
        server: SimAddr,
        protocol: &str,
        method: &str,
        request: &Req,
        attempt_timeout: Duration,
    ) -> RpcResult<Payload>
    where
        Req: Writable,
    {
        if self.inner.stopped.load(Ordering::Acquire) {
            return Err(RpcError::ConnectionClosed);
        }
        let connection = self.get_connection(server)?;
        let call_id = self.inner.next_call.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        connection.pending.lock().insert(
            call_id,
            PendingCall {
                tx,
                protocol: protocol.to_owned(),
                method: method.to_owned(),
            },
        );

        let profile = match connection.conn.send_msg(protocol, method, &mut |out| {
            write_request(out, call_id, protocol, method, request)
        }) {
            Ok(p) => p,
            Err(e) => {
                connection.pending.lock().remove(&call_id);
                if e.invalidates_connection() {
                    self.inner.invalidate(&connection);
                    connection.fail_all(e.clone());
                }
                return Err(e);
            }
        };
        self.inner.metrics.record_call(
            protocol,
            method,
            CallProfile {
                serialize_ns: profile.serialize_ns,
                send_ns: profile.send_ns,
                adjustments: profile.adjustments,
                size: profile.size,
            },
        );

        match rx.recv_timeout(attempt_timeout) {
            Ok(Ok(payload)) => Ok(payload),
            Ok(Err(e)) => {
                // Delivered by the Connection thread's fail_all: the
                // connection itself is gone; make sure it is also evicted
                // before a retry reconnects.
                if e.invalidates_connection() {
                    self.inner.invalidate(&connection);
                }
                Err(e)
            }
            Err(_) => {
                // No response in time. The connection may be fine (slow
                // server), so it stays cached; only this call gives up.
                connection.pending.lock().remove(&call_id);
                Err(RpcError::Timeout)
            }
        }
    }

    fn get_connection(&self, server: SimAddr) -> RpcResult<Arc<ClientConnection>> {
        {
            let conns = self.inner.conns.lock();
            if let Some(conn) = conns.get(&server) {
                if !conn.broken.load(Ordering::Acquire) {
                    return Ok(Arc::clone(conn));
                }
            }
        }
        // Establish under the connect lock; a caller that raced in behind
        // the winner finds the fresh connection on the re-check and never
        // bootstraps a duplicate.
        let _guard = self.inner.connect_lock.lock();
        {
            let conns = self.inner.conns.lock();
            if let Some(conn) = conns.get(&server) {
                if !conn.broken.load(Ordering::Acquire) {
                    return Ok(Arc::clone(conn));
                }
            }
        }
        let stream = SimStream::connect(&self.inner.fabric, self.inner.node, server)?;
        let conn: Arc<dyn Conn> = match &self.inner.ib {
            Some(ctx) => Arc::new(RdmaConn::bootstrap(&stream, ctx, &self.inner.cfg)?),
            None => Arc::new(SocketConn::new(stream, wire::buffer::INITIAL_CAPACITY)),
        };
        let connection = Arc::new(ClientConnection {
            conn,
            server,
            pending: Mutex::new(HashMap::new()),
            broken: AtomicBool::new(false),
        });
        if !self.inner.ever_connected.lock().insert(server) {
            // Not this client's first connection to `server`: a recovery.
            self.inner.metrics.inc_reconnects();
        }
        self.inner
            .conns
            .lock()
            .insert(server, Arc::clone(&connection));

        // The Connection thread: owns the receive side for this server.
        // It holds only a Weak reference to the client, so dropping the
        // last Client handle tears the thread (and the connection's
        // buffers) down.
        let inner = Arc::downgrade(&self.inner);
        let connection2 = Arc::clone(&connection);
        std::thread::Builder::new()
            .name(format!("rpc-connection-{server}"))
            .spawn(move || connection_loop(inner, connection2))
            .expect("spawn connection thread");
        Ok(connection)
    }

    /// Close all connections; subsequent calls fail.
    pub fn shutdown(&self) {
        if self.inner.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        for (_, conn) in self.inner.conns.lock().drain() {
            conn.conn.close();
            conn.fail_all(RpcError::ConnectionClosed);
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("node", &self.inner.node)
            .field("ib", &self.inner.ib.is_some())
            .finish()
    }
}

fn connection_loop(inner: std::sync::Weak<ClientInner>, connection: Arc<ClientConnection>) {
    loop {
        // Upgrade per iteration: if every user-facing Client handle is
        // gone, stop polling and let the connection (and its registered
        // buffers) drop.
        let Some(inner) = inner.upgrade() else {
            connection.fail_all(RpcError::ConnectionClosed);
            return;
        };
        if inner.stopped.load(Ordering::Acquire) || connection.broken.load(Ordering::Acquire) {
            inner.forget_connection(&connection);
            connection.fail_all(RpcError::ConnectionClosed);
            return;
        }
        let (payload, recv) = match connection.conn.recv_msg(IDLE_SLICE) {
            Ok(v) => v,
            Err(RpcError::Timeout) => continue,
            Err(e) => {
                // Evict before failing the waiters, so a retrying caller
                // that wakes on fail_all finds the cache already clean
                // and reconnects instead of reusing this dead entry.
                inner.invalidate(&connection);
                connection.fail_all(e);
                return;
            }
        };
        let header = match read_response_header(&mut payload.reader()) {
            Ok(h) => h,
            Err(_) => {
                inner.invalidate(&connection);
                connection.conn.close();
                connection.fail_all(RpcError::Protocol("corrupt response frame".into()));
                return;
            }
        };
        let pending = connection.pending.lock().remove(&header.call_id);
        if let Some(call) = pending {
            inner.metrics.record_recv(
                &call.protocol,
                &call.method,
                MetricsRecv {
                    alloc_ns: recv.alloc_ns,
                    total_ns: recv.total_ns,
                    size: recv.size,
                },
            );
            let _ = call.tx.send(Ok(payload));
        }
        // else: the caller timed out and went away; drop the response.
    }
}
