//! The RPC client: caller threads plus one Connection thread per server
//! (Section III-D keeps Hadoop's two-thread client design).
//!
//! Callers serialize and transmit on their own thread (so per-call
//! serialization cost lands on the caller, as in Hadoop), register the
//! call's sequence number in the pending table, and park until the
//! Connection thread — which owns the receive side — routes the response
//! back.
//!
//! At-most-once plumbing: every client mints a stable random `client_id`
//! at construction and presents it in the connect handshake; every
//! logical call draws one wrap-safe `i64` sequence number, and *all*
//! retry attempts of that call re-send the same `(client_id, seq)` pair
//! (with an incrementing `retry_attempt`), so the server's retry cache
//! can deduplicate re-executions.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex};
use simnet::{Fabric, NodeId, SimAddr, SimStream};
use wire::Writable;

use crate::config::RpcConfig;
use crate::error::{RpcError, RpcResult};
use crate::frame::{read_response_header, write_request, Payload, ResponseStatus};
use crate::handshake;
use crate::metrics::{
    CallProfile, MetricsRegistry, MetricsSnapshot, Phase, RecvProfile as MetricsRecv,
};
use crate::transport::rdma::{IbContext, RdmaConn};
use crate::transport::socket::SocketConn;
use crate::transport::Conn;

const IDLE_SLICE: Duration = Duration::from_millis(100);

struct PendingCall {
    tx: Sender<RpcResult<Payload>>,
    protocol: String,
    method: String,
}

struct ClientConnection {
    conn: Arc<dyn Conn>,
    server: SimAddr,
    pending: Mutex<HashMap<i64, PendingCall>>,
    broken: AtomicBool,
}

impl ClientConnection {
    fn fail_all(&self, err: RpcError) {
        self.broken.store(true, Ordering::Release);
        for (_, call) in self.pending.lock().drain() {
            let _ = call.tx.send(Err(err.clone()));
        }
    }
}

struct ClientInner {
    fabric: Fabric,
    node: NodeId,
    cfg: RpcConfig,
    ib: Option<IbContext>,
    /// Stable identity presented in every connect handshake; keys the
    /// server's retry cache together with the per-call sequence number.
    /// Atomic because a client that presents `0` adopts the id the server
    /// assigns in the handshake ack and re-presents it from then on.
    client_id: AtomicU64,
    conns: Mutex<HashMap<SimAddr, Arc<ClientConnection>>>,
    /// Serializes connection establishment: concurrent first callers must
    /// not each bootstrap a connection (an RPCoIB bootstrap registers a
    /// receive ring and a large region on *both* sides — losers of a
    /// connect race would leak all of it as zombies).
    connect_lock: Mutex<()>,
    /// Next call sequence number. `i64` so it cannot realistically wrap
    /// (the old `i32` call id went negative after 2³¹ calls).
    next_seq: AtomicI64,
    metrics: MetricsRegistry,
    stopped: AtomicBool,
    /// Makes retry backoffs interruptible: `shutdown` flips `stopped` and
    /// notifies under this lock, so a caller parked between attempts wakes
    /// immediately instead of sleeping out the full pause.
    stop_lock: Mutex<()>,
    stop_cv: Condvar,
    /// Servers this client has connected to at least once; a later
    /// establishment to one of them is a *re*connect (counted).
    ever_connected: Mutex<HashSet<SimAddr>>,
}

impl ClientInner {
    /// Drop `connection` from the cache — but only if it is still the
    /// cached entry. A concurrent caller may already have replaced it
    /// with a fresh, healthy connection that must not be torn down.
    fn forget_connection(&self, connection: &Arc<ClientConnection>) {
        let mut conns = self.conns.lock();
        if let Some(current) = conns.get(&connection.server) {
            if Arc::ptr_eq(current, connection) {
                conns.remove(&connection.server);
            }
        }
    }

    /// Mark `connection` unusable and evict it from the cache.
    fn invalidate(&self, connection: &Arc<ClientConnection>) {
        connection.broken.store(true, Ordering::Release);
        self.forget_connection(connection);
    }
}

/// Removes one call's pending-table entry on drop, so *every* exit from
/// [`Client::try_call`] — response delivered, timeout, send failure,
/// busy rejection, even a panic while parked — leaves the table clean.
/// On paths where the Connection thread already removed the entry
/// (response delivery, `fail_all`) the drop is a no-op.
struct PendingGuard<'a> {
    connection: &'a ClientConnection,
    seq: i64,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.connection.pending.lock().remove(&self.seq);
    }
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        // Last user-held handle gone: close every connection so the
        // per-connection threads exit and release their buffers. The
        // threads only hold `Weak` references, so this does run.
        self.stopped.store(true, Ordering::Release);
        for (_, conn) in self.conns.lock().drain() {
            conn.conn.close();
            conn.fail_all(RpcError::ConnectionClosed);
        }
    }
}

/// An RPC client anchored on one simulated node.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ClientInner>,
}

impl Client {
    /// Create a client on `node`. In RPCoIB mode this opens the HCA and
    /// pre-registers the buffer pool.
    pub fn new(fabric: &Fabric, node: NodeId, cfg: RpcConfig) -> RpcResult<Client> {
        cfg.validate().map_err(RpcError::Config)?;
        let ib = if cfg.ib_enabled {
            Some(IbContext::new(fabric, node, &cfg)?)
        } else {
            None
        };
        let trace = cfg.trace_sizes;
        Ok(Client {
            inner: Arc::new(ClientInner {
                fabric: fabric.clone(),
                node,
                cfg,
                ib,
                client_id: AtomicU64::new(handshake::mint_client_id(u64::from(node.0))),
                conns: Mutex::new(HashMap::new()),
                connect_lock: Mutex::new(()),
                next_seq: AtomicI64::new(1),
                metrics: MetricsRegistry::new(trace),
                stopped: AtomicBool::new(false),
                stop_lock: Mutex::new(()),
                stop_cv: Condvar::new(),
                ever_connected: Mutex::new(HashSet::new()),
            }),
        })
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The stable identity this client presents at every connect
    /// handshake (and in every V2 request frame).
    pub fn client_id(&self) -> u64 {
        self.inner.client_id.load(Ordering::Acquire)
    }

    /// Overwrite the client identity (regression-testing the handshake's
    /// assign-on-zero path). Calls made before the next connect keep the
    /// old id; normal code never needs this.
    #[doc(hidden)]
    pub fn force_client_id(&self, id: u64) {
        self.inner.client_id.store(id, Ordering::Release);
    }

    /// Client-side metrics (Table I and Figure 3 read these).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// RPCoIB buffer-pool counters (hits, misses, returns, oversize);
    /// `None` on the socket transport.
    pub fn pool_stats(&self) -> Option<(u64, u64, u64, u64)> {
        self.inner.ib.as_ref().map(|ib| ib.pool_stats())
    }

    /// Pre-register `per_class` buffers in every pool class up to
    /// `max_bytes` (see [`IbContext::prewarm`]); no-op on the socket
    /// transport. Callers that know their payload sizes use this to move
    /// jumbo-class registration costs out of the first large call.
    pub fn prewarm_pool(&self, max_bytes: usize, per_class: usize) {
        if let Some(ib) = &self.inner.ib {
            ib.prewarm(max_bytes, per_class);
        }
    }

    /// Unified observability snapshot: per-method aggregates, per-phase
    /// latency histograms, engine counters, and (in RPCoIB mode) the
    /// buffer pool's shadow + native counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner
            .metrics
            .full_snapshot(self.inner.ib.as_ref().map(|ib| ib.pool_counters()))
    }

    /// Number of cached (possibly broken) server connections.
    pub fn connection_count(&self) -> usize {
        self.inner.conns.lock().len()
    }

    /// Calls currently awaiting a response, summed over every cached
    /// connection. Regression hook for the pending-table lifecycle: once
    /// no calls are in flight this must be 0 — any other value is a leaked
    /// entry whose caller has already given up.
    pub fn pending_calls(&self) -> usize {
        self.inner
            .conns
            .lock()
            .values()
            .map(|c| c.pending.lock().len())
            .sum()
    }

    /// Jump the sequence counter (regression-testing wraparound paths).
    #[doc(hidden)]
    pub fn force_next_seq(&self, seq: i64) {
        self.inner.next_seq.store(seq, Ordering::Relaxed);
    }

    /// Invoke `protocol.method(request)` on the server at `server` and
    /// deserialize the response into `Resp`.
    pub fn call<Req, Resp>(
        &self,
        server: SimAddr,
        protocol: &str,
        method: &str,
        request: &Req,
    ) -> RpcResult<Resp>
    where
        Req: Writable,
        Resp: Writable + Default,
    {
        let payload = self.call_raw(server, protocol, method, request)?;
        let deser_start = Instant::now();
        let result = (|| {
            let mut reader = payload.reader();
            let header =
                read_response_header(&mut reader).map_err(|e| RpcError::Protocol(e.to_string()))?;
            match header.status {
                ResponseStatus::Ok => {
                    let mut resp = Resp::default();
                    resp.read_fields(&mut reader)
                        .map_err(|e| RpcError::Protocol(e.to_string()))?;
                    Ok(resp)
                }
                ResponseStatus::Error => {
                    let mut message = String::new();
                    message
                        .read_fields(&mut reader)
                        .map_err(|e| RpcError::Protocol(e.to_string()))?;
                    Err(RpcError::Remote(message))
                }
                // try_call surfaces busy rejections as errors before the
                // payload ever reaches here; kept for raw-payload safety.
                ResponseStatus::Busy => Err(RpcError::ServerBusy),
            }
        })();
        self.inner.metrics.record_phase(
            protocol,
            method,
            Phase::Deserialize,
            deser_start.elapsed().as_nanos() as u64,
        );
        if result.is_err() {
            // A remote exception (or unparseable response) is as
            // definitive a failure as exhausted retries: count it.
            self.inner.metrics.inc_failed_calls();
        }
        result
    }

    /// Like [`Client::call`] but returns the raw response payload
    /// (header included), for callers that parse responses themselves.
    ///
    /// Drives the configured [`crate::RetryPolicy`]: each attempt gets at
    /// most `call_timeout` (capped by the remaining overall deadline, if
    /// one is set); retryable failures re-attempt after a jittered
    /// backoff, re-establishing the connection when the previous attempt
    /// broke it. Every attempt re-sends the *same* sequence number (with
    /// an incremented `retry_attempt`), so the server can recognize and
    /// deduplicate the retry. Non-retryable errors, exhausted attempts,
    /// and an exhausted deadline fail the call (counted in
    /// [`MetricsRegistry::counters`]).
    pub fn call_raw<Req>(
        &self,
        server: SimAddr,
        protocol: &str,
        method: &str,
        request: &Req,
    ) -> RpcResult<Payload>
    where
        Req: Writable,
    {
        let policy = self.inner.cfg.retry.clone();
        let start = Instant::now();
        // One sequence number for the whole logical call, retries
        // included — this is what at-most-once keys on.
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        // Decorrelates this call's backoff jitter from concurrent calls'.
        let entropy = seq as u64;
        let mut attempt = 0u32;
        let err = loop {
            attempt += 1;
            let mut attempt_timeout = self.inner.cfg.call_timeout;
            if let Some(deadline) = policy.deadline {
                let remaining = deadline.saturating_sub(start.elapsed());
                if remaining.is_zero() {
                    break RpcError::Timeout;
                }
                attempt_timeout = attempt_timeout.min(remaining);
            }
            match self.try_call(
                server,
                protocol,
                method,
                request,
                attempt_timeout,
                seq,
                attempt - 1,
            ) {
                Ok(payload) => return Ok(payload),
                Err(e) => {
                    let exhausted = attempt >= policy.max_attempts
                        || self.inner.stopped.load(Ordering::Acquire);
                    if !e.is_retryable() || exhausted {
                        break e;
                    }
                    let mut pause = policy.backoff(attempt, entropy);
                    if let Some(deadline) = policy.deadline {
                        let remaining = deadline.saturating_sub(start.elapsed());
                        if remaining.is_zero() {
                            break e;
                        }
                        pause = pause.min(remaining);
                    }
                    self.inner.metrics.inc_retries();
                    if !pause.is_zero() {
                        // Interruptible backoff: `shutdown` notifies the
                        // condvar, so a stopped client abandons the pause
                        // (and the call) immediately instead of sleeping
                        // it out and burning further attempts.
                        let mut guard = self.inner.stop_lock.lock();
                        if !self.inner.stopped.load(Ordering::Acquire) {
                            self.inner.stop_cv.wait_for(&mut guard, pause);
                        }
                    }
                    if self.inner.stopped.load(Ordering::Acquire) {
                        break RpcError::ConnectionClosed;
                    }
                }
            }
        };
        self.inner.metrics.inc_failed_calls();
        Err(err)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_call<Req>(
        &self,
        server: SimAddr,
        protocol: &str,
        method: &str,
        request: &Req,
        attempt_timeout: Duration,
        seq: i64,
        retry_attempt: u32,
    ) -> RpcResult<Payload>
    where
        Req: Writable,
    {
        if self.inner.stopped.load(Ordering::Acquire) {
            return Err(RpcError::ConnectionClosed);
        }
        let connection = self.get_connection(server)?;
        let client_id = self.inner.client_id.load(Ordering::Acquire);
        let (tx, rx) = bounded(1);
        connection.pending.lock().insert(
            seq,
            PendingCall {
                tx,
                protocol: protocol.to_owned(),
                method: method.to_owned(),
            },
        );
        // From here on the guard owns cleanup: no exit path below needs
        // (or is trusted) to remove the entry by hand.
        let _pending = PendingGuard {
            connection: &connection,
            seq,
        };

        let profile = match connection.conn.send_msg(protocol, method, &mut |out| {
            write_request(
                out,
                client_id,
                seq,
                retry_attempt,
                protocol,
                method,
                request,
            )
        }) {
            Ok(p) => p,
            Err(e) => {
                if e.invalidates_connection() {
                    self.inner.invalidate(&connection);
                    connection.fail_all(e.clone());
                }
                return Err(e);
            }
        };
        self.inner.metrics.record_call(
            protocol,
            method,
            CallProfile {
                serialize_ns: profile.serialize_ns,
                send_ns: profile.send_ns,
                adjustments: profile.adjustments,
                size: profile.size,
            },
        );

        match rx.recv_timeout(attempt_timeout) {
            Ok(Ok(payload)) => {
                // Peek at the status: a busy rejection means the server
                // refused admission and the call never executed — surface
                // it as a retryable error so the retry loop backs off.
                let header = read_response_header(&mut payload.reader())
                    .map_err(|e| RpcError::Protocol(e.to_string()))?;
                if header.status == ResponseStatus::Busy {
                    return Err(RpcError::ServerBusy);
                }
                Ok(payload)
            }
            Ok(Err(e)) => {
                // Delivered by the Connection thread's fail_all: the
                // connection itself is gone; make sure it is also evicted
                // before a retry reconnects.
                if e.invalidates_connection() {
                    self.inner.invalidate(&connection);
                }
                Err(e)
            }
            Err(_) => {
                // No response in time. The connection may be fine (slow
                // server), so it stays cached; only this call gives up
                // (the guard unregisters it).
                Err(RpcError::Timeout)
            }
        }
    }

    fn get_connection(&self, server: SimAddr) -> RpcResult<Arc<ClientConnection>> {
        {
            let conns = self.inner.conns.lock();
            if let Some(conn) = conns.get(&server) {
                if !conn.broken.load(Ordering::Acquire) {
                    return Ok(Arc::clone(conn));
                }
            }
        }
        // Establish under the connect lock; a caller that raced in behind
        // the winner finds the fresh connection on the re-check and never
        // bootstraps a duplicate.
        let _guard = self.inner.connect_lock.lock();
        {
            let conns = self.inner.conns.lock();
            if let Some(conn) = conns.get(&server) {
                if !conn.broken.load(Ordering::Acquire) {
                    return Ok(Arc::clone(conn));
                }
            }
        }
        let stream = SimStream::connect(&self.inner.fabric, self.inner.node, server)?;
        // Identity/version handshake precedes everything else on the
        // stream (including the RPCoIB endpoint exchange). Adopt the id
        // the server confirmed: for a client that presented 0 this is the
        // server-assigned identity it must re-present from now on.
        let confirmed =
            handshake::client_hello(&stream, self.inner.client_id.load(Ordering::Acquire))?;
        self.inner.client_id.store(confirmed, Ordering::Release);
        let conn: Arc<dyn Conn> = match &self.inner.ib {
            Some(ctx) => Arc::new(
                RdmaConn::bootstrap(&stream, ctx, &self.inner.cfg)?
                    .with_metrics(self.inner.metrics.clone()),
            ),
            None => Arc::new(
                SocketConn::new(stream, wire::buffer::INITIAL_CAPACITY)
                    .with_metrics(self.inner.metrics.clone()),
            ),
        };
        let connection = Arc::new(ClientConnection {
            conn,
            server,
            pending: Mutex::new(HashMap::new()),
            broken: AtomicBool::new(false),
        });
        if !self.inner.ever_connected.lock().insert(server) {
            // Not this client's first connection to `server`: a recovery.
            self.inner.metrics.inc_reconnects();
        }
        self.inner
            .conns
            .lock()
            .insert(server, Arc::clone(&connection));

        // The Connection thread: owns the receive side for this server.
        // It holds only a Weak reference to the client, so dropping the
        // last Client handle tears the thread (and the connection's
        // buffers) down.
        let inner = Arc::downgrade(&self.inner);
        let connection2 = Arc::clone(&connection);
        std::thread::Builder::new()
            .name(format!("rpc-connection-{server}"))
            .spawn(move || connection_loop(inner, connection2))
            .expect("spawn connection thread");
        Ok(connection)
    }

    /// Close all connections; subsequent calls fail. Callers parked in a
    /// retry backoff are woken and fail with `ConnectionClosed` promptly
    /// rather than sleeping out their pause.
    pub fn shutdown(&self) {
        if self.inner.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            // Taking the lock orders this notify after any in-progress
            // stopped-check inside the backoff, so no sleeper misses it.
            let _guard = self.inner.stop_lock.lock();
            self.inner.stop_cv.notify_all();
        }
        for (_, conn) in self.inner.conns.lock().drain() {
            conn.conn.close();
            conn.fail_all(RpcError::ConnectionClosed);
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("node", &self.inner.node)
            .field("ib", &self.inner.ib.is_some())
            .finish()
    }
}

fn connection_loop(inner: std::sync::Weak<ClientInner>, connection: Arc<ClientConnection>) {
    loop {
        // Upgrade per iteration: if every user-facing Client handle is
        // gone, stop polling and let the connection (and its registered
        // buffers) drop.
        let Some(inner) = inner.upgrade() else {
            connection.fail_all(RpcError::ConnectionClosed);
            return;
        };
        if inner.stopped.load(Ordering::Acquire) || connection.broken.load(Ordering::Acquire) {
            inner.forget_connection(&connection);
            connection.fail_all(RpcError::ConnectionClosed);
            return;
        }
        let (payload, recv) = match connection.conn.recv_msg(IDLE_SLICE) {
            Ok(v) => v,
            Err(RpcError::Timeout) => continue,
            Err(e) => {
                // Evict before failing the waiters, so a retrying caller
                // that wakes on fail_all finds the cache already clean
                // and reconnects instead of reusing this dead entry.
                inner.invalidate(&connection);
                connection.fail_all(e);
                return;
            }
        };
        let header = match read_response_header(&mut payload.reader()) {
            Ok(h) => h,
            Err(_) => {
                inner.invalidate(&connection);
                connection.conn.close();
                connection.fail_all(RpcError::Protocol("corrupt response frame".into()));
                return;
            }
        };
        let pending = connection.pending.lock().remove(&header.seq);
        if let Some(call) = pending {
            inner.metrics.record_recv(
                &call.protocol,
                &call.method,
                MetricsRecv {
                    alloc_ns: recv.alloc_ns,
                    total_ns: recv.total_ns,
                    size: recv.size,
                },
            );
            let _ = call.tx.send(Ok(payload));
        } else {
            // The caller timed out and went away (or a parked duplicate's
            // answer raced the original's). The response is dropped, the
            // connection stays healthy — but the event is visible.
            inner.metrics.inc_late_responses();
        }
    }
}
