//! The RPC client: caller threads plus one Connection thread per server
//! (Section III-D keeps Hadoop's two-thread client design).
//!
//! Callers serialize and transmit on their own thread (so per-call
//! serialization cost lands on the caller, as in Hadoop), register the
//! call's sequence number in the pending table, and park until the
//! Connection thread — which owns the receive side — routes the response
//! back.
//!
//! Steady-state calls are allocation-free and lock-light on this side:
//! the `<protocol, method>` pair is resolved once to an interned
//! [`MethodKey`] (a `Copy` pointer), the pending table is sharded by
//! sequence number so concurrent callers rarely contend, the caller
//! parks on a pooled, reusable [`CallSlot`] instead of a fresh one-shot
//! channel, and metrics land as relaxed atomic adds on the key's cached
//! entry.
//!
//! At-most-once plumbing: every client mints a stable random `client_id`
//! at construction and presents it in the connect handshake; every
//! logical call draws one wrap-safe `i64` sequence number, and *all*
//! retry attempts of that call re-send the same `(client_id, seq)` pair
//! (with an incrementing `retry_attempt`), so the server's retry cache
//! can deduplicate re-executions.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use simnet::{Fabric, NodeId, SimAddr, SimStream};
use wire::Writable;

use crate::config::RpcConfig;
use crate::error::{RpcError, RpcResult};
use crate::frame::{
    read_response_header, write_request, Payload, ResponseHeader, ResponseStatus, V3Decoder,
    V3Encoder,
};
use crate::handshake;
use crate::hostcost;
use crate::intern::{self, MethodKey};
use crate::metrics::{
    CallProfile, MetricsRegistry, MetricsSnapshot, Phase, RecvProfile as MetricsRecv,
};
use crate::transport::rdma::{IbContext, RdmaConn};
use crate::transport::socket::SocketConn;
use crate::transport::Conn;

const IDLE_SLICE: Duration = Duration::from_millis(100);

/// Pending-table shard count (power of two; sequence numbers are dense,
/// so masking the low bits spreads concurrent callers evenly).
const PENDING_SHARDS: usize = 8;

/// Cap on the dropped-connection reconnect-tracking set. Beyond this many
/// *concurrently dropped* distinct servers, further reconnects may be
/// undercounted — a metrics blemish, accepted so the set stays bounded
/// (its predecessor grew by one entry per server, forever).
const RECONNECT_TRACK_CAP: usize = 256;

/// A response as the Connection thread hands it to a parked caller: the
/// lead parsed exactly once (the Connection thread owns the connection's
/// V3 decoder state, so under the compact header it is the only thread
/// that *can* parse it), and the frame bytes with the body starting at
/// `body_offset`.
pub struct RawResponse {
    /// The parsed response lead (sequence number and status).
    pub header: ResponseHeader,
    /// The whole response frame.
    pub payload: Payload,
    /// Offset of the response body within `payload` — skip this many
    /// bytes before deserializing the value / error message.
    pub body_offset: usize,
}

/// A reusable rendezvous cell one parked caller waits on.
///
/// Replaces the per-call one-shot channel (whose construction allocated a
/// channel block and queue node on every call): connections keep a
/// freelist of retired slots, and a generation counter distinguishes the
/// call a result belongs to, so a late response delivered to a recycled
/// slot is recognized and dropped instead of leaking into the next call.
struct CallSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

struct SlotState {
    gen: u64,
    result: Option<RpcResult<RawResponse>>,
}

impl CallSlot {
    fn new() -> Arc<CallSlot> {
        Arc::new(CallSlot {
            state: Mutex::new(SlotState {
                gen: 0,
                result: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// The generation the next `wait` call will accept results for.
    fn generation(&self) -> u64 {
        self.state.lock().gen
    }

    /// Deliver `result` if the slot is still on generation `gen`;
    /// returns `false` (result dropped) when the caller already retired
    /// the slot — the delivery was late.
    fn deliver(&self, gen: u64, result: RpcResult<RawResponse>) -> bool {
        let mut st = self.state.lock();
        if st.gen != gen {
            return false;
        }
        st.result = Some(result);
        self.cv.notify_one();
        true
    }

    /// Park until a generation-`gen` result arrives or `timeout` passes.
    fn wait(&self, timeout: Duration) -> Option<RpcResult<RawResponse>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(result) = st.result.take() {
                return Some(result);
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.cv.wait_until(&mut st, deadline);
        }
    }

    /// Advance the generation (invalidating any in-flight delivery) and
    /// clear a result that raced in; called before the slot returns to
    /// the freelist.
    fn retire(&self) {
        let mut st = self.state.lock();
        st.gen = st.gen.wrapping_add(1);
        st.result = None;
    }
}

struct PendingCall {
    slot: Arc<CallSlot>,
    gen: u64,
    key: MethodKey,
}

/// The in-flight call table, sharded by sequence number so the caller's
/// insert/remove and the Connection thread's response lookup contend
/// only when they touch the same shard.
struct PendingTable {
    shards: [Mutex<HashMap<i64, PendingCall>>; PENDING_SHARDS],
}

impl PendingTable {
    fn new() -> PendingTable {
        PendingTable {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, seq: i64) -> &Mutex<HashMap<i64, PendingCall>> {
        &self.shards[(seq as u64 as usize) & (PENDING_SHARDS - 1)]
    }

    fn insert(&self, seq: i64, call: PendingCall) {
        self.shard(seq).lock().insert(seq, call);
    }

    fn remove(&self, seq: i64) -> Option<PendingCall> {
        self.shard(seq).lock().remove(&seq)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

struct ClientConnection {
    conn: Arc<dyn Conn>,
    server: SimAddr,
    /// Frame version negotiated in the connect handshake; `>= 3` switches
    /// both directions of this connection to the compact header.
    version: u8,
    /// V3 request-header encoder (delta seq + method table). Its state
    /// advances at the transport's wire-ordering point — `send_msg_ordered`
    /// runs the lead closure under the transport's own ordering lock — so
    /// this mutex only ever guards one encode at a time.
    enc: Mutex<V3Encoder>,
    pending: PendingTable,
    /// Retired call slots awaiting reuse; bounded by this connection's
    /// peak caller concurrency.
    slots: Mutex<Vec<Arc<CallSlot>>>,
    broken: AtomicBool,
}

impl ClientConnection {
    fn acquire_slot(&self) -> Arc<CallSlot> {
        self.slots.lock().pop().unwrap_or_else(CallSlot::new)
    }

    fn release_slot(&self, slot: Arc<CallSlot>) {
        slot.retire();
        self.slots.lock().push(slot);
    }

    fn fail_all(&self, err: RpcError) {
        self.broken.store(true, Ordering::Release);
        for shard in &self.pending.shards {
            for (_, call) in shard.lock().drain() {
                call.slot.deliver(call.gen, Err(err.clone()));
            }
        }
    }
}

struct ClientInner {
    fabric: Fabric,
    node: NodeId,
    cfg: RpcConfig,
    ib: Option<IbContext>,
    /// Stable identity presented in every connect handshake; keys the
    /// server's retry cache together with the per-call sequence number.
    /// Atomic because a client that presents `0` adopts the id the server
    /// assigns in the handshake ack and re-presents it from then on.
    client_id: AtomicU64,
    conns: Mutex<HashMap<SimAddr, Arc<ClientConnection>>>,
    /// Serializes connection establishment: concurrent first callers must
    /// not each bootstrap a connection (an RPCoIB bootstrap registers a
    /// receive ring and a large region on *both* sides — losers of a
    /// connect race would leak all of it as zombies).
    connect_lock: Mutex<()>,
    /// Next call sequence number. `i64` so it cannot realistically wrap
    /// (the old `i32` call id went negative after 2³¹ calls).
    next_seq: AtomicI64,
    metrics: MetricsRegistry,
    stopped: AtomicBool,
    /// Makes retry backoffs interruptible: `shutdown` flips `stopped` and
    /// notifies under this lock, so a caller parked between attempts wakes
    /// immediately instead of sleeping out the full pause.
    stop_lock: Mutex<()>,
    stop_cv: Condvar,
    /// Servers whose connection has been dropped from `conns`: a later
    /// establishment to one of them is a *re*connect (counted, and the
    /// entry removed). Unlike the ever-connected set it replaces, this is
    /// empty in steady state and bounded by [`RECONNECT_TRACK_CAP`].
    reconnectable: Mutex<HashSet<SimAddr>>,
}

impl ClientInner {
    /// Drop `connection` from the cache — but only if it is still the
    /// cached entry. A concurrent caller may already have replaced it
    /// with a fresh, healthy connection that must not be torn down.
    fn forget_connection(&self, connection: &Arc<ClientConnection>) {
        let removed = {
            let mut conns = self.conns.lock();
            match conns.get(&connection.server) {
                Some(current) if Arc::ptr_eq(current, connection) => {
                    conns.remove(&connection.server);
                    true
                }
                _ => false,
            }
        };
        if removed {
            let mut tracked = self.reconnectable.lock();
            if tracked.len() < RECONNECT_TRACK_CAP || tracked.contains(&connection.server) {
                tracked.insert(connection.server);
            }
        }
    }

    /// Mark `connection` unusable and evict it from the cache.
    fn invalidate(&self, connection: &Arc<ClientConnection>) {
        connection.broken.store(true, Ordering::Release);
        self.forget_connection(connection);
    }
}

/// Removes one call's pending-table entry on drop and returns its slot
/// to the connection's freelist, so *every* exit from
/// [`Client::try_call`] — response delivered, timeout, send failure,
/// busy rejection, even a panic while parked — leaves the table clean.
/// The entry removal is a no-op on paths where the Connection thread
/// already removed it (response delivery, `fail_all`); retiring the slot
/// advances its generation so any still-in-flight delivery is dropped as
/// late rather than leaking into the slot's next call.
struct PendingGuard<'a> {
    connection: &'a ClientConnection,
    seq: i64,
    slot: Option<Arc<CallSlot>>,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.connection.pending.remove(self.seq);
        if let Some(slot) = self.slot.take() {
            self.connection.release_slot(slot);
        }
    }
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        // Last user-held handle gone: close every connection so the
        // per-connection threads exit and release their buffers. The
        // threads only hold `Weak` references, so this does run.
        self.stopped.store(true, Ordering::Release);
        for (_, conn) in self.conns.lock().drain() {
            conn.conn.close();
            conn.fail_all(RpcError::ConnectionClosed);
        }
    }
}

/// An RPC client anchored on one simulated node.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ClientInner>,
}

impl Client {
    /// Create a client on `node`. In RPCoIB mode this opens the HCA and
    /// pre-registers the buffer pool.
    pub fn new(fabric: &Fabric, node: NodeId, cfg: RpcConfig) -> RpcResult<Client> {
        cfg.validate().map_err(RpcError::Config)?;
        let ib = if cfg.ib_enabled {
            Some(IbContext::new(fabric, node, &cfg)?)
        } else {
            None
        };
        let trace = cfg.trace_sizes;
        Ok(Client {
            inner: Arc::new(ClientInner {
                fabric: fabric.clone(),
                node,
                cfg,
                ib,
                client_id: AtomicU64::new(handshake::mint_client_id(u64::from(node.0))),
                conns: Mutex::new(HashMap::new()),
                connect_lock: Mutex::new(()),
                next_seq: AtomicI64::new(1),
                metrics: MetricsRegistry::new(trace),
                stopped: AtomicBool::new(false),
                stop_lock: Mutex::new(()),
                stop_cv: Condvar::new(),
                reconnectable: Mutex::new(HashSet::new()),
            }),
        })
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The stable identity this client presents at every connect
    /// handshake (and in every V2 request frame).
    pub fn client_id(&self) -> u64 {
        self.inner.client_id.load(Ordering::Acquire)
    }

    /// Overwrite the client identity (regression-testing the handshake's
    /// assign-on-zero path). Calls made before the next connect keep the
    /// old id; normal code never needs this.
    #[doc(hidden)]
    pub fn force_client_id(&self, id: u64) {
        self.inner.client_id.store(id, Ordering::Release);
    }

    /// Client-side metrics (Table I and Figure 3 read these).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// RPCoIB buffer-pool counters (hits, misses, returns, oversize);
    /// `None` on the socket transport.
    pub fn pool_stats(&self) -> Option<(u64, u64, u64, u64)> {
        self.inner.ib.as_ref().map(|ib| ib.pool_stats())
    }

    /// Pre-register `per_class` buffers in every pool class up to
    /// `max_bytes` (see [`IbContext::prewarm`]); no-op on the socket
    /// transport. Callers that know their payload sizes use this to move
    /// jumbo-class registration costs out of the first large call.
    pub fn prewarm_pool(&self, max_bytes: usize, per_class: usize) {
        if let Some(ib) = &self.inner.ib {
            ib.prewarm(max_bytes, per_class);
        }
    }

    /// Unified observability snapshot: per-method aggregates, per-phase
    /// latency histograms, engine counters, and (in RPCoIB mode) the
    /// buffer pool's shadow + native counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner
            .metrics
            .full_snapshot(self.inner.ib.as_ref().map(|ib| ib.pool_counters()))
    }

    /// Number of cached (possibly broken) server connections.
    pub fn connection_count(&self) -> usize {
        self.inner.conns.lock().len()
    }

    /// Calls currently awaiting a response, summed over every cached
    /// connection. Regression hook for the pending-table lifecycle: once
    /// no calls are in flight this must be 0 — any other value is a leaked
    /// entry whose caller has already given up.
    pub fn pending_calls(&self) -> usize {
        self.inner
            .conns
            .lock()
            .values()
            .map(|c| c.pending.len())
            .sum()
    }

    /// Servers currently tracked as dropped-and-reconnectable.
    /// Regression hook for the tracking set's boundedness: it must
    /// return to 0 once every dropped server has been reconnected to
    /// (or never exceed [`RECONNECT_TRACK_CAP`] regardless of churn).
    #[doc(hidden)]
    pub fn reconnect_tracking_len(&self) -> usize {
        self.inner.reconnectable.lock().len()
    }

    /// Jump the sequence counter (regression-testing wraparound paths).
    #[doc(hidden)]
    pub fn force_next_seq(&self, seq: i64) {
        self.inner.next_seq.store(seq, Ordering::Relaxed);
    }

    /// Frame version the cached connection to `server` negotiated, or
    /// `None` when no connection is cached (negotiation-matrix tests).
    #[doc(hidden)]
    pub fn negotiated_version(&self, server: SimAddr) -> Option<u8> {
        self.inner.conns.lock().get(&server).map(|c| c.version)
    }

    /// Invoke `protocol.method(request)` on the server at `server` and
    /// deserialize the response into `Resp`.
    pub fn call<Req, Resp>(
        &self,
        server: SimAddr,
        protocol: &str,
        method: &str,
        request: &Req,
    ) -> RpcResult<Resp>
    where
        Req: Writable,
        Resp: Writable + Default,
    {
        let key = intern::method_key(protocol, method);
        let resp = self.call_raw_keyed(server, key, request)?;
        let deser_start = Instant::now();
        let result = (|| {
            let mut reader = resp.payload.reader();
            // The Connection thread already parsed the lead (it owns the
            // V3 decoder state); jump straight to the body.
            reader.skip(resp.body_offset);
            match resp.header.status {
                ResponseStatus::Ok => {
                    let mut resp = Resp::default();
                    resp.read_fields(&mut reader)
                        .map_err(|e| RpcError::Protocol(e.to_string()))?;
                    Ok(resp)
                }
                ResponseStatus::Error => {
                    let mut message = String::new();
                    message
                        .read_fields(&mut reader)
                        .map_err(|e| RpcError::Protocol(e.to_string()))?;
                    Err(RpcError::Remote(message))
                }
                // try_call surfaces busy and expired rejections as errors
                // before the payload ever reaches here; kept for
                // raw-payload safety.
                ResponseStatus::Busy => Err(RpcError::ServerBusy),
                ResponseStatus::Expired => Err(RpcError::DeadlineExpired),
            }
        })();
        self.inner
            .metrics
            .entry(key)
            .record_phase(Phase::Deserialize, deser_start.elapsed().as_nanos() as u64);
        if result.is_err() {
            // A remote exception (or unparseable response) is as
            // definitive a failure as exhausted retries: count it.
            self.inner.metrics.inc_failed_calls();
        }
        result
    }

    /// Like [`Client::call`] but returns the raw response — the parsed
    /// lead plus the frame bytes — for callers that deserialize response
    /// bodies themselves. (Before V3 this handed back unparsed frame
    /// bytes; with the compact header only the Connection thread holds
    /// the decoder state, so the lead comes pre-parsed.)
    ///
    /// Drives the configured [`crate::RetryPolicy`]: each attempt gets at
    /// most `call_timeout` (capped by the remaining overall deadline, if
    /// one is set); retryable failures re-attempt after a jittered
    /// backoff, re-establishing the connection when the previous attempt
    /// broke it. Every attempt re-sends the *same* sequence number (with
    /// an incremented `retry_attempt`), so the server can recognize and
    /// deduplicate the retry. Non-retryable errors, exhausted attempts,
    /// and an exhausted deadline fail the call (counted in
    /// [`MetricsRegistry::counters`]).
    pub fn call_raw<Req>(
        &self,
        server: SimAddr,
        protocol: &str,
        method: &str,
        request: &Req,
    ) -> RpcResult<RawResponse>
    where
        Req: Writable,
    {
        self.call_raw_keyed(server, intern::method_key(protocol, method), request)
    }

    fn call_raw_keyed<Req>(
        &self,
        server: SimAddr,
        key: MethodKey,
        request: &Req,
    ) -> RpcResult<RawResponse>
    where
        Req: Writable,
    {
        let policy = self.inner.cfg.retry.clone();
        let start = Instant::now();
        // One sequence number for the whole logical call, retries
        // included — this is what at-most-once keys on.
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        // Decorrelates this call's backoff jitter from concurrent calls'.
        let entropy = seq as u64;
        let mut attempt = 0u32;
        let err = loop {
            attempt += 1;
            let mut attempt_timeout = self.inner.cfg.call_timeout;
            if let Some(deadline) = policy.deadline {
                let remaining = deadline.saturating_sub(start.elapsed());
                if remaining.is_zero() {
                    break RpcError::Timeout;
                }
                attempt_timeout = attempt_timeout.min(remaining);
            }
            match self.try_call(server, key, request, attempt_timeout, seq, attempt - 1) {
                Ok(payload) => return Ok(payload),
                Err(e) => {
                    let exhausted = attempt >= policy.max_attempts
                        || self.inner.stopped.load(Ordering::Acquire);
                    if !e.is_retryable() || exhausted {
                        break e;
                    }
                    let mut pause = policy.backoff(attempt, entropy);
                    if let Some(deadline) = policy.deadline {
                        let remaining = deadline.saturating_sub(start.elapsed());
                        if remaining.is_zero() {
                            break e;
                        }
                        // A busy backoff that would sleep out the whole
                        // remaining budget cannot buy another attempt —
                        // fail fast instead of burning the deadline's tail
                        // parked in the backoff wait.
                        if matches!(e, RpcError::ServerBusy) && pause >= remaining {
                            break e;
                        }
                        pause = pause.min(remaining);
                    }
                    self.inner.metrics.inc_retries();
                    if !pause.is_zero() {
                        // Interruptible backoff: `shutdown` notifies the
                        // condvar, so a stopped client abandons the pause
                        // (and the call) immediately instead of sleeping
                        // it out and burning further attempts.
                        let mut guard = self.inner.stop_lock.lock();
                        if !self.inner.stopped.load(Ordering::Acquire) {
                            self.inner.stop_cv.wait_for(&mut guard, pause);
                        }
                    }
                    if self.inner.stopped.load(Ordering::Acquire) {
                        break RpcError::ConnectionClosed;
                    }
                }
            }
        };
        self.inner.metrics.inc_failed_calls();
        Err(err)
    }

    fn try_call<Req>(
        &self,
        server: SimAddr,
        key: MethodKey,
        request: &Req,
        attempt_timeout: Duration,
        seq: i64,
        retry_attempt: u32,
    ) -> RpcResult<RawResponse>
    where
        Req: Writable,
    {
        if self.inner.stopped.load(Ordering::Acquire) {
            return Err(RpcError::ConnectionClosed);
        }
        let connection = self.get_connection(server)?;
        let client_id = self.inner.client_id.load(Ordering::Acquire);
        if self.inner.cfg.legacy_metadata {
            // Ablation baseline: do the pre-interning metadata work for
            // real (so allocation harnesses see it) and charge its
            // modeled host cost to this node's ledger.
            std::hint::black_box(hostcost::reenact_legacy_call(key.protocol(), key.method()));
            self.inner
                .fabric
                .charge_host_ns(self.inner.node, hostcost::legacy_call_ns());
        }
        let slot = connection.acquire_slot();
        let gen = slot.generation();
        connection.pending.insert(
            seq,
            PendingCall {
                slot: Arc::clone(&slot),
                gen,
                key,
            },
        );
        // From here on the guard owns cleanup: no exit path below needs
        // (or is trusted) to remove the entry or recycle the slot by hand.
        let _pending = PendingGuard {
            connection: &connection,
            seq,
            slot: Some(Arc::clone(&slot)),
        };

        // V3 splits the frame: the compact header is encoded by the
        // connection's stateful encoder at the transport's wire-ordering
        // point (so delta-seq/method-table state advances in exactly the
        // order frames hit the wire), while the body serializes on this
        // caller thread as before. V2 keeps the single-closure path.
        let sent = if connection.version >= 3 {
            // Deadline propagation: ship the attempt's remaining budget so
            // the server can shed the call once it expires instead of
            // executing work this client has already timed out on.
            let budget = self
                .inner
                .cfg
                .deadline_propagation
                .then_some(attempt_timeout);
            connection.conn.send_msg_ordered(
                key,
                &mut |out| {
                    connection
                        .enc
                        .lock()
                        .write_request_header(out, seq, retry_attempt, budget, key)
                },
                &mut |out| request.write(out),
            )
        } else {
            connection.conn.send_msg(key, &mut |out| {
                write_request(
                    out,
                    client_id,
                    seq,
                    retry_attempt,
                    key.protocol(),
                    key.method(),
                    request,
                )
            })
        };
        let profile = match sent {
            Ok(p) => p,
            Err(e) => {
                if e.invalidates_connection() {
                    self.inner.invalidate(&connection);
                    connection.fail_all(e.clone());
                }
                return Err(e);
            }
        };
        self.inner.metrics.entry(key).record_call(CallProfile {
            serialize_ns: profile.serialize_ns,
            send_ns: profile.send_ns,
            adjustments: profile.adjustments,
            size: profile.size,
        });

        match slot.wait(attempt_timeout) {
            Some(Ok(resp)) => {
                // A busy rejection means the server refused admission and
                // the call never executed — surface it as a retryable
                // error so the retry loop backs off. (The lead was parsed
                // by the Connection thread; no re-parse here.)
                if resp.header.status == ResponseStatus::Busy {
                    return Err(RpcError::ServerBusy);
                }
                // An expired rejection means the server shed the call
                // before execution because its propagated deadline passed.
                // Non-retryable by construction: a retry's budget would
                // already be spent too.
                if resp.header.status == ResponseStatus::Expired {
                    return Err(RpcError::DeadlineExpired);
                }
                Ok(resp)
            }
            Some(Err(e)) => {
                // Delivered by the Connection thread's fail_all: the
                // connection itself is gone; make sure it is also evicted
                // before a retry reconnects.
                if e.invalidates_connection() {
                    self.inner.invalidate(&connection);
                }
                Err(e)
            }
            None => {
                // No response in time. The connection may be fine (slow
                // server), so it stays cached; only this call gives up
                // (the guard unregisters it and retires the slot, so a
                // response that still arrives is dropped as late).
                Err(RpcError::Timeout)
            }
        }
    }

    fn get_connection(&self, server: SimAddr) -> RpcResult<Arc<ClientConnection>> {
        {
            let conns = self.inner.conns.lock();
            if let Some(conn) = conns.get(&server) {
                if !conn.broken.load(Ordering::Acquire) {
                    return Ok(Arc::clone(conn));
                }
            }
        }
        // Establish under the connect lock; a caller that raced in behind
        // the winner finds the fresh connection on the re-check and never
        // bootstraps a duplicate.
        let _guard = self.inner.connect_lock.lock();
        {
            let conns = self.inner.conns.lock();
            if let Some(conn) = conns.get(&server) {
                if !conn.broken.load(Ordering::Acquire) {
                    return Ok(Arc::clone(conn));
                }
            }
        }
        let stream = SimStream::connect(&self.inner.fabric, self.inner.node, server)?;
        // Identity/version handshake precedes everything else on the
        // stream (including the RPCoIB endpoint exchange). Adopt the id
        // the server confirmed: for a client that presented 0 this is the
        // server-assigned identity it must re-present from now on.
        let (version, confirmed) = handshake::client_hello(
            &stream,
            self.inner.client_id.load(Ordering::Acquire),
            self.inner.cfg.max_wire_version,
        )?;
        self.inner.client_id.store(confirmed, Ordering::Release);
        let conn: Arc<dyn Conn> = match &self.inner.ib {
            Some(ctx) => Arc::new(
                RdmaConn::bootstrap(&stream, ctx, &self.inner.cfg)?
                    .with_metrics(self.inner.metrics.clone()),
            ),
            None => Arc::new(
                SocketConn::new(stream, wire::buffer::INITIAL_CAPACITY)
                    .with_batch(self.inner.cfg.wire_batch)
                    .with_metrics(self.inner.metrics.clone()),
            ),
        };
        let connection = Arc::new(ClientConnection {
            conn,
            server,
            version,
            // Verbs drops frames silently (they are charged and vanish),
            // so V3 there is self-contained per frame; the socket path is
            // reliable-ordered and uses the stateful delta encoding.
            enc: Mutex::new(V3Encoder::new(!self.inner.cfg.ib_enabled)),
            pending: PendingTable::new(),
            slots: Mutex::new(Vec::new()),
            broken: AtomicBool::new(false),
        });
        // A reconnect is an establishment to a server whose previous
        // connection was dropped: either it is still cached (broken, and
        // replaced by the insert below) or its eviction recorded the
        // server in the reconnectable set.
        let replaced = self
            .inner
            .conns
            .lock()
            .insert(server, Arc::clone(&connection))
            .is_some();
        let was_dropped = self.inner.reconnectable.lock().remove(&server);
        if replaced || was_dropped {
            self.inner.metrics.inc_reconnects();
        }

        // The Connection thread: owns the receive side for this server.
        // It holds only a Weak reference to the client, so dropping the
        // last Client handle tears the thread (and the connection's
        // buffers) down.
        let inner = Arc::downgrade(&self.inner);
        let connection2 = Arc::clone(&connection);
        std::thread::Builder::new()
            .name(format!("rpc-connection-{server}"))
            .spawn(move || connection_loop(inner, connection2))
            .expect("spawn connection thread");
        Ok(connection)
    }

    /// Close all connections; subsequent calls fail. Callers parked in a
    /// retry backoff are woken and fail with `ConnectionClosed` promptly
    /// rather than sleeping out their pause.
    pub fn shutdown(&self) {
        if self.inner.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            // Taking the lock orders this notify after any in-progress
            // stopped-check inside the backoff, so no sleeper misses it.
            let _guard = self.inner.stop_lock.lock();
            self.inner.stop_cv.notify_all();
        }
        for (_, conn) in self.inner.conns.lock().drain() {
            conn.conn.close();
            conn.fail_all(RpcError::ConnectionClosed);
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("node", &self.inner.node)
            .field("ib", &self.inner.ib.is_some())
            .finish()
    }
}

fn connection_loop(inner: std::sync::Weak<ClientInner>, connection: Arc<ClientConnection>) {
    // The response-side V3 decoder lives on this thread (never shared):
    // this loop is the only reader, so lead parsing needs no lock.
    let mut dec = {
        let Some(strong) = inner.upgrade() else {
            connection.fail_all(RpcError::ConnectionClosed);
            return;
        };
        (connection.version >= 3).then(|| V3Decoder::new(!strong.cfg.ib_enabled))
    };
    loop {
        // Upgrade per iteration: if every user-facing Client handle is
        // gone, stop polling and let the connection (and its registered
        // buffers) drop.
        let Some(inner) = inner.upgrade() else {
            connection.fail_all(RpcError::ConnectionClosed);
            return;
        };
        if inner.stopped.load(Ordering::Acquire) || connection.broken.load(Ordering::Acquire) {
            inner.forget_connection(&connection);
            connection.fail_all(RpcError::ConnectionClosed);
            return;
        }
        let (payload, recv) = match connection.conn.recv_msg(IDLE_SLICE) {
            Ok(v) => v,
            Err(RpcError::Timeout) => continue,
            Err(e) => {
                // Evict before failing the waiters, so a retrying caller
                // that wakes on fail_all finds the cache already clean
                // and reconnects instead of reusing this dead entry.
                inner.invalidate(&connection);
                connection.fail_all(e);
                return;
            }
        };
        let (header, body_offset) = {
            let mut reader = payload.reader();
            let parsed = match dec.as_mut() {
                Some(d) => d.read_response_header(&mut reader),
                None => read_response_header(&mut reader),
            };
            match parsed {
                Ok(h) => (h, reader.position()),
                Err(_) => {
                    inner.invalidate(&connection);
                    connection.conn.close();
                    connection.fail_all(RpcError::Protocol("corrupt response frame".into()));
                    return;
                }
            }
        };
        if let Some(call) = connection.pending.remove(header.seq) {
            inner.metrics.entry(call.key).record_recv(MetricsRecv {
                alloc_ns: recv.alloc_ns,
                total_ns: recv.total_ns,
                size: recv.size,
            });
            let resp = RawResponse {
                header,
                payload,
                body_offset,
            };
            if !call.slot.deliver(call.gen, Ok(resp)) {
                // The caller retired the slot between our pending-table
                // removal and the delivery: it gave up; same outcome as
                // not finding the entry at all.
                inner.metrics.inc_late_responses();
            }
        } else {
            // The caller timed out and went away (or a parked duplicate's
            // answer raced the original's). The response is dropped, the
            // connection stays healthy — but the event is visible.
            inner.metrics.inc_late_responses();
        }
    }
}
