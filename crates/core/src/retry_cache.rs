//! Server-side retry cache: the at-most-once half of the RPC contract.
//!
//! Hadoop's production RPC closes the duplicate-execution hole with a
//! server-side `RetryCache`; this is the same idea keyed by the frame-v2
//! identity `(client_id, seq)`. Three cases on arrival of a call:
//!
//! * **unseen** — admit it for execution and remember it as in-flight;
//! * **in-flight** — a duplicate attempt of a call a handler is still
//!   executing: *park* it (the parked connection gets the response when
//!   the first attempt finishes) instead of executing it again;
//! * **completed** — replay the cached serialized response; the handler
//!   pool never sees the duplicate.
//!
//! Completed entries expire by TTL and are evicted oldest-first over
//! capacity. In-flight entries are never expired or evicted — a waiter
//! parked behind one must not be stranded — so the hard memory bound is
//! `capacity` completed responses plus however many calls are genuinely
//! executing.
//!
//! The cache is generic over the waiter payload `W` (the server parks
//! `(connection, response-routing)` tuples; unit tests park `()`).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::metrics::MetricsRegistry;

/// Identity of one logical call: `(client_id, seq)`.
pub type CallKey = (u64, i64);

/// Outcome of presenting an arriving call to the cache.
#[derive(Debug)]
pub enum Admission {
    /// First sighting: execute the call (an in-flight entry now exists —
    /// the caller must later `complete` or `abort` it).
    Execute,
    /// Duplicate of an executing call: the waiter was parked; do nothing.
    Parked,
    /// Duplicate of a completed call: send this serialized response
    /// instead of executing.
    Replay(Arc<Vec<u8>>),
}

enum Entry<W> {
    InFlight {
        waiters: Vec<W>,
    },
    Done {
        response: Arc<Vec<u8>>,
        /// Which `order` record owns this entry. A re-completed key
        /// leaves its old order record behind as a stale duplicate; the
        /// generation lets the TTL/capacity scans tell the stale record
        /// (skip) from the live one (expire/evict).
        gen: u64,
    },
}

struct CacheInner<W> {
    entries: HashMap<CallKey, Entry<W>>,
    /// Completion order of Done entries; the TTL/capacity scans walk it
    /// front-to-back. (In-flight entries are not listed — they cannot be
    /// expired or evicted.)
    order: VecDeque<(CallKey, u64, Instant)>,
    /// Monotonic completion counter stamping `order` records and `Done`
    /// entries.
    next_gen: u64,
}

/// See module docs. Cheap interior mutability; shared by Readers and
/// Handlers.
pub struct RetryCache<W> {
    inner: Mutex<CacheInner<W>>,
    ttl: Duration,
    capacity: usize,
    metrics: MetricsRegistry,
}

impl<W> RetryCache<W> {
    /// `capacity == 0` disables caching: every `begin` admits.
    pub fn new(ttl: Duration, capacity: usize, metrics: MetricsRegistry) -> RetryCache<W> {
        RetryCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                order: VecDeque::new(),
                next_gen: 0,
            }),
            ttl,
            capacity,
            metrics,
        }
    }

    /// Present an arriving call. `waiter` is only invoked (and parked)
    /// when the call duplicates one still executing.
    pub fn begin(&self, key: CallKey, waiter: impl FnOnce() -> W) -> Admission {
        if self.capacity == 0 {
            return Admission::Execute;
        }
        let now = Instant::now();
        let mut inner = self.inner.lock();
        self.expire_locked(&mut inner, now);
        match inner.entries.get_mut(&key) {
            Some(Entry::InFlight { waiters }) => {
                waiters.push(waiter());
                self.metrics.inc_retry_cache_parked();
                Admission::Parked
            }
            Some(Entry::Done { response, .. }) => {
                self.metrics.inc_retry_cache_hits();
                Admission::Replay(Arc::clone(response))
            }
            None => {
                inner.entries.insert(
                    key,
                    Entry::InFlight {
                        waiters: Vec::new(),
                    },
                );
                Admission::Execute
            }
        }
    }

    /// The call finished and `response` is its serialized frame body.
    /// Returns the waiters parked behind it; the caller sends each one
    /// the same response.
    pub fn complete(&self, key: CallKey, response: Arc<Vec<u8>>) -> Vec<W> {
        if self.capacity == 0 {
            return Vec::new();
        }
        let now = Instant::now();
        let mut inner = self.inner.lock();
        let gen = inner.next_gen;
        inner.next_gen += 1;
        let waiters = match inner.entries.insert(
            key,
            Entry::Done {
                response: Arc::clone(&response),
                gen,
            },
        ) {
            Some(Entry::InFlight { waiters }) => waiters,
            // Re-completion (should not happen) or a racing abort: keep
            // the fresher response, nobody is parked. The displaced Done
            // entry's order record goes stale; the generation stamp keeps
            // it from ever expiring this fresh one.
            _ => Vec::new(),
        };
        inner.order.push_back((key, gen, now));
        // Capacity eviction: drop the oldest completed entries.
        while inner.order.len() > self.capacity {
            if let Some((old_key, old_gen, _)) = inner.order.pop_front() {
                if matches!(
                    inner.entries.get(&old_key),
                    Some(Entry::Done { gen, .. }) if *gen == old_gen
                ) {
                    inner.entries.remove(&old_key);
                    self.metrics.inc_retry_cache_evictions();
                }
            }
        }
        waiters
    }

    /// The call will not produce a response (admission failure, dispatch
    /// abort): forget the in-flight entry so a retry can execute, and
    /// hand back any parked waiters for the caller to fail.
    pub fn abort(&self, key: CallKey) -> Vec<W> {
        if self.capacity == 0 {
            return Vec::new();
        }
        let mut inner = self.inner.lock();
        match inner.entries.get(&key) {
            Some(Entry::InFlight { .. }) => match inner.entries.remove(&key) {
                Some(Entry::InFlight { waiters }) => waiters,
                _ => unreachable!("checked InFlight under the same lock"),
            },
            // Completed (or absent) entries are not abortable.
            _ => Vec::new(),
        }
    }

    /// Number of live entries (in-flight + completed). For tests and
    /// observability.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn expire_locked(&self, inner: &mut CacheInner<W>, now: Instant) {
        while let Some(&(key, order_gen, completed_at)) = inner.order.front() {
            if now.duration_since(completed_at) < self.ttl {
                break;
            }
            inner.order.pop_front();
            // The order queue can hold stale records for entries that
            // were re-completed or capacity-evicted; only the entry this
            // record stamped (generations match) counts as an expiration.
            if matches!(
                inner.entries.get(&key),
                Some(Entry::Done { gen, .. }) if *gen == order_gen
            ) {
                inner.entries.remove(&key);
                self.metrics.inc_retry_cache_expired();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(ttl: Duration, capacity: usize) -> (RetryCache<u32>, MetricsRegistry) {
        let metrics = MetricsRegistry::new(false);
        (RetryCache::new(ttl, capacity, metrics.clone()), metrics)
    }

    fn resp(tag: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![tag])
    }

    #[test]
    fn first_sighting_executes_then_replays() {
        let (cache, metrics) = cache(Duration::from_secs(60), 16);
        let key = (7, 1);
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        let waiters = cache.complete(key, resp(0xAA));
        assert!(waiters.is_empty());
        match cache.begin(key, || 0) {
            Admission::Replay(bytes) => assert_eq!(*bytes, vec![0xAA]),
            other => panic!("expected replay, got {other:?}"),
        }
        assert_eq!(metrics.counters().retry_cache_hits, 1);
    }

    #[test]
    fn duplicates_of_inflight_calls_park_and_release() {
        let (cache, metrics) = cache(Duration::from_secs(60), 16);
        let key = (7, 2);
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        assert!(matches!(cache.begin(key, || 41), Admission::Parked));
        assert!(matches!(cache.begin(key, || 42), Admission::Parked));
        let waiters = cache.complete(key, resp(1));
        assert_eq!(waiters, vec![41, 42]);
        assert_eq!(metrics.counters().retry_cache_parked, 2);
    }

    #[test]
    fn abort_releases_waiters_and_allows_reexecution() {
        let (cache, _) = cache(Duration::from_secs(60), 16);
        let key = (7, 3);
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        assert!(matches!(cache.begin(key, || 9), Admission::Parked));
        assert_eq!(cache.abort(key), vec![9]);
        // The retry after an abort executes afresh.
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
    }

    #[test]
    fn ttl_expires_completed_entries() {
        let (cache, metrics) = cache(Duration::from_millis(20), 16);
        let key = (1, 1);
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        cache.complete(key, resp(1));
        assert!(matches!(cache.begin(key, || 0), Admission::Replay(_)));
        std::thread::sleep(Duration::from_millis(40));
        // Past the TTL the entry is gone: the same key executes again.
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        assert_eq!(metrics.counters().retry_cache_expired, 1);
        assert_eq!(cache.len(), 1, "only the fresh in-flight entry remains");
    }

    #[test]
    fn ttl_never_expires_inflight_entries() {
        let (cache, _) = cache(Duration::from_millis(10), 16);
        let key = (1, 2);
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        std::thread::sleep(Duration::from_millis(30));
        // Still in-flight long past the TTL: the duplicate parks rather
        // than executing a second time.
        assert!(matches!(cache.begin(key, || 5), Admission::Parked));
        assert_eq!(cache.complete(key, resp(2)), vec![5]);
    }

    #[test]
    fn capacity_evicts_oldest_completed_first() {
        let (cache, metrics) = cache(Duration::from_secs(60), 2);
        for seq in 0..3i64 {
            let key = (1, seq);
            assert!(matches!(cache.begin(key, || 0), Admission::Execute));
            cache.complete(key, resp(seq as u8));
        }
        assert_eq!(metrics.counters().retry_cache_evictions, 1);
        // Oldest (seq 0) evicted — it would re-execute; newest replays.
        assert!(matches!(cache.begin((1, 0), || 0), Admission::Execute));
        match cache.begin((1, 2), || 0) {
            Admission::Replay(bytes) => assert_eq!(*bytes, vec![2]),
            other => panic!("expected replay, got {other:?}"),
        }
    }

    #[test]
    fn recompleted_entry_survives_its_stale_order_record_on_eviction() {
        let (cache, metrics) = cache(Duration::from_secs(60), 2);
        let key = (1, 1);
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        cache.complete(key, resp(1));
        // Re-completion (racing-abort shape): the fresh response displaces
        // the old one and leaves a stale order record behind.
        cache.complete(key, resp(2));
        // A third completion overflows capacity; the scan pops the stale
        // record, which must NOT take the fresh response with it.
        let other = (1, 2);
        assert!(matches!(cache.begin(other, || 0), Admission::Execute));
        cache.complete(other, resp(3));
        match cache.begin(key, || 0) {
            Admission::Replay(bytes) => assert_eq!(*bytes, vec![2], "fresh response survives"),
            other => panic!("expected replay, got {other:?}"),
        }
        assert_eq!(metrics.counters().retry_cache_evictions, 0);
    }

    #[test]
    fn recompleted_entry_survives_its_stale_order_record_on_ttl() {
        let (cache, metrics) = cache(Duration::from_millis(60), 16);
        let key = (1, 1);
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        cache.complete(key, resp(1));
        std::thread::sleep(Duration::from_millis(35));
        cache.complete(key, resp(2));
        std::thread::sleep(Duration::from_millis(35));
        // The first completion's order record is past the TTL but points
        // at the re-completed entry: it must be skipped, not expire the
        // fresh response early.
        match cache.begin(key, || 0) {
            Admission::Replay(bytes) => assert_eq!(*bytes, vec![2]),
            other => panic!("expected replay, got {other:?}"),
        }
        assert_eq!(metrics.counters().retry_cache_expired, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (cache, metrics) = cache(Duration::from_secs(60), 0);
        let key = (1, 1);
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        cache.complete(key, resp(1));
        // No memory of the call: the duplicate executes again.
        assert!(matches!(cache.begin(key, || 0), Admission::Execute));
        assert!(cache.is_empty());
        assert_eq!(metrics.counters().retry_cache_hits, 0);
    }

    #[test]
    fn distinct_clients_do_not_collide() {
        let (cache, _) = cache(Duration::from_secs(60), 16);
        assert!(matches!(cache.begin((1, 9), || 0), Admission::Execute));
        assert!(matches!(cache.begin((2, 9), || 0), Admission::Execute));
        cache.complete((1, 9), resp(1));
        match cache.begin((1, 9), || 0) {
            Admission::Replay(bytes) => assert_eq!(*bytes, vec![1]),
            other => panic!("expected replay, got {other:?}"),
        }
        // Client 2's identical seq is still its own in-flight call.
        assert!(matches!(cache.begin((2, 9), || 3), Admission::Parked));
    }
}
