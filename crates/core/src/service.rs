//! Server-side service dispatch.
//!
//! In Hadoop, an RPC server hosts one or more *protocols* (Java
//! interfaces); a call names its protocol and method, and the server
//! reflects into the registered instance. Here a protocol is an
//! [`RpcService`] implementation dispatching on the method name, and a
//! [`ServiceRegistry`] maps protocol names to services.

use std::collections::HashMap;
use std::sync::Arc;

use wire::{DataInput, Writable};

use crate::error::{RpcError, RpcResult};
use crate::sched::{CallPoll, HandlerCx};

/// A protocol implementation hosted by a server.
pub trait RpcService: Send + Sync {
    /// The protocol name clients address this service by
    /// (e.g. `"hdfs.ClientProtocol"`).
    fn protocol(&self) -> &'static str;

    /// Invoke `method`, deserializing its parameter from `param`.
    /// Returns the response value, or an error string that the client will
    /// surface as [`RpcError::Remote`].
    fn call(
        &self,
        method: &str,
        param: &mut dyn DataInput,
    ) -> Result<Box<dyn Writable + Send>, String>;

    /// Poll `method` under the M:N runtime (`handler_runtime = mn`).
    ///
    /// Called once per task poll; a suspending service records a
    /// yield/park request on `cx` (or nothing, meaning "park until my
    /// [`WakeHandle`](crate::sched::WakeHandle) fires"), keeps per-call
    /// state in [`HandlerCx::stash`], and returns [`CallPoll::Pending`];
    /// it is polled again after the wake with `cx.polls()` advanced.
    /// `param` is re-presented from the start of the parameter bytes on
    /// every poll.
    ///
    /// The default completes synchronously via [`RpcService::call`], so
    /// existing services run unmodified under either runtime.
    fn call_mn(&self, method: &str, param: &mut dyn DataInput, cx: &mut HandlerCx<'_>) -> CallPoll {
        let _ = cx;
        CallPoll::Ready(self.call(method, param))
    }
}

/// Immutable-after-build set of services, shared across handler threads.
#[derive(Clone, Default)]
pub struct ServiceRegistry {
    services: HashMap<&'static str, Arc<dyn RpcService>>,
}

impl ServiceRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a service under its protocol name. Panics on duplicates —
    /// that is always a wiring bug.
    pub fn register(&mut self, service: Arc<dyn RpcService>) {
        let name = service.protocol();
        let previous = self.services.insert(name, service);
        assert!(
            previous.is_none(),
            "duplicate protocol registration: {name}"
        );
    }

    /// Dispatch a call.
    pub fn dispatch(
        &self,
        protocol: &str,
        method: &str,
        param: &mut dyn DataInput,
    ) -> RpcResult<Box<dyn Writable + Send>> {
        let service = self
            .services
            .get(protocol)
            .ok_or_else(|| RpcError::UnknownProtocol(protocol.to_owned()))?;
        service.call(method, param).map_err(RpcError::Remote)
    }

    /// Dispatch one poll of a call under the M:N runtime. Protocol
    /// lookup errors are terminal ([`CallPoll::Ready`] with the error);
    /// only the service itself can return [`CallPoll::Pending`].
    pub fn dispatch_mn(
        &self,
        protocol: &str,
        method: &str,
        param: &mut dyn DataInput,
        cx: &mut HandlerCx<'_>,
    ) -> RpcResult<CallPoll> {
        let service = self
            .services
            .get(protocol)
            .ok_or_else(|| RpcError::UnknownProtocol(protocol.to_owned()))?;
        Ok(service.call_mn(method, param, cx))
    }

    /// Registered protocol names (diagnostics).
    pub fn protocols(&self) -> Vec<&'static str> {
        let mut names: Vec<_> = self.services.keys().copied().collect();
        names.sort_unstable();
        names
    }
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("protocols", &self.protocols())
            .finish()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use wire::{BytesWritable, DataInput, IntWritable, NullWritable};

    /// The paper's microbenchmark service: `pingpong` echoes a
    /// `BytesWritable` payload.
    pub struct EchoService;

    impl RpcService for EchoService {
        fn protocol(&self) -> &'static str {
            "test.EchoProtocol"
        }

        fn call(
            &self,
            method: &str,
            param: &mut dyn DataInput,
        ) -> Result<Box<dyn Writable + Send>, String> {
            match method {
                "pingpong" => {
                    let mut payload = BytesWritable::default();
                    payload.read_fields(param).map_err(|e| e.to_string())?;
                    Ok(Box::new(payload))
                }
                "add" => {
                    let mut a = IntWritable::default();
                    let mut b = IntWritable::default();
                    a.read_fields(param).map_err(|e| e.to_string())?;
                    b.read_fields(param).map_err(|e| e.to_string())?;
                    Ok(Box::new(IntWritable(a.0 + b.0)))
                }
                "boom" => Err("deliberate failure".to_owned()),
                "nothing" => {
                    let mut n = NullWritable;
                    n.read_fields(param).map_err(|e| e.to_string())?;
                    Ok(Box::new(NullWritable))
                }
                other => Err(format!("no such method: {other}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::EchoService;
    use super::*;
    use wire::{to_bytes, IntWritable};

    #[test]
    fn dispatch_routes_by_protocol_and_method() {
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(EchoService));
        let mut param = Vec::new();
        param.extend(to_bytes(&IntWritable(2)).unwrap());
        param.extend(to_bytes(&IntWritable(40)).unwrap());
        let result = registry
            .dispatch("test.EchoProtocol", "add", &mut param.as_slice())
            .unwrap();
        assert_eq!(
            to_bytes(result.as_ref()).unwrap(),
            to_bytes(&IntWritable(42)).unwrap()
        );
    }

    #[test]
    fn unknown_protocol_is_an_error() {
        let registry = ServiceRegistry::new();
        let err = registry
            .dispatch("nope", "m", &mut [].as_slice())
            .err()
            .unwrap();
        assert!(matches!(err, RpcError::UnknownProtocol(_)));
    }

    #[test]
    fn app_errors_become_remote() {
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(EchoService));
        let err = registry
            .dispatch("test.EchoProtocol", "boom", &mut [].as_slice())
            .err()
            .unwrap();
        assert_eq!(err, RpcError::Remote("deliberate failure".into()));
    }

    #[test]
    #[should_panic(expected = "duplicate protocol")]
    fn duplicate_registration_panics() {
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(EchoService));
        registry.register(Arc::new(EchoService));
    }
}
