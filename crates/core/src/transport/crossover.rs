//! Adaptive small/large crossover for the RPCoIB transport.
//!
//! The paper picks the eager-vs-RDMA switch point with a static
//! `rdma_threshold` knob tuned offline (§III-B). This module replaces the
//! knob with a live controller fed by the same per-phase cost samples the
//! PR 3 histograms record: every send reports the modeled nanoseconds it
//! spent on whichever path it took, bucketed by log2(payload length).
//! Once a bucket has seen enough traffic on *both* paths, the cheaper
//! path claims it and the threshold moves to the bucket edge. To keep
//! both columns of every contested bucket populated, one send out of
//! every [`PROBE_PERIOD`] in the contested band is routed against the
//! current threshold (an eager-sized frame goes RDMA, or vice versa).
//!
//! Everything here is deterministic for deterministic traffic: routing
//! depends only on a relaxed call counter and the threshold, samples are
//! modeled-ledger deltas (not wall clock), and retuning is a pure
//! function of the accumulated sums. With the knob off (`enabled =
//! false`, the default) routing is exactly the legacy static comparison
//! and no counters advance.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Route one send out of every this-many in the contested band against
/// the threshold, so the losing path keeps producing samples.
const PROBE_PERIOD: u64 = 16;

/// Samples required on *each* path of a bucket before it may retune.
const MIN_SAMPLES: u64 = 4;

/// Log2 buckets cover lengths up to 2^31; larger frames are clamped into
/// the last bucket (they are far past any plausible crossover anyway).
const BUCKETS: usize = 32;

/// Which path a frame was (or should be) sent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Eager: copied into a send WR, received into a posted recv buffer.
    Eager,
    /// One-sided: RDMA-written into the peer's large region.
    Bulk,
}

#[derive(Default)]
struct Bucket {
    eager_count: AtomicU64,
    eager_sum: AtomicU64,
    bulk_count: AtomicU64,
    bulk_sum: AtomicU64,
}

impl Bucket {
    fn reset(&self) {
        self.eager_count.store(0, Ordering::Relaxed);
        self.eager_sum.store(0, Ordering::Relaxed);
        self.bulk_count.store(0, Ordering::Relaxed);
        self.bulk_sum.store(0, Ordering::Relaxed);
    }
}

/// Live small/large crossover controller, one per connection.
pub struct Crossover {
    enabled: bool,
    /// Current switch point: `len <= threshold` routes eager.
    threshold: AtomicUsize,
    /// The threshold never drops below this (tiny frames always eager).
    floor: usize,
    /// The threshold never rises above this: an eager frame must fit the
    /// peer's posted receive buffers (`recv_buf_bytes`).
    cap: usize,
    calls: AtomicU64,
    buckets: Vec<Bucket>,
}

impl Crossover {
    /// `initial` is the configured static threshold; `cap` the largest
    /// frame the eager path can carry (the peer's receive buffer size).
    pub fn new(enabled: bool, initial: usize, cap: usize) -> Self {
        let floor = 1024.min(cap);
        Crossover {
            enabled,
            threshold: AtomicUsize::new(initial.clamp(floor, cap)),
            floor,
            cap,
            calls: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| Bucket::default()).collect(),
        }
    }

    /// The current switch point.
    pub fn threshold(&self) -> usize {
        self.threshold.load(Ordering::Relaxed)
    }

    fn bucket_of(len: usize) -> usize {
        (usize::BITS - 1 - len.max(1).leading_zeros()).min(BUCKETS as u32 - 1) as usize
    }

    /// Pick the path for a frame of `len` bytes. With adaptation off this
    /// is exactly the legacy static comparison.
    pub fn route(&self, len: usize) -> Route {
        let natural = if len <= self.threshold() {
            Route::Eager
        } else {
            Route::Bulk
        };
        if !self.enabled {
            return natural;
        }
        // Probe: inside the band where both paths are viable, sometimes
        // take the other one so its column keeps accumulating samples.
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if len >= self.floor && len <= self.cap && n % PROBE_PERIOD == PROBE_PERIOD - 1 {
            return match natural {
                Route::Eager => Route::Bulk,
                Route::Bulk => Route::Eager,
            };
        }
        natural
    }

    /// Report the modeled cost of a completed send and retune if the
    /// frame's bucket now has a clear winner.
    pub fn record(&self, len: usize, route: Route, modeled_ns: u64) {
        if !self.enabled {
            return;
        }
        let b = Self::bucket_of(len);
        let bucket = &self.buckets[b];
        match route {
            Route::Eager => {
                bucket.eager_count.fetch_add(1, Ordering::Relaxed);
                bucket.eager_sum.fetch_add(modeled_ns, Ordering::Relaxed);
            }
            Route::Bulk => {
                bucket.bulk_count.fetch_add(1, Ordering::Relaxed);
                bucket.bulk_sum.fetch_add(modeled_ns, Ordering::Relaxed);
            }
        }
        self.maybe_retune(b);
    }

    fn maybe_retune(&self, b: usize) {
        let bucket = &self.buckets[b];
        let ec = bucket.eager_count.load(Ordering::Relaxed);
        let bc = bucket.bulk_count.load(Ordering::Relaxed);
        if ec < MIN_SAMPLES || bc < MIN_SAMPLES {
            return;
        }
        let eager_mean = bucket.eager_sum.load(Ordering::Relaxed) / ec;
        let bulk_mean = bucket.bulk_sum.load(Ordering::Relaxed) / bc;
        let lo = 1usize << b;
        let hi = if b + 1 >= usize::BITS as usize {
            usize::MAX
        } else {
            (1usize << (b + 1)) - 1
        };
        let t = self.threshold();
        // Require a >12.5% margin before moving, so ledger-equal paths
        // (or noise from mixed traffic) cannot make the threshold flap.
        let new = if eager_mean * 8 <= bulk_mean * 7 && t < hi.min(self.cap) {
            // Eager clearly cheaper here: claim the whole bucket.
            hi.min(self.cap)
        } else if bulk_mean * 8 <= eager_mean * 7 && t >= lo {
            // Bulk clearly cheaper: push the threshold below the bucket.
            (lo - 1).max(self.floor)
        } else {
            return;
        };
        if new != t {
            self.threshold.store(new, Ordering::Relaxed);
            bucket.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_the_static_comparison() {
        let c = Crossover::new(false, 16 * 1024, 64 * 1024);
        assert_eq!(c.route(16 * 1024), Route::Eager);
        assert_eq!(c.route(16 * 1024 + 1), Route::Bulk);
        // Disabled controllers never learn, however lopsided the data.
        for _ in 0..64 {
            c.record(20_000, Route::Eager, 1);
            c.record(20_000, Route::Bulk, 1_000_000);
        }
        assert_eq!(c.threshold(), 16 * 1024);
    }

    #[test]
    fn probes_flip_the_route_periodically() {
        let c = Crossover::new(true, 16 * 1024, 64 * 1024);
        let flips = (0..PROBE_PERIOD)
            .filter(|_| c.route(20_000) == Route::Eager)
            .count();
        assert_eq!(flips, 1, "exactly one probe per period");
    }

    #[test]
    fn cheaper_eager_raises_threshold_to_the_bucket_edge() {
        let c = Crossover::new(true, 16 * 1024, 64 * 1024);
        for _ in 0..MIN_SAMPLES {
            c.record(20_000, Route::Eager, 1_000);
            c.record(20_000, Route::Bulk, 2_000);
        }
        // 20_000 lives in bucket 14: [16384, 32767].
        assert_eq!(c.threshold(), 32_767);
    }

    #[test]
    fn cheaper_bulk_lowers_threshold_below_the_bucket() {
        let c = Crossover::new(true, 32 * 1024, 64 * 1024);
        for _ in 0..MIN_SAMPLES {
            c.record(20_000, Route::Eager, 2_000);
            c.record(20_000, Route::Bulk, 1_000);
        }
        assert_eq!(c.threshold(), 16_383);
    }

    #[test]
    fn threshold_is_clamped_to_the_eager_cap() {
        let c = Crossover::new(true, 16 * 1024, 64 * 1024);
        for _ in 0..MIN_SAMPLES {
            c.record(65_536, Route::Eager, 1_000);
            c.record(65_536, Route::Bulk, 2_000);
        }
        // Bucket 16's edge is 131071 but eager frames must fit recv_buf.
        assert_eq!(c.threshold(), 64 * 1024);
    }

    #[test]
    fn near_ties_do_not_move_the_threshold() {
        let c = Crossover::new(true, 16 * 1024, 64 * 1024);
        for _ in 0..16 {
            c.record(20_000, Route::Eager, 1_000);
            c.record(20_000, Route::Bulk, 1_050);
        }
        assert_eq!(c.threshold(), 16 * 1024);
    }
}
