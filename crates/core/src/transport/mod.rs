//! Transport abstraction: the socket baseline and the RPCoIB verbs path
//! implement the same [`Conn`] interface, so the client and server engines
//! above are transport-agnostic — exactly the compatibility argument of
//! Section III-A.

pub mod rdma;
pub mod socket;

use std::io;
use std::time::Duration;

use wire::DataOutput;

use crate::error::RpcResult;
use crate::frame::Payload;
use crate::intern::MethodKey;

/// Profile of one outgoing message (feeds Table I columns).
#[derive(Debug, Clone, Copy, Default)]
pub struct SendProfile {
    pub serialize_ns: u64,
    pub send_ns: u64,
    /// Algorithm-1 adjustments (socket) or pool re-acquisitions (RPCoIB).
    pub adjustments: u64,
    pub size: usize,
}

/// Profile of one incoming message (feeds Figure 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecvProfile {
    pub alloc_ns: u64,
    pub total_ns: u64,
    pub size: usize,
}

/// A bidirectional, message-oriented RPC connection.
///
/// `send_msg` may be called from any thread (internally serialized);
/// `recv_msg` must be driven by a single receiving thread at a time —
/// the client's Connection thread, or the server reader *shard* that the
/// connection was hashed onto at accept time. A shard multiplexes many
/// connections by polling `poll_ready` and only then calling `recv_msg`,
/// so no connection's idle wait can block another's traffic.
pub trait Conn: Send + Sync {
    /// Serialize one message via `write` (which receives this transport's
    /// preferred `DataOutput`) and transmit it. `key` indexes the RPCoIB
    /// buffer-size history; the socket path ignores it. Passing the
    /// interned `Copy` key keeps this call allocation-free.
    fn send_msg(
        &self,
        key: MethodKey,
        write: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile>;

    /// Like [`Conn::send_msg`], but the message is written in two parts
    /// and `lead` runs at the transport's *wire-ordering point*: by the
    /// time it executes, the relative order of this frame among all
    /// frames on the connection is final. Stateful encoders (the V3
    /// delta/method-table codec) hang their per-frame state off `lead`,
    /// so concurrent senders can serialize their (large) bodies in
    /// parallel while the (tiny) order-sensitive leads are encoded under
    /// the transport's own ordering lock. The default implementation
    /// simply concatenates the parts inside one `send_msg`, which is
    /// correct for transports whose `send_msg` holds its ordering lock
    /// for the whole serialize+send.
    fn send_msg_ordered(
        &self,
        key: MethodKey,
        lead: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
        body: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile> {
        self.send_msg(key, &mut |out| {
            lead(out)?;
            body(out)
        })
    }

    /// Transmit several already-serialized frames back-to-back, as few
    /// wire operations as the transport can manage (one gathered write on
    /// the socket path, merged completions on verbs). Frame boundaries
    /// are preserved for the receiver; `frames[i]` is everything after
    /// the transport's own framing (length prefix / completion length).
    /// The default implementation degrades to one send per frame.
    fn send_frames(&self, key: MethodKey, frames: Vec<Vec<u8>>) -> RpcResult<()> {
        for frame in frames {
            self.send_msg(key, &mut |out| out.write_bytes(&frame))?;
        }
        Ok(())
    }

    /// Receive the next message. Returns [`crate::RpcError::Timeout`] if
    /// nothing arrives within `timeout` (the caller decides whether to
    /// retry), [`crate::RpcError::ConnectionClosed`] on orderly EOF.
    fn recv_msg(&self, timeout: Duration) -> RpcResult<(Payload, RecvProfile)>;

    /// Whether a `recv_msg` would make progress right now without an idle
    /// wait: data (or EOF, or a local close) is observable. May stage data
    /// internally but consumes nothing; `true` does not guarantee a full
    /// frame is buffered — only that the transport has *something* for the
    /// receiving thread, which may still briefly block assembling the rest
    /// of a frame already in flight. Event-loop shards use this to skip
    /// idle connections.
    fn poll_ready(&self) -> bool;

    /// Tear down the connection; pending and future operations fail.
    fn close(&self);

    /// Human-readable peer description for diagnostics.
    fn peer(&self) -> String;
}
