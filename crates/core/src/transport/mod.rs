//! Transport abstraction: the socket baseline and the RPCoIB verbs path
//! implement the same [`Conn`] interface, so the client and server engines
//! above are transport-agnostic — exactly the compatibility argument of
//! Section III-A.

pub mod rdma;
pub mod socket;

use std::io;
use std::time::Duration;

use wire::DataOutput;

use crate::error::RpcResult;
use crate::frame::Payload;
use crate::intern::MethodKey;

/// Profile of one outgoing message (feeds Table I columns).
#[derive(Debug, Clone, Copy, Default)]
pub struct SendProfile {
    pub serialize_ns: u64,
    pub send_ns: u64,
    /// Algorithm-1 adjustments (socket) or pool re-acquisitions (RPCoIB).
    pub adjustments: u64,
    pub size: usize,
}

/// Profile of one incoming message (feeds Figure 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecvProfile {
    pub alloc_ns: u64,
    pub total_ns: u64,
    pub size: usize,
}

/// A bidirectional, message-oriented RPC connection.
///
/// `send_msg` may be called from any thread (internally serialized);
/// `recv_msg` must be driven by a single receiving thread at a time —
/// the client's Connection thread, or the server reader *shard* that the
/// connection was hashed onto at accept time. A shard multiplexes many
/// connections by polling `poll_ready` and only then calling `recv_msg`,
/// so no connection's idle wait can block another's traffic.
pub trait Conn: Send + Sync {
    /// Serialize one message via `write` (which receives this transport's
    /// preferred `DataOutput`) and transmit it. `key` indexes the RPCoIB
    /// buffer-size history; the socket path ignores it. Passing the
    /// interned `Copy` key keeps this call allocation-free.
    fn send_msg(
        &self,
        key: MethodKey,
        write: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile>;

    /// Receive the next message. Returns [`crate::RpcError::Timeout`] if
    /// nothing arrives within `timeout` (the caller decides whether to
    /// retry), [`crate::RpcError::ConnectionClosed`] on orderly EOF.
    fn recv_msg(&self, timeout: Duration) -> RpcResult<(Payload, RecvProfile)>;

    /// Whether a `recv_msg` would make progress right now without an idle
    /// wait: data (or EOF, or a local close) is observable. May stage data
    /// internally but consumes nothing; `true` does not guarantee a full
    /// frame is buffered — only that the transport has *something* for the
    /// receiving thread, which may still briefly block assembling the rest
    /// of a frame already in flight. Event-loop shards use this to skip
    /// idle connections.
    fn poll_ready(&self) -> bool;

    /// Tear down the connection; pending and future operations fail.
    fn close(&self);

    /// Human-readable peer description for diagnostics.
    fn peer(&self) -> String;
}
