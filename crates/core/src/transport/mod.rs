//! Transport abstraction: the socket baseline and the RPCoIB verbs path
//! implement the same [`Conn`] interface, so the client and server engines
//! above are transport-agnostic — exactly the compatibility argument of
//! Section III-A.

pub mod crossover;
pub mod rdma;
pub mod socket;

use std::io;
use std::time::Duration;

use wire::DataOutput;

use crate::error::RpcResult;
use crate::frame::Payload;
use crate::intern::MethodKey;

/// Profile of one outgoing message (feeds Table I columns).
#[derive(Debug, Clone, Copy, Default)]
pub struct SendProfile {
    pub serialize_ns: u64,
    pub send_ns: u64,
    /// Algorithm-1 adjustments (socket) or pool re-acquisitions (RPCoIB).
    pub adjustments: u64,
    pub size: usize,
}

/// Profile of one incoming message (feeds Figure 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecvProfile {
    pub alloc_ns: u64,
    pub total_ns: u64,
    pub size: usize,
}

/// A bidirectional, message-oriented RPC connection.
///
/// `send_msg` may be called from any thread (internally serialized);
/// `recv_msg` must be driven by a single receiving thread at a time —
/// the client's Connection thread, or the server reader *shard* that the
/// connection was hashed onto at accept time. A shard multiplexes many
/// connections event-style: each conn's [`Conn::set_ready_hook`] enqueues
/// a wake token when input becomes observable, the shard blocks on its
/// ready queue, and `poll_ready` stays the level-triggered truth the
/// shard re-checks on every wake (so a spurious or duplicate wake is
/// harmless, and a conn with residual input is re-armed). Idle
/// connections therefore cost nothing per scheduling round.
pub trait Conn: Send + Sync {
    /// Serialize one message via `write` (which receives this transport's
    /// preferred `DataOutput`) and transmit it. `key` indexes the RPCoIB
    /// buffer-size history; the socket path ignores it. Passing the
    /// interned `Copy` key keeps this call allocation-free.
    fn send_msg(
        &self,
        key: MethodKey,
        write: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile>;

    /// Like [`Conn::send_msg`], but the message is written in two parts
    /// and `lead` runs at the transport's *wire-ordering point*: by the
    /// time it executes, the relative order of this frame among all
    /// frames on the connection is final. Stateful encoders (the V3
    /// delta/method-table codec) hang their per-frame state off `lead`,
    /// so concurrent senders can serialize their (large) bodies in
    /// parallel while the (tiny) order-sensitive leads are encoded under
    /// the transport's own ordering lock. The default implementation
    /// simply concatenates the parts inside one `send_msg`, which is
    /// correct for transports whose `send_msg` holds its ordering lock
    /// for the whole serialize+send.
    fn send_msg_ordered(
        &self,
        key: MethodKey,
        lead: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
        body: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile> {
        self.send_msg(key, &mut |out| {
            lead(out)?;
            body(out)
        })
    }

    /// Transmit several already-serialized frames back-to-back, as few
    /// wire operations as the transport can manage (one gathered write on
    /// the socket path, merged completions on verbs). Frame boundaries
    /// are preserved for the receiver; `frames[i]` is everything after
    /// the transport's own framing (length prefix / completion length).
    /// The default implementation degrades to one send per frame.
    fn send_frames(&self, key: MethodKey, frames: Vec<Vec<u8>>) -> RpcResult<()> {
        for frame in frames {
            self.send_msg(key, &mut |out| out.write_bytes(&frame))?;
        }
        Ok(())
    }

    /// Receive the next message. Returns [`crate::RpcError::Timeout`] if
    /// nothing arrives within `timeout` (the caller decides whether to
    /// retry), [`crate::RpcError::ConnectionClosed`] on orderly EOF.
    fn recv_msg(&self, timeout: Duration) -> RpcResult<(Payload, RecvProfile)>;

    /// Whether a `recv_msg` would make progress right now without an idle
    /// wait: data (or EOF, or a local close) is observable. May stage data
    /// internally but consumes nothing; `true` does not guarantee a full
    /// frame is buffered — only that the transport has *something* for the
    /// receiving thread, which may still briefly block assembling the rest
    /// of a frame already in flight. Event-loop shards use this to skip
    /// idle connections.
    fn poll_ready(&self) -> bool;

    /// Arm the readiness notification: `hook` fires (possibly on the
    /// peer's writer thread — it must be cheap, non-blocking, and must
    /// not call back into this connection) whenever new input becomes
    /// observable — bytes arrive, EOF hits, a verbs recv completes, or
    /// [`Conn::close`] is called locally. Edges may coalesce and
    /// duplicate; consumers re-check [`Conn::poll_ready`] on every fire.
    /// The default is a no-op, which degrades consumers to polling.
    fn set_ready_hook(&self, _hook: std::sync::Arc<dyn Fn() + Send + Sync>) {}

    /// Bytes buffered inside the transport awaiting `recv_msg` (received
    /// but unconsumed input). Feeds the server's per-connection memory
    /// accounting; `0` when the transport doesn't track it.
    fn buffered_bytes(&self) -> usize {
        0
    }

    /// Tear down the connection; pending and future operations fail.
    fn close(&self);

    /// Human-readable peer description for diagnostics.
    fn peer(&self) -> String;
}
