//! The RPCoIB transport: native verbs, JVM-bypass buffers, send/recv for
//! small messages and one-sided RDMA writes for large ones.
//!
//! Connection establishment follows Section III-D: the client connects to
//! the server's ordinary socket address and the two sides exchange
//! end-point information (queue-pair endpoint, large-region rkey, region
//! geometry) over that stream; all subsequent communication is native IB.
//! The hello is versioned, length-checked and validated — a malformed or
//! inconsistent peer is rejected with a protocol error, never a panic.
//!
//! Message paths:
//!
//! * **eager** (≤ the crossover threshold): serialized directly into a
//!   pooled registered buffer and `post_send`-ed from it; the receiver has
//!   a ring of pre-posted pooled buffers, and deserialization reads
//!   straight out of the one the message landed in. Zero copies beyond
//!   the (simulated) DMA itself.
//! * **bulk**: the peer's large region is divided into a ring of
//!   equal-size slots. A frame claims as many contiguous slots as it
//!   needs from the [`SlotRing`], is RDMA-written into them *gather-style*
//!   from the pooled registered segments the serializer produced (an
//!   8-byte length header, then the payload segments back-to-back; no
//!   staging copy, no jumbo buffer), and is announced with an immediate
//!   carrying the slot offset and the slot count to credit back. The
//!   receiver drains the frame into a pooled buffer and returns credits
//!   in batches — so pipelined large transfers overlap in the region
//!   instead of serializing on a one-deep handshake, while
//!   `large_slots = 1` reproduces the paper's one-deep gate exactly.
//!
//! The eager/bulk switch point is the static `rdma_threshold` by default;
//! with `adaptive_rdma_threshold` on, a per-connection
//! [`Crossover`](crate::transport::crossover::Crossover) controller
//! auto-tunes it from live modeled-cost samples.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bufpool::{NativePool, PoolMem, PooledBuf, RdmaMemFactory, ShadowPool, SizeClasses};
use parking_lot::{Condvar, Mutex};
use simnet::{
    CompletionKind, Fabric, MemoryRegion, NodeId, QpEndpoint, QueuePair, RdmaDevice, RemoteKey,
    SimStream, VerbsError,
};
use wire::DataOutput;

use crate::config::{RpcConfig, MAX_LARGE_SLOTS};
use crate::error::{RpcError, RpcResult};
use crate::frame::Payload;
use crate::hostcost;
use crate::intern::MethodKey;
use crate::metrics::{MetricsRegistry, Phase, PoolCounters};
use crate::stream::RdmaGatherStream;
use crate::transport::crossover::{Crossover, Route};
use crate::transport::{Conn, RecvProfile, SendProfile};

/// Immediate tag: payload is a complete frame in the posted recv buffer.
const IMM_SMALL: u32 = 1;
/// Immediate tag: a frame was RDMA-written into the receiver's large
/// region. Bits 8..20 carry the starting slot index, bits 20..32 the slot
/// count to credit back (which can exceed the frame's own footprint when
/// the grant wrapped past the end of the ring).
const IMM_LARGE: u32 = 2;
/// Immediate tag: the receiver drained its large region; bits 8.. carry
/// how many slots are being credited back (flow control).
const IMM_CREDIT: u32 = 3;
/// Immediate tag: the posted recv buffer holds several small frames
/// back-to-back, each as `[vlong len][frame]` — the responder's batched
/// sweep merged into one send (RDMAbox-style io-merging).
const IMM_BATCH: u32 = 4;

/// How finely blocked polls slice their waits to notice closure.
const POLL_SLICE: Duration = Duration::from_millis(50);

/// Length prefix written ahead of a bulk frame in its first slot.
const HEADER_BYTES: usize = 8;

/// Bootstrap hello framing: magic, version, and fixed length.
const HELLO_MAGIC: u32 = 0x5250_4942; // "RPIB"
const HELLO_VERSION: u8 = 2;
const HELLO_BYTES: usize = 48;

/// No sane peer advertises a terabyte-scale pinned region.
const MAX_SANE_REGION: u64 = 1 << 40;

fn verbs_err(e: VerbsError) -> RpcError {
    match e {
        VerbsError::PeerDown => RpcError::ConnectionClosed,
        other => RpcError::Verbs(other),
    }
}

/// Per-endpoint verbs state: the opened device and the two-level buffer
/// pool (pre-registered at startup). Shared by every connection of one
/// client or server.
#[derive(Clone)]
pub struct IbContext {
    device: RdmaDevice,
    pool: ShadowPool<MemoryRegion>,
}

impl std::fmt::Debug for IbContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IbContext")
            .field("node", &self.device.node())
            .finish()
    }
}

impl IbContext {
    /// Open the HCA on `node` and build the pre-registered pool.
    pub fn new(fabric: &Fabric, node: NodeId, cfg: &RpcConfig) -> RpcResult<IbContext> {
        let device = RdmaDevice::open(fabric, node).map_err(|_| {
            RpcError::Config(format!(
                "RPCoIB requires an RDMA-capable fabric model, got '{}'",
                fabric.model().name
            ))
        })?;
        let factory = RdmaMemFactory::new(device.clone());
        let ladder = SizeClasses::up_to(cfg.large_region_bytes);
        let pool = ShadowPool::new(
            NativePool::new(ladder, move |len| factory.allocate(len)),
            cfg.use_size_history,
        );
        // Pre-register the small classes (the ones per-call traffic uses);
        // jumbo classes are registered lazily on first use — and once
        // registered, the retention policy below caches a few idle ones
        // per class so steady-state large traffic re-uses registrations,
        // while a burst's surplus deregisters in batched sweeps.
        for idx in 0..ladder.count {
            if ladder.capacity(idx) <= cfg.recv_buf_bytes {
                pool.native().prefill_class(idx, cfg.prefill_per_class);
            }
        }
        pool.native().set_jumbo_retention(cfg.recv_buf_bytes, 4, 8);
        // The receive-ring class gets a full ring plus slack up front, so
        // connection bring-up and the first calls never register inline —
        // "pre-allocated and pre-registered when the RPCoIB library
        // loads" (Section III-B).
        if let Some(ring_class) = ladder.class_of(cfg.recv_buf_bytes) {
            pool.native()
                .prefill_class(ring_class, cfg.posted_recvs + 8);
        }
        Ok(IbContext { device, pool })
    }

    /// The shared two-level pool.
    pub fn pool(&self) -> &ShadowPool<MemoryRegion> {
        &self.pool
    }

    /// Pre-register `per_class` extra buffers in every class up to
    /// `max_bytes`, jumbo classes included. `IbContext::new` prefills the
    /// small per-call classes; a workload that knows it will move large
    /// frames can call this to take the one-time registration cost at
    /// load time instead of on the first large call — Section III-B's
    /// "pre-allocated and pre-registered when the RPCoIB library loads",
    /// extended to the large ladder.
    pub fn prewarm(&self, max_bytes: usize, per_class: usize) {
        let ladder = self.pool.native().classes();
        for idx in 0..ladder.count {
            if ladder.capacity(idx) <= max_bytes {
                self.pool.native().prefill_class(idx, per_class);
            }
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &RdmaDevice {
        &self.device
    }

    /// (hits, misses, returns, oversize) of the native pool.
    pub fn pool_stats(&self) -> (u64, u64, u64, u64) {
        self.pool.native().stats().snapshot()
    }

    /// Both pool levels' counters in the shape the unified metrics
    /// snapshot carries: the shadow pool's size-history behaviour plus the
    /// native registered-buffer pool underneath.
    pub fn pool_counters(&self) -> PoolCounters {
        let (history_hits, grows, shrinks, cold) = self.pool.stats().snapshot();
        let (native_hits, native_misses, native_returns, oversize) =
            self.pool.native().stats().snapshot();
        PoolCounters {
            history_hits,
            grows,
            shrinks,
            cold,
            native_hits,
            native_misses,
            native_returns,
            oversize,
        }
    }
}

/// A grant of `consumed` credits whose frame starts at slot `start`. The
/// `ticket` orders the actual RDMA writes: grants must hit the wire in
/// grant order or the receiver's FIFO drain would credit slots a later,
/// still-unwritten frame already owns.
struct Grant {
    start: usize,
    consumed: usize,
    ticket: u64,
}

struct RingState {
    /// Free slots. The free region is always contiguous — allocation
    /// walks the ring in order and the receiver drains frames in arrival
    /// order — so `credits >= k` means the next `k` slots are free.
    credits: usize,
    /// Next slot index to allocate.
    ring_pos: usize,
    /// Next ticket to issue / next ticket allowed to post.
    next_ticket: u64,
    turn: u64,
    closed: bool,
}

/// Multi-slot credit ring over the peer's large region. `slots = 1`
/// degenerates to the paper's one-deep credit gate.
struct SlotRing {
    slots: usize,
    state: Mutex<RingState>,
    cv: Condvar,
}

impl SlotRing {
    fn new(slots: usize) -> SlotRing {
        SlotRing {
            slots,
            state: Mutex::new(RingState {
                credits: slots,
                ring_pos: 0,
                next_ticket: 0,
                turn: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Claim `k` contiguous slots, waiting up to `budget` (sliced, so a
    /// concurrent close is noticed promptly). Exhausting the budget is
    /// [`RpcError::CreditStarved`] — the peer is alive but not draining.
    fn acquire(&self, k: usize, budget: Duration) -> RpcResult<Grant> {
        debug_assert!(k >= 1 && k <= self.slots);
        let mut remaining = budget;
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(RpcError::ConnectionClosed);
            }
            let tail = self.slots - st.ring_pos;
            let granted = if k <= tail {
                // Contiguous from the cursor.
                (st.credits >= k).then(|| {
                    let start = st.ring_pos;
                    st.ring_pos = (st.ring_pos + k) % self.slots;
                    st.credits -= k;
                    (start, k)
                })
            } else if tail + k <= self.slots {
                // Wrap: skip the tail stub and start at slot 0. The
                // skipped slots are *consumed* with the grant (and
                // credited back by the receiver via the imm's count) —
                // leaving them nominally free would let their credits pay
                // for slots an earlier in-flight frame still occupies.
                (st.credits >= tail + k).then(|| {
                    st.ring_pos = k % self.slots;
                    st.credits -= tail + k;
                    (0, tail + k)
                })
            } else {
                // The frame is too big to wrap-with-skip (tail + k would
                // exceed the ring). Wait for a full drain: with nothing
                // outstanding the ring is equivalent to a fresh one and
                // the cursor can reset to 0.
                (st.credits == self.slots).then(|| {
                    st.ring_pos = k % self.slots;
                    st.credits -= k;
                    (0, k)
                })
            };
            if let Some((start, consumed)) = granted {
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                return Ok(Grant {
                    start,
                    consumed,
                    ticket,
                });
            }
            if remaining.is_zero() {
                return Err(RpcError::CreditStarved);
            }
            let slice = POLL_SLICE.min(remaining);
            self.cv.wait_for(&mut st, slice);
            remaining = remaining.saturating_sub(slice);
        }
    }

    /// Block until `ticket` may post its writes.
    fn await_turn(&self, ticket: u64) -> RpcResult<()> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(RpcError::ConnectionClosed);
            }
            if st.turn == ticket {
                return Ok(());
            }
            self.cv.wait_for(&mut st, POLL_SLICE);
        }
    }

    /// Pass the turn to the next granted ticket. Must run exactly once
    /// per successful [`SlotRing::acquire`], error paths included.
    fn advance_turn(&self) {
        let mut st = self.state.lock();
        st.turn += 1;
        self.cv.notify_all();
    }

    /// Return `n` drained slots announced by a peer credit message.
    fn release(&self, n: usize) {
        let mut st = self.state.lock();
        st.credits = (st.credits + n).min(self.slots);
        self.cv.notify_all();
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

struct SendState {
    /// Tiny dedicated region for credit messages.
    credit_mr: MemoryRegion,
    /// Dedicated region the bulk path writes length headers from. Safe to
    /// reuse per-frame: bulk posting is serialized by the ring turnstile.
    header_mr: MemoryRegion,
}

/// An established RPCoIB connection.
pub struct RdmaConn {
    ctx: IbContext,
    cfg: RpcConfig,
    qp: QueuePair,
    /// Region the *peer* RDMA-writes large frames into.
    my_large: MemoryRegion,
    /// Slot geometry of `my_large` (receiver side of the bulk plane).
    my_slots: usize,
    my_slot_size: usize,
    peer_rkey: RemoteKey,
    /// Slot geometry of the peer's region (sender side of the bulk plane).
    peer_slots: usize,
    peer_slot_size: usize,
    /// Receive buffers currently posted, by work-request id.
    posted: Mutex<HashMap<u64, PooledBuf<MemoryRegion>>>,
    /// Frames unpacked from an [`IMM_BATCH`] completion beyond the first,
    /// served by subsequent `recv_msg` calls before the wire is polled.
    stash: Mutex<std::collections::VecDeque<Vec<u8>>>,
    next_wr: AtomicU64,
    send: Mutex<SendState>,
    /// Credits over the *peer's* region, spent by our bulk sends.
    ring: SlotRing,
    /// Slots of *our* region drained but not yet credited back to the
    /// peer; flushed in batches of `credit_batch` (or when the inbox goes
    /// quiet, so a lone transfer is credited immediately).
    pending_credits: Mutex<usize>,
    credit_batch: usize,
    /// Recycled storage for the gather serializer's segment list, so a
    /// steady-state bulk send allocates nothing.
    seg_scratch: Mutex<Vec<PooledBuf<MemoryRegion>>>,
    /// Eager/bulk switch point (static, or adaptive when configured).
    crossover: Crossover,
    closed: AtomicBool,
    peer_desc: String,
    /// When attached, every send feeds the per-`<protocol, method>`
    /// serialize/wire phase histograms.
    metrics: Option<MetricsRegistry>,
    /// Copy of the armed readiness hook, so a local `close()` can deliver
    /// its own wake (the QP only fires for peer-side completions).
    ready_hook: Mutex<Option<std::sync::Arc<dyn Fn() + Send + Sync>>>,
}

fn hello_field<const N: usize>(buf: &[u8], at: usize) -> RpcResult<[u8; N]> {
    buf.get(at..at + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or_else(|| RpcError::Protocol("truncated bootstrap hello".into()))
}

/// Parse and validate a peer hello. Every field is length-checked and
/// range-checked before use — a garbage peer gets a clean protocol error.
fn parse_hello(buf: &[u8], cfg: &RpcConfig) -> RpcResult<(QpEndpoint, RemoteKey, usize, usize)> {
    let magic = u32::from_be_bytes(hello_field::<4>(buf, 0)?);
    if magic != HELLO_MAGIC {
        return Err(RpcError::Protocol(format!(
            "bad bootstrap magic {magic:#010x}"
        )));
    }
    let version = buf
        .get(4)
        .copied()
        .ok_or_else(|| RpcError::Protocol("truncated bootstrap hello".into()))?;
    if version != HELLO_VERSION {
        return Err(RpcError::Protocol(format!(
            "unsupported bootstrap version {version} (expected {HELLO_VERSION})"
        )));
    }
    let peer_ep = QpEndpoint::from_bytes(hello_field::<12>(buf, 8)?);
    let peer_rkey = RemoteKey::from_bytes(hello_field::<12>(buf, 20)?);
    let large = u64::from_be_bytes(hello_field::<8>(buf, 32)?);
    let slots = u32::from_be_bytes(hello_field::<4>(buf, 40)?) as usize;
    if large == 0 || large > MAX_SANE_REGION {
        return Err(RpcError::Protocol(format!(
            "peer advertises an unusable {large}-byte large region"
        )));
    }
    let large = large as usize;
    if large < cfg.rdma_threshold {
        return Err(RpcError::Protocol(format!(
            "peer's {large}-byte large region is smaller than the {}-byte rdma_threshold: \
             frames between the two would be unsendable",
            cfg.rdma_threshold
        )));
    }
    if slots == 0 || slots > MAX_LARGE_SLOTS {
        return Err(RpcError::Protocol(format!(
            "peer advertises {slots} large-region slots (valid: 1..={MAX_LARGE_SLOTS})"
        )));
    }
    if !large.is_multiple_of(slots) {
        return Err(RpcError::Protocol(format!(
            "peer's {large}-byte large region is not divisible into {slots} slots"
        )));
    }
    Ok((peer_ep, peer_rkey, large, slots))
}

impl RdmaConn {
    /// Run the end-point exchange over an established bootstrap stream and
    /// bring up the verbs connection. Symmetric: both the client and the
    /// server side call this on their end of the stream.
    pub fn bootstrap(stream: &SimStream, ctx: &IbContext, cfg: &RpcConfig) -> RpcResult<RdmaConn> {
        let qp = ctx.device.create_qp();
        let my_large = ctx.device.register(cfg.large_region_bytes);

        // Send our endpoint info: magic + version, QP endpoint, the
        // large-region rkey and its slot geometry.
        let mut hello = [0u8; HELLO_BYTES];
        hello[0..4].copy_from_slice(&HELLO_MAGIC.to_be_bytes());
        hello[4] = HELLO_VERSION;
        hello[8..20].copy_from_slice(&qp.endpoint().to_bytes());
        hello[20..32].copy_from_slice(&my_large.remote_key().to_bytes());
        hello[32..40].copy_from_slice(&(cfg.large_region_bytes as u64).to_be_bytes());
        hello[40..44].copy_from_slice(&(cfg.large_slots as u32).to_be_bytes());
        (&*stream)
            .write_all(&hello)
            .map_err(|e| RpcError::Io(e.to_string()))?;

        // Receive and validate theirs.
        let mut peer = [0u8; HELLO_BYTES];
        stream
            .read_exact_at(&mut peer)
            .map_err(|e| RpcError::Io(e.to_string()))?;
        let (peer_ep, peer_rkey, peer_large_size, peer_slots) = parse_hello(&peer, cfg)?;

        qp.connect(peer_ep);

        let conn = RdmaConn {
            ctx: ctx.clone(),
            cfg: cfg.clone(),
            qp,
            my_large,
            my_slots: cfg.large_slots,
            my_slot_size: cfg.large_region_bytes / cfg.large_slots,
            peer_rkey,
            peer_slots,
            peer_slot_size: peer_large_size / peer_slots,
            posted: Mutex::new(HashMap::new()),
            stash: Mutex::new(std::collections::VecDeque::new()),
            next_wr: AtomicU64::new(1),
            send: Mutex::new(SendState {
                credit_mr: ctx.device.register(128),
                header_mr: ctx.device.register(64),
            }),
            ring: SlotRing::new(peer_slots),
            pending_credits: Mutex::new(0),
            credit_batch: (cfg.large_slots / 2).max(1),
            seg_scratch: Mutex::new(Vec::new()),
            crossover: Crossover::new(
                cfg.adaptive_rdma_threshold,
                cfg.rdma_threshold,
                cfg.recv_buf_bytes,
            ),
            closed: AtomicBool::new(false),
            peer_desc: format!("rdma:{}", peer_ep.node),
            metrics: None,
            ready_hook: Mutex::new(None),
        };
        // Pre-post the receive ring before the peer can possibly send.
        for _ in 0..cfg.posted_recvs {
            conn.post_one_recv();
        }
        Ok(conn)
    }

    /// Attach a metrics registry; subsequent sends record their serialize
    /// and wire times into its phase histograms.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The live eager/bulk switch point (equals `rdma_threshold` unless
    /// the adaptive controller has moved it).
    pub fn crossover_threshold(&self) -> usize {
        self.crossover.threshold()
    }

    fn post_one_recv(&self) {
        let wr = self.next_wr.fetch_add(1, Ordering::Relaxed);
        let buf = self.ctx.pool.acquire_size(self.cfg.recv_buf_bytes);
        self.qp.post_recv(wr, buf.mem().clone());
        self.posted.lock().insert(wr, buf);
    }

    /// A completion for a work-request id we never posted means the
    /// connection's accounting is corrupt: count it, tear the connection
    /// down, and surface a protocol error instead of killing the reader.
    fn take_posted(&self, wr_id: u64) -> RpcResult<PooledBuf<MemoryRegion>> {
        match self.posted.lock().remove(&wr_id) {
            Some(buf) => Ok(buf),
            None => {
                Err(self
                    .frame_corruption(format!("completion for unknown work-request id {wr_id}")))
            }
        }
    }

    /// Record an unrecoverable framing-level fault: the connection's wire
    /// state can no longer be trusted, so close it and hand back the
    /// protocol error for the caller to surface.
    fn frame_corruption(&self, msg: String) -> RpcError {
        if let Some(m) = &self.metrics {
            m.inc_frame_errors();
        }
        self.close();
        RpcError::Protocol(msg)
    }

    fn send_credit(&self, count: usize) -> RpcResult<()> {
        let state = self.send.lock();
        state.credit_mr.write_at(0, &[0]).map_err(verbs_err)?;
        self.qp
            .post_send(&state.credit_mr, 0, 1, IMM_CREDIT | ((count as u32) << 8))
            .map_err(verbs_err)
    }

    /// Flush accumulated drain credits when the batch is full or the
    /// inbox has gone quiet (so a lone transfer is credited immediately —
    /// its latency is identical to the one-deep gate's).
    fn maybe_flush_credits(&self) {
        let count = {
            let mut pending = self.pending_credits.lock();
            if *pending == 0 {
                return;
            }
            if *pending < self.credit_batch && self.qp.recv_pending() {
                return;
            }
            std::mem::take(&mut *pending)
        };
        // Best-effort: if the peer has gone away the credits are moot.
        let _ = self.send_credit(count);
    }

    /// Claim slots, wait for the posting turn, and gather-write one bulk
    /// frame into the peer's region.
    fn send_bulk(&self, segs: &[PooledBuf<MemoryRegion>], len: usize) -> RpcResult<()> {
        debug_assert!(len > 0, "zero-length frames always route eager");
        let footprint = len + HEADER_BYTES;
        let k = footprint.div_ceil(self.peer_slot_size);
        if k > self.peer_slots {
            return Err(RpcError::Protocol(format!(
                "frame of {len} bytes needs {k} slots but the peer's region has \
                 {} slots of {} bytes",
                self.peer_slots, self.peer_slot_size
            )));
        }
        let grant = self.ring.acquire(k, self.cfg.call_timeout)?;
        self.ring.await_turn(grant.ticket)?;
        let result = self.post_bulk_writes(&grant, segs, len);
        self.ring.advance_turn();
        if let Err(e) = result {
            // A failed write mid-frame breaks the ring's in-order
            // crediting story (this grant's credits may never return);
            // a verbs-level failure invalidates the connection anyway.
            self.close();
            return Err(e);
        }
        Ok(())
    }

    fn post_bulk_writes(
        &self,
        grant: &Grant,
        segs: &[PooledBuf<MemoryRegion>],
        len: usize,
    ) -> RpcResult<()> {
        let base = grant.start * self.peer_slot_size;
        let imm = IMM_LARGE | ((grant.start as u32) << 8) | ((grant.consumed as u32) << 20);
        let state = self.send.lock();
        state
            .header_mr
            .write_at(0, &(len as u64).to_be_bytes())
            .map_err(verbs_err)?;
        // Header + segments go out as ONE doorbell-batched chain, so the
        // whole frame pays a single propagation latency regardless of
        // how many pooled segments the gather produced. The immediate
        // rides the chain and announces only after its last byte. The
        // chain is described computationally (every sealed segment holds
        // exactly `recv_buf_bytes`, the last holds the remainder) so the
        // send path stays allocation-free.
        let seg_bytes = self.cfg.recv_buf_bytes;
        let chain = std::iter::once((&state.header_mr, 0usize, HEADER_BYTES, base)).chain(
            segs.iter()
                .take(len.div_ceil(seg_bytes))
                .enumerate()
                .map(|(i, seg)| {
                    let n = (len - i * seg_bytes).min(seg_bytes);
                    (seg.mem(), 0usize, n, base + HEADER_BYTES + i * seg_bytes)
                }),
        );
        self.qp
            .rdma_write_vectored(chain, self.peer_rkey, Some(imm))
            .map_err(verbs_err)?;
        Ok(())
    }

    /// Validate an [`IMM_LARGE`] announcement against our region geometry
    /// and read the frame's length header. Violations tear the
    /// connection down — an out-of-contract peer write means the region
    /// contents can't be trusted.
    fn bulk_frame_len(&self, start: usize, consumed: usize) -> RpcResult<usize> {
        if consumed == 0 || start + consumed > self.my_slots {
            return Err(self.frame_corruption(format!(
                "bulk announcement out of range: start={start} consumed={consumed} \
                 with {} slots",
                self.my_slots
            )));
        }
        let base = start * self.my_slot_size;
        let mut hdr = [0u8; HEADER_BYTES];
        self.my_large.read_at(base, &mut hdr).map_err(verbs_err)?;
        let len = u64::from_be_bytes(hdr) as usize;
        if base + HEADER_BYTES + len > self.cfg.large_region_bytes {
            return Err(self.frame_corruption(format!(
                "bulk frame of {len} bytes at slot {start} overruns the \
                 {}-byte region",
                self.cfg.large_region_bytes
            )));
        }
        Ok(len)
    }

    /// Post the accumulated `[vlong len][frame]…` chunk as one
    /// [`IMM_BATCH`] send from a pooled registered buffer.
    fn flush_batch_chunk(&self, chunk: &mut Vec<u8>, frames_in_chunk: &mut usize) -> RpcResult<()> {
        if *frames_in_chunk == 0 {
            return Ok(());
        }
        let mut buf = self.ctx.pool.acquire_size(chunk.len());
        buf.mem_mut().put(0, chunk);
        let state = self.send.lock();
        self.qp
            .post_send(buf.mem(), 0, chunk.len(), IMM_BATCH)
            .map_err(verbs_err)?;
        drop(state);
        chunk.clear();
        *frames_in_chunk = 0;
        Ok(())
    }
}

impl Conn for RdmaConn {
    fn send_msg(
        &self,
        key: MethodKey,
        write: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile> {
        if self.closed.load(Ordering::Acquire) {
            return Err(RpcError::ConnectionClosed);
        }

        // --- Serialization: straight into pooled registered segments. ---
        let ser_start = Instant::now();
        let scratch = self
            .seg_scratch
            .try_lock()
            .map(|mut v| std::mem::take(&mut *v))
            .unwrap_or_default();
        let mut out = RdmaGatherStream::new(&self.ctx.pool, key, self.cfg.recv_buf_bytes, scratch);
        write(&mut out)?;
        let (mut segs, len, grows) = out.finish();
        let serialize_ns = ser_start.elapsed().as_nanos() as u64;

        // --- Transmission. ---
        let send_start = Instant::now();
        let fabric = self.ctx.device.fabric();
        let node = self.ctx.device.node();
        let modeled_before = fabric.modeled_ns(node);
        let mut route = self.crossover.route(len);
        if route == Route::Eager && segs.len() > 1 {
            // Can't happen while the controller caps its threshold at the
            // segment size; routed defensively rather than asserted.
            route = Route::Bulk;
        }
        match route {
            Route::Eager => {
                let state = self.send.lock();
                self.qp
                    .post_send(segs[0].mem(), 0, len, IMM_SMALL)
                    .map_err(verbs_err)?;
                drop(state);
            }
            Route::Bulk => self.send_bulk(&segs, len)?,
        }
        let modeled_delta = fabric.modeled_ns(node).saturating_sub(modeled_before);
        self.crossover.record(len, route, modeled_delta);
        let send_ns = send_start.elapsed().as_nanos() as u64;

        // Segments return to the pool; their Vec storage is recycled.
        segs.clear();
        if let Some(mut slot) = self.seg_scratch.try_lock() {
            if slot.capacity() < segs.capacity() {
                *slot = segs;
            }
        }

        if let Some(m) = &self.metrics {
            let entry = m.entry(key);
            entry.record_phase(Phase::Serialize, serialize_ns);
            entry.record_phase(Phase::Wire, send_ns);
        }

        Ok(SendProfile {
            serialize_ns,
            send_ns,
            adjustments: grows,
            size: len,
        })
    }

    fn send_frames(&self, key: MethodKey, frames: Vec<Vec<u8>>) -> RpcResult<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(RpcError::ConnectionClosed);
        }
        if !self.cfg.wire_batch || frames.len() == 1 {
            for frame in frames {
                self.send_msg(key, &mut |out| out.write_bytes(&frame))?;
            }
            return Ok(());
        }
        // Merge consecutive small frames into recv-ring-sized chunks (the
        // chunk must land whole in one posted buffer); a frame that won't
        // ride in a chunk flushes what's pending — order is preserved —
        // and takes the ordinary eager/bulk path by itself.
        let cap = self.cfg.recv_buf_bytes;
        let threshold = self.crossover.threshold();
        let batch_start = Instant::now();
        let mut chunk: Vec<u8> = Vec::new();
        let mut in_chunk = 0usize;
        let mut merged = 0u64;
        for frame in &frames {
            let prefixed = wire::varint::vlong_size(frame.len() as i64) + frame.len();
            if frame.len() > threshold || prefixed > cap {
                self.flush_batch_chunk(&mut chunk, &mut in_chunk)?;
                self.send_msg(key, &mut |out| out.write_bytes(frame))?;
                continue;
            }
            if chunk.len() + prefixed > cap {
                self.flush_batch_chunk(&mut chunk, &mut in_chunk)?;
            }
            chunk.write_vlong(frame.len() as i64).expect("vec write");
            chunk.extend_from_slice(frame);
            in_chunk += 1;
            merged += 1;
        }
        self.flush_batch_chunk(&mut chunk, &mut in_chunk)?;
        if let Some(m) = &self.metrics {
            // Frames that rode a merged chunk bypass `send_msg` (and its
            // per-send accounting): give each its amortized share here,
            // so phase sample counts still equal frame counts. Oversized
            // frames recorded themselves above.
            if let Some(per_frame) = (batch_start.elapsed().as_nanos() as u64).checked_div(merged) {
                let entry = m.entry(key);
                for _ in 0..merged {
                    entry.record_phase(Phase::Serialize, 0);
                    entry.record_phase(Phase::Wire, per_frame);
                }
            }
        }
        Ok(())
    }

    fn recv_msg(&self, timeout: Duration) -> RpcResult<(Payload, RecvProfile)> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(RpcError::ConnectionClosed);
            }
            if let Some(frame) = self.stash.lock().pop_front() {
                let size = frame.len();
                return Ok((
                    Payload::Owned(frame),
                    RecvProfile {
                        alloc_ns: 0,
                        total_ns: 1,
                        size,
                    },
                ));
            }
            // Idle moments are when batched credits drain: if nothing else
            // is inbound, whatever we owe the peer goes back now.
            self.maybe_flush_credits();
            let now = Instant::now();
            if now >= deadline {
                return Err(RpcError::Timeout);
            }
            let completion = match self.qp.poll_recv(POLL_SLICE.min(deadline - now)) {
                Ok(c) => c,
                Err(VerbsError::Timeout) => continue,
                Err(e) => return Err(verbs_err(e)),
            };
            let total_start = Instant::now();
            match (completion.kind, completion.imm & 0xff) {
                (CompletionKind::Recv, IMM_SMALL) => {
                    let buf = self.take_posted(completion.wr_id)?;
                    // Replenish the ring; with a warm pool this is a
                    // freelist pop — the "allocation" cost RPCoIB removes.
                    let alloc_start = Instant::now();
                    self.post_one_recv();
                    let alloc_ns = alloc_start.elapsed().as_nanos() as u64;
                    let total_ns = total_start.elapsed().as_nanos() as u64 + 1;
                    return Ok((
                        Payload::Pooled {
                            buf,
                            len: completion.len,
                        },
                        RecvProfile {
                            alloc_ns,
                            total_ns,
                            size: completion.len,
                        },
                    ));
                }
                (CompletionKind::Recv, IMM_BATCH) => {
                    let buf = self.take_posted(completion.wr_id)?;
                    let alloc_start = Instant::now();
                    self.post_one_recv();
                    let alloc_ns = alloc_start.elapsed().as_nanos() as u64;
                    // Unpack on the receiving thread: copy the chunk out of
                    // registered memory once, split it, serve the first
                    // frame now and stash the rest for the next calls.
                    let mut bytes = vec![0u8; completion.len];
                    buf.mem().get(0, &mut bytes);
                    drop(buf);
                    let mut frames: Vec<Vec<u8>> = Vec::new();
                    let mut rest: &[u8] = &bytes;
                    while !rest.is_empty() {
                        use wire::DataInput;
                        let flen = rest
                            .read_vlong()
                            .ok()
                            .and_then(|l| usize::try_from(l).ok())
                            .filter(|&l| l <= rest.len())
                            .ok_or_else(|| {
                                RpcError::Protocol("malformed batch sub-frame length".into())
                            })?;
                        frames.push(rest[..flen].to_vec());
                        rest = &rest[flen..];
                    }
                    if frames.is_empty() {
                        return Err(RpcError::Protocol("empty batch completion".into()));
                    }
                    let first = frames.remove(0);
                    if !frames.is_empty() {
                        self.stash.lock().extend(frames);
                    }
                    let size = first.len();
                    let total_ns = total_start.elapsed().as_nanos() as u64 + 1;
                    return Ok((
                        Payload::Owned(first),
                        RecvProfile {
                            alloc_ns,
                            total_ns,
                            size,
                        },
                    ));
                }
                (CompletionKind::Recv, IMM_CREDIT) => {
                    // Flow-control credits: recycle the consumed recv
                    // buffer and wake senders blocked on the slot ring.
                    drop(self.take_posted(completion.wr_id)?);
                    self.post_one_recv();
                    let count = (completion.imm >> 8) as usize;
                    if count == 0 || count > self.peer_slots {
                        return Err(self.frame_corruption(format!(
                            "credit return of {count} slots (ring has {})",
                            self.peer_slots
                        )));
                    }
                    self.ring.release(count);
                    continue;
                }
                (CompletionKind::RecvRdmaWithImm, IMM_LARGE) => {
                    drop(self.take_posted(completion.wr_id)?);
                    self.post_one_recv();
                    let start = ((completion.imm >> 8) & 0xfff) as usize;
                    let consumed = ((completion.imm >> 20) & 0xfff) as usize;
                    let len = self.bulk_frame_len(start, consumed)?;
                    let base = start * self.my_slot_size + HEADER_BYTES;
                    // Drain the region into a pooled buffer so the slots
                    // can be credited back; the copy is charged to our
                    // ledger (the sender side was zero-copy, this is the
                    // one memcpy the design retains).
                    let alloc_start = Instant::now();
                    let mut buf = self.ctx.pool.acquire_size(len);
                    let alloc_ns = alloc_start.elapsed().as_nanos() as u64;
                    self.my_large
                        .with(|region| buf.mem_mut().put(0, &region[base..base + len]));
                    self.ctx
                        .device
                        .fabric()
                        .charge_host_ns(self.ctx.device.node(), hostcost::drain_ns(len));
                    *self.pending_credits.lock() += consumed;
                    self.maybe_flush_credits();
                    let total_ns = total_start.elapsed().as_nanos() as u64 + 1;
                    return Ok((
                        Payload::Pooled { buf, len },
                        RecvProfile {
                            alloc_ns,
                            total_ns,
                            size: len,
                        },
                    ));
                }
                (kind, imm) => {
                    return Err(
                        self.frame_corruption(format!("unexpected completion {kind:?} imm={imm}"))
                    );
                }
            }
        }
    }

    fn poll_ready(&self) -> bool {
        // Closed counts as ready (the next recv_msg surfaces
        // ConnectionClosed). A pending completion may be a credit rather
        // than a message — the shard's bounded recv_msg then consumes the
        // credit and times out, which is still progress.
        self.closed.load(Ordering::Acquire)
            || !self.stash.lock().is_empty()
            || self.qp.recv_pending()
    }

    fn set_ready_hook(&self, hook: std::sync::Arc<dyn Fn() + Send + Sync>) {
        *self.ready_hook.lock() = Some(hook.clone());
        self.qp.set_recv_interest(hook);
    }

    fn buffered_bytes(&self) -> usize {
        // Frames unpacked from a merged IMM_BATCH completion awaiting
        // recv_msg; completions still in the QP's inbox are NIC-side and
        // not yet host memory.
        self.stash.lock().iter().map(Vec::len).sum()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // Senders blocked on slot credits must observe the close.
        self.ring.close();
        // Local close is a readiness edge: `poll_ready` is now permanently
        // true, but no completion will arrive to announce it.
        let hook = self.ready_hook.lock().clone();
        if let Some(hook) = hook {
            hook();
        }
    }

    fn peer(&self) -> String {
        self.peer_desc.clone()
    }
}

impl std::fmt::Debug for RdmaConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdmaConn")
            .field("peer", &self.peer_desc)
            .field("peer_slots", &self.peer_slots)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{model, SimAddr, SimListener};
    use std::sync::Arc;
    use std::thread;
    use wire::DataInput;

    fn conn_pair(cfg: &RpcConfig) -> (Arc<RdmaConn>, Arc<RdmaConn>) {
        let fabric = Fabric::new(model::IB_QDR_VERBS);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let server_ctx = IbContext::new(&fabric, server, cfg).unwrap();
        let client_ctx = IbContext::new(&fabric, client, cfg).unwrap();
        let addr = SimAddr::new(server, 9000);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let f2 = fabric.clone();
        let cfg2 = cfg.clone();
        let h = thread::spawn(move || {
            let stream = SimStream::connect(&f2, client, addr).unwrap();
            RdmaConn::bootstrap(&stream, &client_ctx, &cfg2).unwrap()
        });
        let (srv_stream, _) = listener.accept().unwrap();
        let srv_conn = RdmaConn::bootstrap(&srv_stream, &server_ctx, cfg).unwrap();
        let cli_conn = h.join().unwrap();
        (Arc::new(cli_conn), Arc::new(srv_conn))
    }

    /// Keep a client's receive path moving so credits (and echoes) flow,
    /// as the engine's Connection thread does. Stops when the conn closes.
    fn progress_thread(conn: Arc<RdmaConn>) -> thread::JoinHandle<()> {
        thread::spawn(move || loop {
            match conn.recv_msg(Duration::from_millis(100)) {
                Err(RpcError::Timeout) => continue,
                _ => return,
            }
        })
    }

    #[test]
    fn small_message_roundtrip_zero_adjustments_after_warmup() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        for round in 0..3 {
            let profile = cli
                .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                    out.write_string("rpcoib")?;
                    out.write_bytes(&[9u8; 400])
                })
                .unwrap();
            if round > 0 {
                assert_eq!(profile.adjustments, 0, "history must predict after round 0");
            }
            let (payload, recv) = srv.recv_msg(Duration::from_secs(1)).unwrap();
            assert_eq!(recv.size, profile.size);
            let mut reader = payload.reader();
            assert_eq!(reader.read_string().unwrap(), "rpcoib");
        }
    }

    #[test]
    fn large_message_goes_through_rdma_write() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let p2 = payload.clone();
        let h = thread::spawn(move || {
            cli.send_msg(crate::intern::method_key("p", "big"), &mut |out| {
                out.write_bytes(&p2)
            })
            .unwrap()
        });
        let (got, _) = srv.recv_msg(Duration::from_secs(5)).unwrap();
        let profile = h.join().unwrap();
        assert!(profile.size > cfg.rdma_threshold);
        assert_eq!(got.len(), payload.len());
        let mut reader = got.reader();
        let mut out = vec![0u8; payload.len()];
        std::io::Read::read_exact(&mut reader, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn back_to_back_large_messages_respect_credits() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        // Credits come back through the client's receive path; in the real
        // engine the Connection thread polls it continuously — emulate it.
        let progress = progress_thread(Arc::clone(&cli));
        let srv2 = Arc::clone(&srv);
        let reader = thread::spawn(move || {
            let mut sizes = Vec::new();
            for _ in 0..4 {
                let (payload, _) = srv2.recv_msg(Duration::from_secs(10)).unwrap();
                let mut r = payload.reader();
                let body = r.read_len_bytes().unwrap();
                sizes.push(body.len());
                assert!(body.iter().enumerate().all(|(i, &b)| b == (i % 256) as u8));
            }
            sizes
        });
        for k in 1..=4usize {
            let body: Vec<u8> = (0..k * 50_000).map(|i| (i % 256) as u8).collect();
            cli.send_msg(crate::intern::method_key("p", "big"), &mut |out| {
                out.write_len_bytes(&body)
            })
            .unwrap();
        }
        let sizes = reader.join().unwrap();
        assert_eq!(sizes, vec![50_000, 100_000, 150_000, 200_000]);
        cli.close();
        progress.join().unwrap();
    }

    #[test]
    fn one_deep_ring_behaves_like_the_legacy_gate() {
        // `large_slots = 1` is the paper's configuration: exactly one
        // outstanding large frame, each blocked on the previous drain.
        let cfg = RpcConfig {
            large_slots: 1,
            ..RpcConfig::rpcoib()
        };
        let (cli, srv) = conn_pair(&cfg);
        let progress = progress_thread(Arc::clone(&cli));
        let srv2 = Arc::clone(&srv);
        let reader = thread::spawn(move || {
            for want in 1..=4usize {
                let (payload, _) = srv2.recv_msg(Duration::from_secs(10)).unwrap();
                let body = payload.reader().read_len_bytes().unwrap();
                assert_eq!(body.len(), want * 50_000);
            }
        });
        for k in 1..=4usize {
            let body = vec![3u8; k * 50_000];
            cli.send_msg(crate::intern::method_key("p", "big"), &mut |out| {
                out.write_len_bytes(&body)
            })
            .unwrap();
        }
        reader.join().unwrap();
        cli.close();
        progress.join().unwrap();
    }

    #[test]
    fn bidirectional_large_traffic_does_not_deadlock() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        let body: Vec<u8> = vec![7u8; 100_000];
        let b2 = body.clone();
        let cli2 = Arc::clone(&cli);
        let srv2 = Arc::clone(&srv);
        let t1 = thread::spawn(move || {
            for _ in 0..3 {
                cli2.send_msg(crate::intern::method_key("p", "up"), &mut |out| {
                    out.write_len_bytes(&b2)
                })
                .unwrap();
                let (payload, _) = cli2.recv_msg(Duration::from_secs(10)).unwrap();
                assert_eq!(payload.reader().read_len_bytes().unwrap().len(), 100_000);
            }
        });
        let b3 = body.clone();
        let t2 = thread::spawn(move || {
            for _ in 0..3 {
                let (payload, _) = srv2.recv_msg(Duration::from_secs(10)).unwrap();
                assert_eq!(payload.reader().read_len_bytes().unwrap().len(), 100_000);
                srv2.send_msg(crate::intern::method_key("p", "down"), &mut |out| {
                    out.write_len_bytes(&b3)
                })
                .unwrap();
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let cfg = RpcConfig {
            large_region_bytes: 128 * 1024,
            ..RpcConfig::rpcoib()
        };
        let (cli, _srv) = conn_pair(&cfg);
        let body = vec![0u8; 256 * 1024];
        let err = cli
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&body)
            })
            .unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
    }

    #[test]
    fn credit_starvation_is_a_retryable_transport_error() {
        // A peer that never drains: the sender must come back with
        // CreditStarved (retryable, non-invalidating) — not a wall-clock
        // Timeout, and never a deadlock.
        let cfg = RpcConfig {
            rdma_threshold: 2 * 1024,
            recv_buf_bytes: 4 * 1024,
            posted_recvs: 2,
            prefill_per_class: 1,
            large_region_bytes: 16 * 1024,
            large_slots: 4,
            call_timeout: Duration::from_millis(200),
            ..RpcConfig::rpcoib()
        };
        let (cli, _srv) = conn_pair(&cfg);
        let body = vec![1u8; 10_000]; // 3 of the 4 slots
        cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
            out.write_bytes(&body)
        })
        .unwrap();
        let err = cli
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&body)
            })
            .unwrap_err();
        assert_eq!(err, RpcError::CreditStarved);
        assert!(err.is_retryable());
        assert!(!err.invalidates_connection());
    }

    #[test]
    fn close_unblocks_a_credit_starved_sender() {
        let cfg = RpcConfig {
            rdma_threshold: 2 * 1024,
            recv_buf_bytes: 4 * 1024,
            posted_recvs: 2,
            prefill_per_class: 1,
            large_region_bytes: 16 * 1024,
            large_slots: 4,
            call_timeout: Duration::from_secs(30),
            ..RpcConfig::rpcoib()
        };
        let (cli, _srv) = conn_pair(&cfg);
        let body = vec![1u8; 10_000];
        cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
            out.write_bytes(&body)
        })
        .unwrap();
        let cli2 = Arc::clone(&cli);
        let blocked = thread::spawn(move || {
            cli2.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&[1u8; 10_000])
            })
        });
        thread::sleep(Duration::from_millis(50));
        cli.close();
        let err = blocked.join().unwrap().unwrap_err();
        assert_eq!(
            err,
            RpcError::ConnectionClosed,
            "close must beat the 30s budget"
        );
    }

    #[test]
    fn malformed_hellos_are_rejected_cleanly() {
        fn bootstrap_against(hello: Vec<u8>) -> RpcError {
            let cfg = RpcConfig::rpcoib();
            let fabric = Fabric::new(model::IB_QDR_VERBS);
            let server = fabric.add_node();
            let client = fabric.add_node();
            let ctx = IbContext::new(&fabric, server, &cfg).unwrap();
            let addr = SimAddr::new(server, 9100);
            let listener = SimListener::bind(&fabric, addr).unwrap();
            let f2 = fabric.clone();
            let h = thread::spawn(move || {
                let stream = SimStream::connect(&f2, client, addr).unwrap();
                (&stream).write_all(&hello).unwrap();
                // Drain the server's (valid) hello so its write can't jam.
                let mut theirs = [0u8; HELLO_BYTES];
                let _ = stream.read_exact_at(&mut theirs);
            });
            let (srv_stream, _) = listener.accept().unwrap();
            let err = RdmaConn::bootstrap(&srv_stream, &ctx, &cfg).unwrap_err();
            h.join().unwrap();
            err
        }

        fn hello_with(region: u64, slots: u32) -> Vec<u8> {
            let mut h = vec![0u8; HELLO_BYTES];
            h[0..4].copy_from_slice(&HELLO_MAGIC.to_be_bytes());
            h[4] = HELLO_VERSION;
            h[32..40].copy_from_slice(&region.to_be_bytes());
            h[40..44].copy_from_slice(&slots.to_be_bytes());
            h
        }

        // Garbage magic — the pre-hello panic class this replaces.
        let err = bootstrap_against(vec![0xEEu8; HELLO_BYTES]);
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
        // Zero-size region.
        let err = bootstrap_against(hello_with(0, 4));
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
        // Region smaller than the threshold: an unusable large path.
        let err = bootstrap_against(hello_with(1024, 1));
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
        // Absurd region size.
        let err = bootstrap_against(hello_with(u64::MAX, 4));
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
        // Zero slots.
        let err = bootstrap_against(hello_with(4 << 20, 0));
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
        // Region not divisible into slots.
        let err = bootstrap_against(hello_with(4 << 20, 3));
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
    }

    #[test]
    fn unknown_wr_id_completion_tears_down_gracefully() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        // Corrupt the server's accounting: the next completion will name a
        // work-request id the posted-map no longer knows.
        srv.posted.lock().clear();
        cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
            out.write_bytes(&[1u8; 64])
        })
        .unwrap();
        let err = srv.recv_msg(Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
        // Torn down, not panicked — and permanently closed.
        assert_eq!(
            srv.recv_msg(Duration::from_millis(10)).unwrap_err(),
            RpcError::ConnectionClosed
        );
    }

    #[test]
    fn adaptive_crossover_learns_that_small_frames_prefer_eager() {
        // On the modeled ledger the bulk path pays a flat surcharge over
        // eager (the length-header write in the doorbell chain), so for
        // small frames — where that surcharge clears the retune margin —
        // bulk is the wrong route. Start from a deliberately-low static
        // threshold that sends 5 kB frames down the bulk path; probe
        // traffic must teach the controller to raise the threshold past
        // them. (At mid sizes the surcharge is *inside* the margin, and
        // staying put is the correct, churn-free behaviour — that case
        // is `static_crossover_never_moves`' territory.)
        let cfg = RpcConfig {
            adaptive_rdma_threshold: true,
            rdma_threshold: 2048,
            ..RpcConfig::rpcoib()
        };
        let (cli, srv) = conn_pair(&cfg);
        let progress = progress_thread(Arc::clone(&cli));
        let srv2 = Arc::clone(&srv);
        let drain = thread::spawn(move || {
            let mut got = 0usize;
            while got < 128 {
                match srv2.recv_msg(Duration::from_secs(5)) {
                    Ok(_) => got += 1,
                    Err(e) => panic!("server drain failed after {got}: {e}"),
                }
            }
        });
        assert_eq!(cli.crossover_threshold(), cfg.rdma_threshold);
        for _ in 0..128 {
            cli.send_msg(crate::intern::method_key("p", "small"), &mut |out| {
                out.write_bytes(&[5u8; 5_000])
            })
            .unwrap();
        }
        drain.join().unwrap();
        assert!(
            cli.crossover_threshold() > 5_000,
            "threshold stuck at {} after 128 small bulk sends",
            cli.crossover_threshold()
        );
        cli.close();
        progress.join().unwrap();
    }

    #[test]
    fn static_crossover_never_moves() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        for _ in 0..40 {
            cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&[5u8; 8_000])
            })
            .unwrap();
            let _ = srv.recv_msg(Duration::from_secs(1)).unwrap();
        }
        assert_eq!(cli.crossover_threshold(), cfg.rdma_threshold);
    }

    #[test]
    fn recv_timeout_when_idle() {
        let cfg = RpcConfig::rpcoib();
        let (_cli, srv) = conn_pair(&cfg);
        assert_eq!(
            srv.recv_msg(Duration::from_millis(30)).unwrap_err(),
            RpcError::Timeout
        );
    }

    #[test]
    fn ib_context_requires_rdma_fabric() {
        let fabric = Fabric::new(model::IPOIB_QDR);
        let node = fabric.add_node();
        let err = IbContext::new(&fabric, node, &RpcConfig::rpcoib()).unwrap_err();
        assert!(matches!(err, RpcError::Config(_)));
    }

    #[test]
    fn batched_frames_roundtrip_in_order() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 50 + i as usize]).collect();
        cli.send_frames(crate::intern::method_key("p", "m"), frames.clone())
            .unwrap();
        for want in &frames {
            assert!(srv.poll_ready() || want == &frames[0]);
            let (payload, _) = srv.recv_msg(Duration::from_secs(1)).unwrap();
            assert_eq!(payload.len(), want.len());
            let mut got = vec![0u8; want.len()];
            std::io::Read::read_exact(&mut payload.reader(), &mut got).unwrap();
            assert_eq!(&got, want);
        }
        assert!(!srv.poll_ready(), "stash fully drained");
    }

    #[test]
    fn batch_mixed_with_large_frame_keeps_order() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        let frames = vec![
            vec![1u8; 64],
            vec![2u8; 100_000], // over rdma_threshold: goes out alone
            vec![3u8; 64],
        ];
        cli.send_frames(crate::intern::method_key("p", "m"), frames.clone())
            .unwrap();
        for want in &frames {
            let (payload, _) = srv.recv_msg(Duration::from_secs(5)).unwrap();
            assert_eq!(payload.len(), want.len());
            let mut got = vec![0u8; want.len()];
            std::io::Read::read_exact(&mut payload.reader(), &mut got).unwrap();
            assert_eq!(&got, want, "ordering drifted around the large frame");
        }
    }

    #[test]
    fn batching_disabled_falls_back_to_per_frame_sends() {
        let cfg = RpcConfig {
            wire_batch: false,
            ..RpcConfig::rpcoib()
        };
        let (cli, srv) = conn_pair(&cfg);
        let frames: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 32]).collect();
        cli.send_frames(crate::intern::method_key("p", "m"), frames.clone())
            .unwrap();
        for want in &frames {
            let (payload, _) = srv.recv_msg(Duration::from_secs(1)).unwrap();
            let mut got = vec![0u8; want.len()];
            std::io::Read::read_exact(&mut payload.reader(), &mut got).unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn pool_is_prefilled_and_reused() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        // Warm the path.
        for _ in 0..10 {
            cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&[1u8; 200])
            })
            .unwrap();
            let _ = srv.recv_msg(Duration::from_secs(1)).unwrap();
        }
        let (_hits, misses, _ret, _over) = cli.ctx.pool.native().stats().snapshot();
        // After warmup the send path should not allocate fresh regions for
        // every call (some misses during warmup are expected).
        let (hits2, _m2, _r2, _o2) = cli.ctx.pool.native().stats().snapshot();
        assert!(hits2 > 0, "pool must be serving from freelists");
        assert!(misses < 50, "unbounded registration leak");
    }

    #[test]
    fn steady_state_bulk_sends_touch_no_new_registrations() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        let progress = progress_thread(Arc::clone(&cli));
        let body = vec![9u8; 200_000];
        let roundtrip = |n: usize| {
            for _ in 0..n {
                cli.send_msg(crate::intern::method_key("p", "bulk"), &mut |out| {
                    out.write_bytes(&body)
                })
                .unwrap();
                let _ = srv.recv_msg(Duration::from_secs(5)).unwrap();
            }
        };
        roundtrip(3); // warm: segment + drain classes populate
        let fabric = cli.ctx.device.fabric();
        let (_, _, _, regs_before) = fabric.stats().snapshot();
        let (_, misses_before, _, over_before) = cli.ctx.pool_stats();
        let (_, srv_misses_before, _, srv_over_before) = srv.ctx.pool_stats();
        roundtrip(10);
        let (_, _, _, regs_after) = fabric.stats().snapshot();
        let (_, misses_after, _, over_after) = cli.ctx.pool_stats();
        let (_, srv_misses_after, _, srv_over_after) = srv.ctx.pool_stats();
        assert_eq!(
            regs_after - regs_before,
            0,
            "steady-state bulk sends must re-use cached registrations"
        );
        assert_eq!(misses_after - misses_before, 0, "sender pool misses");
        assert_eq!(over_after - over_before, 0, "sender oversize allocations");
        assert_eq!(
            srv_misses_after - srv_misses_before,
            0,
            "receiver pool misses"
        );
        assert_eq!(
            srv_over_after - srv_over_before,
            0,
            "receiver oversize allocations"
        );
        cli.close();
        progress.join().unwrap();
    }
}
