//! The RPCoIB transport: native verbs, JVM-bypass buffers, send/recv for
//! small messages and one-sided RDMA writes for large ones.
//!
//! Connection establishment follows Section III-D: the client connects to
//! the server's ordinary socket address and the two sides exchange
//! end-point information (queue-pair endpoint, large-region rkey and size)
//! over that stream; all subsequent communication is native IB.
//!
//! Message paths:
//!
//! * **small** (≤ `rdma_threshold`): serialized directly into a pooled
//!   registered buffer and `post_send`-ed from it; the receiver has a ring
//!   of pre-posted pooled buffers, and deserialization reads straight out
//!   of the one the message landed in. Zero copies beyond the (simulated)
//!   DMA itself.
//! * **large**: RDMA-written into the peer's pre-registered large region,
//!   announced with an immediate. A one-deep credit protocol prevents the
//!   writer from overwriting the region before the receiver has drained
//!   it; the receiver copies the frame out into a pooled buffer and
//!   returns the credit immediately.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bufpool::{NativePool, PoolMem, PooledBuf, RdmaMemFactory, ShadowPool, SizeClasses};
use parking_lot::{Condvar, Mutex};
use simnet::{
    CompletionKind, Fabric, MemoryRegion, NodeId, QpEndpoint, QueuePair, RdmaDevice, RemoteKey,
    SimStream, VerbsError,
};
use wire::DataOutput;

use crate::config::RpcConfig;
use crate::error::{RpcError, RpcResult};
use crate::frame::Payload;
use crate::intern::MethodKey;
use crate::metrics::{MetricsRegistry, Phase, PoolCounters};
use crate::stream::RdmaOutputStream;
use crate::transport::{Conn, RecvProfile, SendProfile};

/// Immediate tag: payload is a complete frame in the posted recv buffer.
const IMM_SMALL: u32 = 1;
/// Immediate tag: a frame was RDMA-written into the receiver's large region.
const IMM_LARGE: u32 = 2;
/// Immediate tag: the receiver drained its large region (flow control).
const IMM_CREDIT: u32 = 3;
/// Immediate tag: the posted recv buffer holds several small frames
/// back-to-back, each as `[vlong len][frame]` — the responder's batched
/// sweep merged into one send (RDMAbox-style io-merging).
const IMM_BATCH: u32 = 4;

/// How finely blocked polls slice their waits to notice closure.
const POLL_SLICE: Duration = Duration::from_millis(50);

fn verbs_err(e: VerbsError) -> RpcError {
    match e {
        VerbsError::PeerDown => RpcError::ConnectionClosed,
        other => RpcError::Verbs(other),
    }
}

/// Per-endpoint verbs state: the opened device and the two-level buffer
/// pool (pre-registered at startup). Shared by every connection of one
/// client or server.
#[derive(Clone)]
pub struct IbContext {
    device: RdmaDevice,
    pool: ShadowPool<MemoryRegion>,
}

impl std::fmt::Debug for IbContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IbContext")
            .field("node", &self.device.node())
            .finish()
    }
}

impl IbContext {
    /// Open the HCA on `node` and build the pre-registered pool.
    pub fn new(fabric: &Fabric, node: NodeId, cfg: &RpcConfig) -> RpcResult<IbContext> {
        let device = RdmaDevice::open(fabric, node).map_err(|_| {
            RpcError::Config(format!(
                "RPCoIB requires an RDMA-capable fabric model, got '{}'",
                fabric.model().name
            ))
        })?;
        let factory = RdmaMemFactory::new(device.clone());
        let ladder = SizeClasses::up_to(cfg.large_region_bytes);
        let pool = ShadowPool::new(
            NativePool::new(ladder, move |len| factory.allocate(len)),
            cfg.use_size_history,
        );
        // Pre-register the small classes (the ones per-call traffic uses);
        // jumbo classes are registered lazily on first use.
        for idx in 0..ladder.count {
            if ladder.capacity(idx) <= cfg.recv_buf_bytes {
                pool.native().prefill_class(idx, cfg.prefill_per_class);
            }
        }
        // The receive-ring class gets a full ring plus slack up front, so
        // connection bring-up and the first calls never register inline —
        // "pre-allocated and pre-registered when the RPCoIB library
        // loads" (Section III-B).
        if let Some(ring_class) = ladder.class_of(cfg.recv_buf_bytes) {
            pool.native()
                .prefill_class(ring_class, cfg.posted_recvs + 8);
        }
        Ok(IbContext { device, pool })
    }

    /// The shared two-level pool.
    pub fn pool(&self) -> &ShadowPool<MemoryRegion> {
        &self.pool
    }

    /// Pre-register `per_class` extra buffers in every class up to
    /// `max_bytes`, jumbo classes included. `IbContext::new` prefills the
    /// small per-call classes; a workload that knows it will move large
    /// frames can call this to take the one-time registration cost at
    /// load time instead of on the first large call — Section III-B's
    /// "pre-allocated and pre-registered when the RPCoIB library loads",
    /// extended to the large ladder.
    pub fn prewarm(&self, max_bytes: usize, per_class: usize) {
        let ladder = self.pool.native().classes();
        for idx in 0..ladder.count {
            if ladder.capacity(idx) <= max_bytes {
                self.pool.native().prefill_class(idx, per_class);
            }
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &RdmaDevice {
        &self.device
    }

    /// (hits, misses, returns, oversize) of the native pool.
    pub fn pool_stats(&self) -> (u64, u64, u64, u64) {
        self.pool.native().stats().snapshot()
    }

    /// Both pool levels' counters in the shape the unified metrics
    /// snapshot carries: the shadow pool's size-history behaviour plus the
    /// native registered-buffer pool underneath.
    pub fn pool_counters(&self) -> PoolCounters {
        let (history_hits, grows, shrinks, cold) = self.pool.stats().snapshot();
        let (native_hits, native_misses, native_returns, oversize) =
            self.pool.native().stats().snapshot();
        PoolCounters {
            history_hits,
            grows,
            shrinks,
            cold,
            native_hits,
            native_misses,
            native_returns,
            oversize,
        }
    }
}

/// One-deep credit gate for the large-frame region.
struct CreditGate {
    credits: Mutex<usize>,
    cv: Condvar,
}

impl CreditGate {
    fn new(n: usize) -> CreditGate {
        CreditGate {
            credits: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn take(&self, timeout: Duration) -> bool {
        let mut credits = self.credits.lock();
        let deadline = Instant::now() + timeout;
        while *credits == 0 {
            if self.cv.wait_until(&mut credits, deadline).timed_out() {
                return false;
            }
        }
        *credits -= 1;
        true
    }

    fn put(&self) {
        *self.credits.lock() += 1;
        self.cv.notify_one();
    }
}

struct SendState {
    /// Tiny dedicated region for credit messages.
    credit_mr: MemoryRegion,
}

/// An established RPCoIB connection.
pub struct RdmaConn {
    ctx: IbContext,
    cfg: RpcConfig,
    qp: QueuePair,
    /// Region the *peer* RDMA-writes large frames into.
    my_large: MemoryRegion,
    peer_rkey: RemoteKey,
    peer_large_size: usize,
    /// Receive buffers currently posted, by work-request id.
    posted: Mutex<HashMap<u64, PooledBuf<MemoryRegion>>>,
    /// Frames unpacked from an [`IMM_BATCH`] completion beyond the first,
    /// served by subsequent `recv_msg` calls before the wire is polled.
    stash: Mutex<std::collections::VecDeque<Vec<u8>>>,
    next_wr: AtomicU64,
    send: Mutex<SendState>,
    large_credits: CreditGate,
    closed: AtomicBool,
    peer_desc: String,
    /// When attached, every send feeds the per-`<protocol, method>`
    /// serialize/wire phase histograms.
    metrics: Option<MetricsRegistry>,
    /// Copy of the armed readiness hook, so a local `close()` can deliver
    /// its own wake (the QP only fires for peer-side completions).
    ready_hook: Mutex<Option<std::sync::Arc<dyn Fn() + Send + Sync>>>,
}

impl RdmaConn {
    /// Run the end-point exchange over an established bootstrap stream and
    /// bring up the verbs connection. Symmetric: both the client and the
    /// server side call this on their end of the stream.
    pub fn bootstrap(stream: &SimStream, ctx: &IbContext, cfg: &RpcConfig) -> RpcResult<RdmaConn> {
        let qp = ctx.device.create_qp();
        let my_large = ctx.device.register(cfg.large_region_bytes);

        // Send our endpoint info: QP endpoint + large-region rkey + size.
        let mut hello = Vec::with_capacity(32);
        hello.extend_from_slice(&qp.endpoint().to_bytes());
        hello.extend_from_slice(&my_large.remote_key().to_bytes());
        hello.extend_from_slice(&(cfg.large_region_bytes as u64).to_be_bytes());
        (&*stream)
            .write_all(&hello)
            .map_err(|e| RpcError::Io(e.to_string()))?;

        // Receive theirs.
        let mut peer = [0u8; 32];
        stream
            .read_exact_at(&mut peer)
            .map_err(|e| RpcError::Io(e.to_string()))?;
        let peer_ep = QpEndpoint::from_bytes(peer[0..12].try_into().unwrap());
        let peer_rkey = RemoteKey::from_bytes(peer[12..24].try_into().unwrap());
        let peer_large_size = u64::from_be_bytes(peer[24..32].try_into().unwrap()) as usize;

        qp.connect(peer_ep);

        let conn = RdmaConn {
            ctx: ctx.clone(),
            cfg: cfg.clone(),
            qp,
            my_large,
            peer_rkey,
            peer_large_size,
            posted: Mutex::new(HashMap::new()),
            stash: Mutex::new(std::collections::VecDeque::new()),
            next_wr: AtomicU64::new(1),
            send: Mutex::new(SendState {
                credit_mr: ctx.device.register(128),
            }),
            large_credits: CreditGate::new(1),
            closed: AtomicBool::new(false),
            peer_desc: format!("rdma:{}", peer_ep.node),
            metrics: None,
            ready_hook: Mutex::new(None),
        };
        // Pre-post the receive ring before the peer can possibly send.
        for _ in 0..cfg.posted_recvs {
            conn.post_one_recv();
        }
        Ok(conn)
    }

    /// Attach a metrics registry; subsequent sends record their serialize
    /// and wire times into its phase histograms.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    fn post_one_recv(&self) {
        let wr = self.next_wr.fetch_add(1, Ordering::Relaxed);
        let buf = self.ctx.pool.acquire_size(self.cfg.recv_buf_bytes);
        self.qp.post_recv(wr, buf.mem().clone());
        self.posted.lock().insert(wr, buf);
    }

    fn take_posted(&self, wr_id: u64) -> PooledBuf<MemoryRegion> {
        self.posted
            .lock()
            .remove(&wr_id)
            .expect("completion for a receive buffer we never posted")
    }

    fn send_credit(&self) -> RpcResult<()> {
        let state = self.send.lock();
        state.credit_mr.write_at(0, &[0]).map_err(verbs_err)?;
        self.qp
            .post_send(&state.credit_mr, 0, 1, IMM_CREDIT)
            .map_err(verbs_err)
    }

    /// Post the accumulated `[vlong len][frame]…` chunk as one
    /// [`IMM_BATCH`] send from a pooled registered buffer.
    fn flush_batch_chunk(&self, chunk: &mut Vec<u8>, frames_in_chunk: &mut usize) -> RpcResult<()> {
        if *frames_in_chunk == 0 {
            return Ok(());
        }
        let mut buf = self.ctx.pool.acquire_size(chunk.len());
        buf.mem_mut().put(0, chunk);
        let state = self.send.lock();
        self.qp
            .post_send(buf.mem(), 0, chunk.len(), IMM_BATCH)
            .map_err(verbs_err)?;
        drop(state);
        chunk.clear();
        *frames_in_chunk = 0;
        Ok(())
    }
}

impl Conn for RdmaConn {
    fn send_msg(
        &self,
        key: MethodKey,
        write: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile> {
        if self.closed.load(Ordering::Acquire) {
            return Err(RpcError::ConnectionClosed);
        }

        // --- Serialization: straight into pooled registered memory. ---
        let ser_start = Instant::now();
        let mut out = RdmaOutputStream::new(&self.ctx.pool, key);
        write(&mut out)?;
        let (buf, len, grows) = out.finish();
        let serialize_ns = ser_start.elapsed().as_nanos() as u64;

        // --- Transmission. ---
        let send_start = Instant::now();
        if len <= self.cfg.rdma_threshold {
            let state = self.send.lock();
            self.qp
                .post_send(buf.mem(), 0, len, IMM_SMALL)
                .map_err(verbs_err)?;
            drop(state);
        } else {
            if len > self.peer_large_size {
                return Err(RpcError::Protocol(format!(
                    "frame of {len} bytes exceeds the peer's {}-byte large region",
                    self.peer_large_size
                )));
            }
            if !self.large_credits.take(self.cfg.call_timeout) {
                return Err(RpcError::Timeout);
            }
            let state = self.send.lock();
            let result = self
                .qp
                .rdma_write(buf.mem(), 0, len, self.peer_rkey, 0, Some(IMM_LARGE));
            drop(state);
            if let Err(e) = result {
                // The write never happened; the region is still ours.
                self.large_credits.put();
                return Err(verbs_err(e));
            }
        }
        let send_ns = send_start.elapsed().as_nanos() as u64;

        if let Some(m) = &self.metrics {
            let entry = m.entry(key);
            entry.record_phase(Phase::Serialize, serialize_ns);
            entry.record_phase(Phase::Wire, send_ns);
        }

        Ok(SendProfile {
            serialize_ns,
            send_ns,
            adjustments: grows,
            size: len,
        })
    }

    fn send_frames(&self, key: MethodKey, frames: Vec<Vec<u8>>) -> RpcResult<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(RpcError::ConnectionClosed);
        }
        if !self.cfg.wire_batch || frames.len() == 1 {
            for frame in frames {
                self.send_msg(key, &mut |out| out.write_bytes(&frame))?;
            }
            return Ok(());
        }
        // Merge consecutive small frames into recv-ring-sized chunks (the
        // chunk must land whole in one posted buffer); a frame that won't
        // ride in a chunk flushes what's pending — order is preserved —
        // and takes the ordinary small/large path by itself.
        let cap = self.cfg.recv_buf_bytes;
        let batch_start = Instant::now();
        let mut chunk: Vec<u8> = Vec::new();
        let mut in_chunk = 0usize;
        let mut merged = 0u64;
        for frame in &frames {
            let prefixed = wire::varint::vlong_size(frame.len() as i64) + frame.len();
            if frame.len() > self.cfg.rdma_threshold || prefixed > cap {
                self.flush_batch_chunk(&mut chunk, &mut in_chunk)?;
                self.send_msg(key, &mut |out| out.write_bytes(frame))?;
                continue;
            }
            if chunk.len() + prefixed > cap {
                self.flush_batch_chunk(&mut chunk, &mut in_chunk)?;
            }
            chunk.write_vlong(frame.len() as i64).expect("vec write");
            chunk.extend_from_slice(frame);
            in_chunk += 1;
            merged += 1;
        }
        self.flush_batch_chunk(&mut chunk, &mut in_chunk)?;
        if let Some(m) = &self.metrics {
            // Frames that rode a merged chunk bypass `send_msg` (and its
            // per-send accounting): give each its amortized share here,
            // so phase sample counts still equal frame counts. Oversized
            // frames recorded themselves above.
            if let Some(per_frame) = (batch_start.elapsed().as_nanos() as u64).checked_div(merged) {
                let entry = m.entry(key);
                for _ in 0..merged {
                    entry.record_phase(Phase::Serialize, 0);
                    entry.record_phase(Phase::Wire, per_frame);
                }
            }
        }
        Ok(())
    }

    fn recv_msg(&self, timeout: Duration) -> RpcResult<(Payload, RecvProfile)> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(RpcError::ConnectionClosed);
            }
            if let Some(frame) = self.stash.lock().pop_front() {
                let size = frame.len();
                return Ok((
                    Payload::Owned(frame),
                    RecvProfile {
                        alloc_ns: 0,
                        total_ns: 1,
                        size,
                    },
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RpcError::Timeout);
            }
            let completion = match self.qp.poll_recv(POLL_SLICE.min(deadline - now)) {
                Ok(c) => c,
                Err(VerbsError::Timeout) => continue,
                Err(e) => return Err(verbs_err(e)),
            };
            let total_start = Instant::now();
            match (completion.kind, completion.imm) {
                (CompletionKind::Recv, IMM_SMALL) => {
                    let buf = self.take_posted(completion.wr_id);
                    // Replenish the ring; with a warm pool this is a
                    // freelist pop — the "allocation" cost RPCoIB removes.
                    let alloc_start = Instant::now();
                    self.post_one_recv();
                    let alloc_ns = alloc_start.elapsed().as_nanos() as u64;
                    let total_ns = total_start.elapsed().as_nanos() as u64 + 1;
                    return Ok((
                        Payload::Pooled {
                            buf,
                            len: completion.len,
                        },
                        RecvProfile {
                            alloc_ns,
                            total_ns,
                            size: completion.len,
                        },
                    ));
                }
                (CompletionKind::Recv, IMM_BATCH) => {
                    let buf = self.take_posted(completion.wr_id);
                    let alloc_start = Instant::now();
                    self.post_one_recv();
                    let alloc_ns = alloc_start.elapsed().as_nanos() as u64;
                    // Unpack on the receiving thread: copy the chunk out of
                    // registered memory once, split it, serve the first
                    // frame now and stash the rest for the next calls.
                    let mut bytes = vec![0u8; completion.len];
                    buf.mem().get(0, &mut bytes);
                    drop(buf);
                    let mut frames: Vec<Vec<u8>> = Vec::new();
                    let mut rest: &[u8] = &bytes;
                    while !rest.is_empty() {
                        use wire::DataInput;
                        let flen = rest
                            .read_vlong()
                            .ok()
                            .and_then(|l| usize::try_from(l).ok())
                            .filter(|&l| l <= rest.len())
                            .ok_or_else(|| {
                                RpcError::Protocol("malformed batch sub-frame length".into())
                            })?;
                        frames.push(rest[..flen].to_vec());
                        rest = &rest[flen..];
                    }
                    if frames.is_empty() {
                        return Err(RpcError::Protocol("empty batch completion".into()));
                    }
                    let first = frames.remove(0);
                    if !frames.is_empty() {
                        self.stash.lock().extend(frames);
                    }
                    let size = first.len();
                    let total_ns = total_start.elapsed().as_nanos() as u64 + 1;
                    return Ok((
                        Payload::Owned(first),
                        RecvProfile {
                            alloc_ns,
                            total_ns,
                            size,
                        },
                    ));
                }
                (CompletionKind::Recv, IMM_CREDIT) => {
                    // Flow-control credit: recycle the consumed recv buffer
                    // and wake a sender blocked on the large region.
                    drop(self.take_posted(completion.wr_id));
                    self.post_one_recv();
                    self.large_credits.put();
                    continue;
                }
                (CompletionKind::RecvRdmaWithImm, IMM_LARGE) => {
                    drop(self.take_posted(completion.wr_id));
                    self.post_one_recv();
                    let len = completion.len;
                    // Drain the region into a pooled buffer so the credit
                    // can be returned immediately.
                    let alloc_start = Instant::now();
                    let mut buf = self.ctx.pool.acquire_size(len);
                    let alloc_ns = alloc_start.elapsed().as_nanos() as u64;
                    self.my_large
                        .with(|region| buf.mem_mut().put(0, &region[..len]));
                    // Best-effort: if the peer has already gone away the
                    // credit is moot, but the payload in hand is still good.
                    let _ = self.send_credit();
                    let total_ns = total_start.elapsed().as_nanos() as u64 + 1;
                    return Ok((
                        Payload::Pooled { buf, len },
                        RecvProfile {
                            alloc_ns,
                            total_ns,
                            size: len,
                        },
                    ));
                }
                (kind, imm) => {
                    return Err(RpcError::Protocol(format!(
                        "unexpected completion {kind:?} imm={imm}"
                    )));
                }
            }
        }
    }

    fn poll_ready(&self) -> bool {
        // Closed counts as ready (the next recv_msg surfaces
        // ConnectionClosed). A pending completion may be a credit rather
        // than a message — the shard's bounded recv_msg then consumes the
        // credit and times out, which is still progress.
        self.closed.load(Ordering::Acquire)
            || !self.stash.lock().is_empty()
            || self.qp.recv_pending()
    }

    fn set_ready_hook(&self, hook: std::sync::Arc<dyn Fn() + Send + Sync>) {
        *self.ready_hook.lock() = Some(hook.clone());
        self.qp.set_recv_interest(hook);
    }

    fn buffered_bytes(&self) -> usize {
        // Frames unpacked from a merged IMM_BATCH completion awaiting
        // recv_msg; completions still in the QP's inbox are NIC-side and
        // not yet host memory.
        self.stash.lock().iter().map(Vec::len).sum()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // Local close is a readiness edge: `poll_ready` is now permanently
        // true, but no completion will arrive to announce it.
        let hook = self.ready_hook.lock().clone();
        if let Some(hook) = hook {
            hook();
        }
    }

    fn peer(&self) -> String {
        self.peer_desc.clone()
    }
}

impl std::fmt::Debug for RdmaConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdmaConn")
            .field("peer", &self.peer_desc)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{model, SimAddr, SimListener};
    use std::sync::Arc;
    use std::thread;
    use wire::DataInput;

    fn conn_pair(cfg: &RpcConfig) -> (Arc<RdmaConn>, Arc<RdmaConn>) {
        let fabric = Fabric::new(model::IB_QDR_VERBS);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let server_ctx = IbContext::new(&fabric, server, cfg).unwrap();
        let client_ctx = IbContext::new(&fabric, client, cfg).unwrap();
        let addr = SimAddr::new(server, 9000);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let f2 = fabric.clone();
        let cfg2 = cfg.clone();
        let h = thread::spawn(move || {
            let stream = SimStream::connect(&f2, client, addr).unwrap();
            RdmaConn::bootstrap(&stream, &client_ctx, &cfg2).unwrap()
        });
        let (srv_stream, _) = listener.accept().unwrap();
        let srv_conn = RdmaConn::bootstrap(&srv_stream, &server_ctx, cfg).unwrap();
        let cli_conn = h.join().unwrap();
        (Arc::new(cli_conn), Arc::new(srv_conn))
    }

    #[test]
    fn small_message_roundtrip_zero_adjustments_after_warmup() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        for round in 0..3 {
            let profile = cli
                .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                    out.write_string("rpcoib")?;
                    out.write_bytes(&[9u8; 400])
                })
                .unwrap();
            if round > 0 {
                assert_eq!(profile.adjustments, 0, "history must predict after round 0");
            }
            let (payload, recv) = srv.recv_msg(Duration::from_secs(1)).unwrap();
            assert_eq!(recv.size, profile.size);
            let mut reader = payload.reader();
            assert_eq!(reader.read_string().unwrap(), "rpcoib");
        }
    }

    #[test]
    fn large_message_goes_through_rdma_write() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let p2 = payload.clone();
        let h = thread::spawn(move || {
            cli.send_msg(crate::intern::method_key("p", "big"), &mut |out| {
                out.write_bytes(&p2)
            })
            .unwrap()
        });
        let (got, _) = srv.recv_msg(Duration::from_secs(5)).unwrap();
        let profile = h.join().unwrap();
        assert!(profile.size > cfg.rdma_threshold);
        assert_eq!(got.len(), payload.len());
        let mut reader = got.reader();
        let mut out = vec![0u8; payload.len()];
        std::io::Read::read_exact(&mut reader, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn back_to_back_large_messages_respect_credits() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        // Credits come back through the client's receive path; in the real
        // engine the Connection thread polls it continuously — emulate it.
        let cli_progress = Arc::clone(&cli);
        let progress = thread::spawn(move || loop {
            match cli_progress.recv_msg(Duration::from_millis(100)) {
                Err(RpcError::Timeout) => continue,
                _ => return,
            }
        });
        let srv2 = Arc::clone(&srv);
        let reader = thread::spawn(move || {
            let mut sizes = Vec::new();
            for _ in 0..4 {
                let (payload, _) = srv2.recv_msg(Duration::from_secs(10)).unwrap();
                let mut r = payload.reader();
                let body = r.read_len_bytes().unwrap();
                sizes.push(body.len());
                assert!(body.iter().enumerate().all(|(i, &b)| b == (i % 256) as u8));
            }
            sizes
        });
        for k in 1..=4usize {
            let body: Vec<u8> = (0..k * 50_000).map(|i| (i % 256) as u8).collect();
            cli.send_msg(crate::intern::method_key("p", "big"), &mut |out| {
                out.write_len_bytes(&body)
            })
            .unwrap();
        }
        let sizes = reader.join().unwrap();
        assert_eq!(sizes, vec![50_000, 100_000, 150_000, 200_000]);
        cli.close();
        progress.join().unwrap();
    }

    #[test]
    fn bidirectional_large_traffic_does_not_deadlock() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        let body: Vec<u8> = vec![7u8; 100_000];
        let b2 = body.clone();
        let cli2 = Arc::clone(&cli);
        let srv2 = Arc::clone(&srv);
        let t1 = thread::spawn(move || {
            for _ in 0..3 {
                cli2.send_msg(crate::intern::method_key("p", "up"), &mut |out| {
                    out.write_len_bytes(&b2)
                })
                .unwrap();
                let (payload, _) = cli2.recv_msg(Duration::from_secs(10)).unwrap();
                assert_eq!(payload.reader().read_len_bytes().unwrap().len(), 100_000);
            }
        });
        let b3 = body.clone();
        let t2 = thread::spawn(move || {
            for _ in 0..3 {
                let (payload, _) = srv2.recv_msg(Duration::from_secs(10)).unwrap();
                assert_eq!(payload.reader().read_len_bytes().unwrap().len(), 100_000);
                srv2.send_msg(crate::intern::method_key("p", "down"), &mut |out| {
                    out.write_len_bytes(&b3)
                })
                .unwrap();
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let cfg = RpcConfig {
            large_region_bytes: 128 * 1024,
            ..RpcConfig::rpcoib()
        };
        let (cli, _srv) = conn_pair(&cfg);
        let body = vec![0u8; 256 * 1024];
        let err = cli
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&body)
            })
            .unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)), "{err}");
    }

    #[test]
    fn recv_timeout_when_idle() {
        let cfg = RpcConfig::rpcoib();
        let (_cli, srv) = conn_pair(&cfg);
        assert_eq!(
            srv.recv_msg(Duration::from_millis(30)).unwrap_err(),
            RpcError::Timeout
        );
    }

    #[test]
    fn ib_context_requires_rdma_fabric() {
        let fabric = Fabric::new(model::IPOIB_QDR);
        let node = fabric.add_node();
        let err = IbContext::new(&fabric, node, &RpcConfig::rpcoib()).unwrap_err();
        assert!(matches!(err, RpcError::Config(_)));
    }

    #[test]
    fn batched_frames_roundtrip_in_order() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 50 + i as usize]).collect();
        cli.send_frames(crate::intern::method_key("p", "m"), frames.clone())
            .unwrap();
        for want in &frames {
            assert!(srv.poll_ready() || want == &frames[0]);
            let (payload, _) = srv.recv_msg(Duration::from_secs(1)).unwrap();
            assert_eq!(payload.len(), want.len());
            let mut got = vec![0u8; want.len()];
            std::io::Read::read_exact(&mut payload.reader(), &mut got).unwrap();
            assert_eq!(&got, want);
        }
        assert!(!srv.poll_ready(), "stash fully drained");
    }

    #[test]
    fn batch_mixed_with_large_frame_keeps_order() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        let frames = vec![
            vec![1u8; 64],
            vec![2u8; 100_000], // over rdma_threshold: goes out alone
            vec![3u8; 64],
        ];
        cli.send_frames(crate::intern::method_key("p", "m"), frames.clone())
            .unwrap();
        for want in &frames {
            let (payload, _) = srv.recv_msg(Duration::from_secs(5)).unwrap();
            assert_eq!(payload.len(), want.len());
            let mut got = vec![0u8; want.len()];
            std::io::Read::read_exact(&mut payload.reader(), &mut got).unwrap();
            assert_eq!(&got, want, "ordering drifted around the large frame");
        }
    }

    #[test]
    fn batching_disabled_falls_back_to_per_frame_sends() {
        let cfg = RpcConfig {
            wire_batch: false,
            ..RpcConfig::rpcoib()
        };
        let (cli, srv) = conn_pair(&cfg);
        let frames: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 32]).collect();
        cli.send_frames(crate::intern::method_key("p", "m"), frames.clone())
            .unwrap();
        for want in &frames {
            let (payload, _) = srv.recv_msg(Duration::from_secs(1)).unwrap();
            let mut got = vec![0u8; want.len()];
            std::io::Read::read_exact(&mut payload.reader(), &mut got).unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn pool_is_prefilled_and_reused() {
        let cfg = RpcConfig::rpcoib();
        let (cli, srv) = conn_pair(&cfg);
        // Warm the path.
        for _ in 0..10 {
            cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&[1u8; 200])
            })
            .unwrap();
            let _ = srv.recv_msg(Duration::from_secs(1)).unwrap();
        }
        let (_hits, misses, _ret, _over) = cli.ctx.pool.native().stats().snapshot();
        // After warmup the send path should not allocate fresh regions for
        // every call (some misses during warmup are expected).
        let (hits2, _m2, _r2, _o2) = cli.ctx.pool.native().stats().snapshot();
        assert!(hits2 > 0, "pool must be serving from freelists");
        assert!(misses < 50, "unbounded registration leak");
    }
}
