//! The default Hadoop RPC transport, bottlenecks included.
//!
//! This path deliberately reproduces every inefficiency Section II
//! profiles:
//!
//! **Send (Listing 1):** serialize into a fresh 32-byte
//! [`wire::DataOutputBuffer`] that grows by Algorithm 1 (instrumented);
//! then hand `[len prefix][payload]` to the socket as one *gathering*
//! write — the socket's own write path (in `simnet`) still performs the
//! user→kernel staging copy and charges the TCP/IP stack cost, but the
//! former user-space `BufferedOutputStream` re-copy is gone (it modeled
//! a copy the vectored syscall never needed).
//!
//! **Receive (Listing 2):** read the 4-byte length, allocate a fresh
//! heap buffer *per call* (timed — this is Figure 1's numerator), then
//! read the body through a bounded temporary chunk, copying temp→heap —
//! emulating the JDK's hidden direct-buffer hop for channel reads into
//! heap `ByteBuffer`s.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use simnet::SimStream;
use wire::{DataOutput, DataOutputBuffer};

use crate::error::{RpcError, RpcResult};
use crate::frame::Payload;
use crate::intern::MethodKey;
use crate::metrics::{MetricsRegistry, Phase};
use crate::transport::{Conn, RecvProfile, SendProfile};

/// Size of the temporary chunk used for the native→heap copy on receive
/// (the JDK uses an 8 KB-ish temp direct buffer).
const TEMP_CHUNK: usize = 8 * 1024;

/// Socket-based RPC connection.
pub struct SocketConn {
    stream: SimStream,
    /// Serializes concurrent senders so frames cannot interleave on the
    /// stream (the gathering write below is two logical slices).
    send: Mutex<()>,
    recv: Mutex<RecvState>,
    closed: AtomicBool,
    /// Initial capacity of fresh serialization buffers (32 B client-side,
    /// 10 KB server-side in Hadoop).
    init_buf: usize,
    /// When attached, every send feeds the per-`<protocol, method>`
    /// serialize/wire phase histograms.
    metrics: Option<MetricsRegistry>,
}

struct RecvState {
    /// Reusable temp chunk standing in for the JDK's temp direct buffer.
    temp: Box<[u8]>,
}

impl SocketConn {
    /// Wrap an established stream. `init_buf` is the initial
    /// `DataOutputBuffer` capacity for messages sent on this connection.
    pub fn new(stream: SimStream, init_buf: usize) -> Self {
        SocketConn {
            stream,
            send: Mutex::new(()),
            recv: Mutex::new(RecvState {
                temp: vec![0u8; TEMP_CHUNK].into_boxed_slice(),
            }),
            closed: AtomicBool::new(false),
            init_buf,
            metrics: None,
        }
    }

    /// Attach a metrics registry; subsequent sends record their serialize
    /// and wire times into its phase histograms.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    fn check_open(&self) -> RpcResult<()> {
        if self.closed.load(Ordering::Acquire) {
            Err(RpcError::ConnectionClosed)
        } else {
            Ok(())
        }
    }

    /// Read exactly `buf.len()` bytes. Returns `Timeout` only if *nothing*
    /// was consumed before the deadline; once a frame has started we wait
    /// it out (it is in flight on a reliable stream).
    fn read_exact_deadline(&self, buf: &mut [u8], deadline: Option<Instant>) -> RpcResult<usize> {
        use std::io::Read;
        let mut filled = 0usize;
        self.stream
            .set_read_timeout(Some(Duration::from_millis(50)));
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(RpcError::ConnectionClosed);
            }
            match (&self.stream).read(&mut buf[filled..]) {
                Ok(0) => return Err(RpcError::ConnectionClosed),
                Ok(n) => {
                    filled += n;
                    if filled == buf.len() {
                        return Ok(filled);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    if filled == 0 {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                return Err(RpcError::Timeout);
                            }
                        }
                    }
                    // Frame started (or no deadline): keep waiting.
                }
                Err(e) => return Err(RpcError::Io(e.to_string())),
            }
        }
    }
}

impl Conn for SocketConn {
    fn send_msg(
        &self,
        key: MethodKey,
        write: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile> {
        self.check_open()?;

        // --- Serialization (Listing 1 lines 2-7) ---
        let ser_start = Instant::now();
        let mut d = DataOutputBuffer::with_capacity(self.init_buf);
        write(&mut d)?;
        let serialize_ns = ser_start.elapsed().as_nanos() as u64;
        let adjustments = d.adjustments();
        let size = d.len();

        // --- Sending (Listing 1 lines 9-13, vectored) ---
        let send_start = Instant::now();
        let guard = self.send.lock();
        // One gathering socket write of [len prefix][payload]: the stream
        // still performs the user→kernel staging copy and pays the stack +
        // wire costs, but nothing re-copies the frame in user space.
        let len_prefix = (size as i32).to_be_bytes();
        self.stream
            .write_gather(&[&len_prefix, d.data()])
            .map_err(|e| match e.kind() {
                io::ErrorKind::BrokenPipe | io::ErrorKind::NotConnected => {
                    RpcError::ConnectionClosed
                }
                _ => RpcError::Io(e.to_string()),
            })?;
        drop(guard);
        let send_ns = send_start.elapsed().as_nanos() as u64;

        if let Some(m) = &self.metrics {
            let entry = m.entry(key);
            entry.record_phase(Phase::Serialize, serialize_ns);
            entry.record_phase(Phase::Wire, send_ns);
        }

        Ok(SendProfile {
            serialize_ns,
            send_ns,
            adjustments,
            size,
        })
    }

    fn recv_msg(&self, timeout: Duration) -> RpcResult<(Payload, RecvProfile)> {
        self.check_open()?;
        let mut state = self.recv.lock();
        let deadline = Instant::now() + timeout;

        // Listing 2 line 3-5: read the length (tiny per-call buffer).
        let mut len_buf = [0u8; 4];
        self.read_exact_deadline(&mut len_buf, Some(deadline))?;
        let total_start = Instant::now();
        let len = i32::from_be_bytes(len_buf);
        if len < 0 {
            return Err(RpcError::Protocol(format!("negative frame length {len}")));
        }
        let len = len as usize;

        // Listing 2 line 6: ByteBuffer.allocate(len) — a fresh, zeroed
        // heap buffer per call. This allocation is what Figure 1 measures.
        // Deliberately NOT `vec![0; len]`: that lowers to calloc, whose
        // lazily-mapped zero pages would make the "allocation" free. The
        // JVM zeroes heap arrays eagerly; the explicit resize models that.
        #[allow(clippy::slow_vector_initialization)]
        let (mut heap, alloc_ns) = {
            let alloc_start = Instant::now();
            let mut heap = Vec::with_capacity(len);
            heap.resize(len, 0);
            (heap, alloc_start.elapsed().as_nanos() as u64)
        };

        // Listing 2 line 8: read fully, in chunks, through the temp
        // buffer (native→heap copy per chunk).
        let mut filled = 0;
        while filled < len {
            let chunk = (len - filled).min(state.temp.len());
            self.read_exact_deadline(&mut state.temp[..chunk], None)?;
            heap[filled..filled + chunk].copy_from_slice(&state.temp[..chunk]);
            filled += chunk;
        }
        let total_ns = total_start.elapsed().as_nanos() as u64 + 1;

        Ok((
            Payload::Owned(heap),
            RecvProfile {
                alloc_ns,
                total_ns,
                size: len,
            },
        ))
    }

    fn poll_ready(&self) -> bool {
        // A closed connection is "ready" so the shard's next recv_msg
        // observes ConnectionClosed instead of skipping the conn forever.
        self.closed.load(Ordering::Acquire) || self.stream.readable()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.stream.shutdown_write();
    }

    fn peer(&self) -> String {
        self.stream.peer_addr().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{model, Fabric, SimAddr, SimListener};
    use std::sync::Arc;
    use std::thread;
    use wire::DataInput;

    fn conn_pair() -> (Arc<SocketConn>, Arc<SocketConn>) {
        let fabric = Fabric::new(model::IPOIB_QDR);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 9000);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let f2 = fabric.clone();
        let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
        let (srv_stream, _) = listener.accept().unwrap();
        let cli_stream = h.join().unwrap();
        (
            Arc::new(SocketConn::new(cli_stream, 32)),
            Arc::new(SocketConn::new(srv_stream, 10240)),
        )
    }

    #[test]
    fn message_roundtrip_with_profiles() {
        let (cli, srv) = conn_pair();
        let profile = cli
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_string("hello")?;
                out.write_i64(12345)
            })
            .unwrap();
        assert_eq!(profile.size, 1 + 5 + 8);
        assert!(profile.serialize_ns > 0);
        assert!(profile.send_ns > 0);
        assert_eq!(profile.adjustments, 0, "fits in 32 bytes");

        let (payload, recv) = srv.recv_msg(Duration::from_secs(1)).unwrap();
        assert_eq!(recv.size, profile.size);
        let mut reader = payload.reader();
        assert_eq!(reader.read_string().unwrap(), "hello");
        assert_eq!(reader.read_i64().unwrap(), 12345);
    }

    #[test]
    fn algorithm1_adjustments_show_up_in_profile() {
        let (cli, srv) = conn_pair();
        let profile = cli
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&[7u8; 1000])
            })
            .unwrap();
        assert!(
            profile.adjustments >= 1,
            "32-byte buffer must adjust for 1000 bytes"
        );
        let (payload, recv) = srv.recv_msg(Duration::from_secs(1)).unwrap();
        assert_eq!(payload.len(), 1000);
        assert!(recv.alloc_ns > 0, "per-call allocation is timed");
    }

    #[test]
    fn server_init_buffer_avoids_adjustments_for_medium_frames() {
        let (_cli, srv) = conn_pair();
        // Server-side responses start from a 10KB buffer (Hadoop default):
        // a 5KB response needs no adjustment.
        let profile = srv
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&[1u8; 5000])
            })
            .unwrap();
        assert_eq!(profile.adjustments, 0);
    }

    #[test]
    fn recv_timeout_when_idle() {
        let (_cli, srv) = conn_pair();
        let err = srv.recv_msg(Duration::from_millis(30)).unwrap_err();
        assert_eq!(err, RpcError::Timeout);
    }

    #[test]
    fn poll_ready_tracks_data_eof_and_close() {
        let (cli, srv) = conn_pair();
        assert!(!srv.poll_ready(), "idle conn must not be ready");
        cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
            out.write_u8(9)
        })
        .unwrap();
        assert!(srv.poll_ready());
        let (payload, _) = srv.recv_msg(Duration::from_secs(1)).unwrap();
        assert_eq!(payload.len(), 1);
        assert!(!srv.poll_ready(), "drained conn must not be ready");
        drop(cli);
        assert!(srv.poll_ready(), "EOF counts as ready");
        assert_eq!(
            srv.recv_msg(Duration::from_secs(1)).unwrap_err(),
            RpcError::ConnectionClosed
        );
        let (_cli2, srv2) = conn_pair();
        srv2.close();
        assert!(srv2.poll_ready(), "locally closed conn must be ready");
    }

    #[test]
    fn eof_maps_to_connection_closed() {
        let (cli, srv) = conn_pair();
        drop(cli);
        let err = srv.recv_msg(Duration::from_secs(1)).unwrap_err();
        assert_eq!(err, RpcError::ConnectionClosed);
    }

    #[test]
    fn close_fails_future_operations() {
        let (cli, _srv) = conn_pair();
        cli.close();
        let err = cli
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_u8(1)
            })
            .unwrap_err();
        assert_eq!(err, RpcError::ConnectionClosed);
    }

    #[test]
    fn large_frames_survive_chunked_receive() {
        let (cli, srv) = conn_pair();
        let payload: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        let p2 = payload.clone();
        let h = thread::spawn(move || {
            cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&p2)
            })
            .unwrap();
        });
        let (got, _) = srv.recv_msg(Duration::from_secs(5)).unwrap();
        h.join().unwrap();
        let mut reader = got.reader();
        let mut out = vec![0u8; payload.len()];
        std::io::Read::read_exact(&mut reader, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn concurrent_senders_do_not_interleave_frames() {
        let (cli, srv) = conn_pair();
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let cli = Arc::clone(&cli);
            handles.push(thread::spawn(move || {
                for _ in 0..10 {
                    cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                        out.write_u8(t)?;
                        out.write_bytes(&[t; 499])
                    })
                    .unwrap();
                }
            }));
        }
        for _ in 0..40 {
            let (payload, _) = srv.recv_msg(Duration::from_secs(5)).unwrap();
            assert_eq!(payload.len(), 500);
            let mut reader = payload.reader();
            let tag = reader.read_u8().unwrap();
            let mut body = vec![0u8; 499];
            std::io::Read::read_exact(&mut reader, &mut body).unwrap();
            assert!(
                body.iter().all(|&b| b == tag),
                "frame interleaving detected"
            );
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
