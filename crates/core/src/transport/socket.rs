//! The default Hadoop RPC transport, bottlenecks included.
//!
//! This path deliberately reproduces every inefficiency Section II
//! profiles:
//!
//! **Send (Listing 1):** serialize into a fresh 32-byte
//! [`wire::DataOutputBuffer`] that grows by Algorithm 1 (instrumented);
//! then hand `[len prefix][payload]` to the socket as one *gathering*
//! write — the socket's own write path (in `simnet`) still performs the
//! user→kernel staging copy and charges the TCP/IP stack cost, but the
//! former user-space `BufferedOutputStream` re-copy is gone (it modeled
//! a copy the vectored syscall never needed).
//!
//! **Receive (Listing 2):** read the 4-byte length, allocate a fresh
//! heap buffer *per call* (timed — this is Figure 1's numerator), then
//! read the body through a bounded temporary chunk, copying temp→heap —
//! emulating the JDK's hidden direct-buffer hop for channel reads into
//! heap `ByteBuffer`s.
//!
//! **Opportunistic coalescing.** Sends go through a single-writer write
//! queue (the bRPC execution-queue idiom): the first sender to find the
//! wire free becomes the *flusher* and writes its own frame immediately —
//! an idle connection is never delayed (no Nagle timer anywhere). Senders
//! that arrive while a flush is in flight enqueue their finished frames
//! and park; the flusher's next sweep drains everything queued into one
//! vectored `write_gather`, amortizing the per-syscall stack traversal
//! and latency across the whole batch.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use simnet::SimStream;
use wire::{DataOutput, DataOutputBuffer};

use crate::error::{RpcError, RpcResult};
use crate::frame::Payload;
use crate::intern::MethodKey;
use crate::metrics::{MetricsRegistry, Phase};
use crate::transport::{Conn, RecvProfile, SendProfile};

/// Size of the temporary chunk used for the native→heap copy on receive
/// (the JDK uses an 8 KB-ish temp direct buffer).
const TEMP_CHUNK: usize = 8 * 1024;

/// Inline capacity for a frame's order-sensitive lead bytes. A V3 lead is
/// 3–27 bytes unless it carries an inline method announcement, which
/// spills to the heap once per `<protocol, method>` per connection.
const LEAD_INLINE: usize = 32;

/// Socket-based RPC connection.
pub struct SocketConn {
    stream: SimStream,
    /// The write queue: all frames pass through here so concurrent
    /// senders cannot interleave on the stream and queued frames can be
    /// coalesced into one gathered write.
    wq: Mutex<WriteQueue>,
    wq_cv: Condvar,
    recv: Mutex<RecvState>,
    closed: AtomicBool,
    /// Initial capacity of fresh serialization buffers (32 B client-side,
    /// 10 KB server-side in Hadoop).
    init_buf: usize,
    /// When false the flusher writes one frame per gather (coalescing
    /// off — the bench/CI control arm).
    batch: bool,
    /// When attached, every send feeds the per-`<protocol, method>`
    /// serialize/wire phase histograms.
    metrics: Option<MetricsRegistry>,
    /// Copy of the armed readiness hook, so a local `close()` can deliver
    /// its own wake (the stream only fires for peer-side edges).
    ready_hook: Mutex<Option<std::sync::Arc<dyn Fn() + Send + Sync>>>,
}

/// A serializer callback writing one frame part into the transport's
/// preferred [`DataOutput`].
type WritePart<'a> = &'a mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>;

/// One finished frame awaiting the wire: `[u32 len][lead][body]`.
struct WqEntry {
    ticket: u64,
    lead_len: usize,
    lead: [u8; LEAD_INLINE],
    /// Overflow home for a long lead; when non-empty it replaces `lead`.
    lead_spill: Vec<u8>,
    body: Vec<u8>,
}

impl WqEntry {
    fn lead_bytes(&self) -> &[u8] {
        if self.lead_spill.is_empty() {
            &self.lead[..self.lead_len]
        } else {
            &self.lead_spill
        }
    }

    fn frame_len(&self) -> usize {
        self.lead_bytes().len() + self.body.len()
    }
}

struct WriteQueue {
    queue: VecDeque<WqEntry>,
    next_ticket: u64,
    /// Every ticket `<= done_ticket` is on the wire.
    done_ticket: u64,
    /// A flusher thread currently owns the stream.
    flushing: bool,
    /// Sticky first write error; every queued and future send observes it.
    err: Option<RpcError>,
}

/// `DataOutput` sink for lead encoding: inline array first, one heap
/// spill if the lead outgrows it.
struct LeadSink {
    buf: [u8; LEAD_INLINE],
    len: usize,
    spill: Vec<u8>,
}

impl LeadSink {
    fn new() -> Self {
        LeadSink {
            buf: [0u8; LEAD_INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }
}

impl io::Write for LeadSink {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.spill.is_empty() {
            if self.len + data.len() <= LEAD_INLINE {
                self.buf[self.len..self.len + data.len()].copy_from_slice(data);
                self.len += data.len();
                return Ok(data.len());
            }
            self.spill.reserve(self.len + data.len());
            self.spill.extend_from_slice(&self.buf[..self.len]);
        }
        self.spill.extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

struct RecvState {
    /// Reusable temp chunk standing in for the JDK's temp direct buffer.
    temp: Box<[u8]>,
}

impl SocketConn {
    /// Wrap an established stream. `init_buf` is the initial
    /// `DataOutputBuffer` capacity for messages sent on this connection.
    pub fn new(stream: SimStream, init_buf: usize) -> Self {
        SocketConn {
            stream,
            wq: Mutex::new(WriteQueue {
                queue: VecDeque::new(),
                next_ticket: 0,
                done_ticket: 0,
                flushing: false,
                err: None,
            }),
            wq_cv: Condvar::new(),
            recv: Mutex::new(RecvState {
                temp: vec![0u8; TEMP_CHUNK].into_boxed_slice(),
            }),
            closed: AtomicBool::new(false),
            init_buf,
            batch: true,
            metrics: None,
            ready_hook: Mutex::new(None),
        }
    }

    /// Attach a metrics registry; subsequent sends record their serialize
    /// and wire times into its phase histograms.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Enable/disable write coalescing (default on). Off, the flusher
    /// writes exactly one frame per gathered write — same queue, same
    /// ordering, no amortization — so the batching win is measurable.
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    fn check_open(&self) -> RpcResult<()> {
        if self.closed.load(Ordering::Acquire) {
            Err(RpcError::ConnectionClosed)
        } else {
            Ok(())
        }
    }

    /// Read exactly `buf.len()` bytes. Returns `Timeout` only if *nothing*
    /// was consumed before the deadline; once a frame has started we wait
    /// it out (it is in flight on a reliable stream).
    fn read_exact_deadline(&self, buf: &mut [u8], deadline: Option<Instant>) -> RpcResult<usize> {
        use std::io::Read;
        let mut filled = 0usize;
        self.stream
            .set_read_timeout(Some(Duration::from_millis(50)));
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(RpcError::ConnectionClosed);
            }
            match (&self.stream).read(&mut buf[filled..]) {
                Ok(0) => return Err(RpcError::ConnectionClosed),
                Ok(n) => {
                    filled += n;
                    if filled == buf.len() {
                        return Ok(filled);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    if filled == 0 {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                return Err(RpcError::Timeout);
                            }
                        }
                    }
                    // Frame started (or no deadline): keep waiting.
                }
                Err(e) => return Err(RpcError::Io(e.to_string())),
            }
        }
    }

    fn map_write_err(e: io::Error) -> RpcError {
        match e.kind() {
            io::ErrorKind::BrokenPipe | io::ErrorKind::NotConnected => RpcError::ConnectionClosed,
            _ => RpcError::Io(e.to_string()),
        }
    }

    /// Write one drained batch as a single vectored gather:
    /// `[len0][lead0][body0][len1][lead1][body1]…`. The stream charges
    /// the stack traversal and base latency once for the whole gather —
    /// the amortization the batching layer exists for. The single-frame
    /// case (every uncontended send) composes its slices on the stack.
    fn write_batch(&self, batch: &[WqEntry]) -> RpcResult<()> {
        if let [entry] = batch {
            // Empty slices contribute no bytes to the gather's cost model,
            // so a lead-less frame really is the old `[prefix][payload]`.
            let prefix = (entry.frame_len() as i32).to_be_bytes();
            let slices: [&[u8]; 3] = [&prefix, entry.lead_bytes(), &entry.body];
            return self
                .stream
                .write_gather(&slices)
                .map(|_| ())
                .map_err(Self::map_write_err);
        }
        let prefixes: Vec<[u8; 4]> = batch
            .iter()
            .map(|e| (e.frame_len() as i32).to_be_bytes())
            .collect();
        let mut slices: Vec<&[u8]> = Vec::with_capacity(batch.len() * 3);
        for (entry, prefix) in batch.iter().zip(&prefixes) {
            slices.push(prefix);
            let lead = entry.lead_bytes();
            if !lead.is_empty() {
                slices.push(lead);
            }
            if !entry.body.is_empty() {
                slices.push(&entry.body);
            }
        }
        self.stream
            .write_gather(&slices)
            .map(|_| ())
            .map_err(Self::map_write_err)
    }

    /// Enqueue one finished frame and see it onto the wire.
    ///
    /// `lead` (if any) is encoded *under the queue lock*, at the moment
    /// this frame's wire order becomes final — the ordering point that
    /// [`Conn::send_msg_ordered`] promises stateful encoders.
    fn transmit_one(&self, lead: Option<WritePart<'_>>, body: Vec<u8>) -> RpcResult<()> {
        let mut st = self.wq.lock();
        if let Some(e) = &st.err {
            return Err(e.clone());
        }
        let mut entry = WqEntry {
            ticket: st.next_ticket,
            lead_len: 0,
            lead: [0u8; LEAD_INLINE],
            lead_spill: Vec::new(),
            body,
        };
        if let Some(write_lead) = lead {
            let mut sink = LeadSink::new();
            write_lead(&mut sink)?;
            entry.lead = sink.buf;
            entry.lead_len = sink.len;
            entry.lead_spill = sink.spill;
        }
        st.next_ticket += 1;
        let ticket = entry.ticket;
        st.queue.push_back(entry);
        self.flush_or_wait(st, ticket)
    }

    /// Enqueue several finished frames back-to-back and see them onto the
    /// wire; an uncontended caller flushes them as one gather.
    fn transmit_many(&self, bodies: impl Iterator<Item = Vec<u8>>) -> RpcResult<()> {
        let mut st = self.wq.lock();
        if let Some(e) = &st.err {
            return Err(e.clone());
        }
        let mut last_ticket = None;
        for body in bodies {
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push_back(WqEntry {
                ticket,
                lead_len: 0,
                lead: [0u8; LEAD_INLINE],
                lead_spill: Vec::new(),
                body,
            });
            last_ticket = Some(ticket);
        }
        match last_ticket {
            Some(ticket) => self.flush_or_wait(st, ticket),
            None => Ok(()),
        }
    }

    /// The single-writer protocol. The first sender to find the wire free
    /// becomes the flusher and writes immediately (Nagle-free: an idle
    /// connection's frame is never delayed); senders arriving mid-flush
    /// park until their ticket is on the wire, and the owning flusher
    /// sweeps everything queued into one gather per iteration.
    fn flush_or_wait<'a>(
        &'a self,
        mut st: parking_lot::MutexGuard<'a, WriteQueue>,
        my_ticket: u64,
    ) -> RpcResult<()> {
        if st.flushing {
            while st.err.is_none() && st.done_ticket < my_ticket {
                self.wq_cv.wait(&mut st);
            }
            return match &st.err {
                Some(e) if st.done_ticket < my_ticket => Err(e.clone()),
                _ => Ok(()),
            };
        }

        st.flushing = true;
        loop {
            let take = if self.batch { st.queue.len() } else { 1 };
            let batch: Vec<WqEntry> = st.queue.drain(..take).collect();
            drop(st);
            let result = self.write_batch(&batch);
            st = self.wq.lock();
            match result {
                Ok(()) => {
                    st.done_ticket = batch.last().expect("non-empty batch").ticket;
                    self.wq_cv.notify_all();
                }
                Err(e) => {
                    if st.err.is_none() {
                        st.err = Some(e.clone());
                    }
                    st.queue.clear();
                    st.flushing = false;
                    self.wq_cv.notify_all();
                    return Err(e);
                }
            }
            if st.queue.is_empty() {
                st.flushing = false;
                return Ok(());
            }
        }
    }
}

impl Conn for SocketConn {
    fn send_msg(
        &self,
        key: MethodKey,
        write: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile> {
        self.check_open()?;

        // --- Serialization (Listing 1 lines 2-7) ---
        let ser_start = Instant::now();
        let mut d = DataOutputBuffer::with_capacity(self.init_buf);
        write(&mut d)?;
        let serialize_ns = ser_start.elapsed().as_nanos() as u64;
        let adjustments = d.adjustments();
        let size = d.len();

        // --- Sending (Listing 1 lines 9-13, vectored + coalesced) ---
        // The finished frame moves into the write queue without a copy;
        // the stream still performs the user→kernel staging copy and pays
        // the stack + wire costs, but nothing re-copies it in user space.
        let send_start = Instant::now();
        self.transmit_one(None, d.into_vec())?;
        let send_ns = send_start.elapsed().as_nanos() as u64;

        if let Some(m) = &self.metrics {
            let entry = m.entry(key);
            entry.record_phase(Phase::Serialize, serialize_ns);
            entry.record_phase(Phase::Wire, send_ns);
        }

        Ok(SendProfile {
            serialize_ns,
            send_ns,
            adjustments,
            size,
        })
    }

    fn send_msg_ordered(
        &self,
        key: MethodKey,
        lead: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
        body: &mut dyn FnMut(&mut dyn DataOutput) -> io::Result<()>,
    ) -> RpcResult<SendProfile> {
        self.check_open()?;

        // The body (the call parameters — all the bulk) serializes off
        // every lock, concurrently with other senders; only the tiny
        // order-sensitive lead is encoded under the queue lock, inside
        // `transmit_one`, once this frame's wire position is final.
        let ser_start = Instant::now();
        let mut d = DataOutputBuffer::with_capacity(self.init_buf);
        body(&mut d)?;
        let serialize_ns = ser_start.elapsed().as_nanos() as u64;
        let adjustments = d.adjustments();
        let body_len = d.len();

        let send_start = Instant::now();
        self.transmit_one(Some(lead), d.into_vec())?;
        let send_ns = send_start.elapsed().as_nanos() as u64;

        if let Some(m) = &self.metrics {
            let entry = m.entry(key);
            entry.record_phase(Phase::Serialize, serialize_ns);
            entry.record_phase(Phase::Wire, send_ns);
        }

        Ok(SendProfile {
            serialize_ns,
            send_ns,
            adjustments,
            // The lead is a handful of bytes; the profile tracks the
            // serialized body, which is what sizing heuristics care about.
            size: body_len,
        })
    }

    fn send_frames(&self, key: MethodKey, frames: Vec<Vec<u8>>) -> RpcResult<()> {
        self.check_open()?;
        let n = frames.len() as u64;
        if n == 0 {
            return Ok(());
        }
        let send_start = Instant::now();
        self.transmit_many(frames.into_iter())?;
        if let Some(m) = &self.metrics {
            // One sample per frame, as a per-frame send would record —
            // the gathered send's cost amortized over its frames. The
            // bytes arrive pre-serialized, so serialize time is nil.
            let per_frame = (send_start.elapsed().as_nanos() as u64) / n;
            let entry = m.entry(key);
            for _ in 0..n {
                entry.record_phase(Phase::Serialize, 0);
                entry.record_phase(Phase::Wire, per_frame);
            }
        }
        Ok(())
    }

    fn recv_msg(&self, timeout: Duration) -> RpcResult<(Payload, RecvProfile)> {
        self.check_open()?;
        let mut state = self.recv.lock();
        let deadline = Instant::now() + timeout;

        // Listing 2 line 3-5: read the length (tiny per-call buffer).
        let mut len_buf = [0u8; 4];
        self.read_exact_deadline(&mut len_buf, Some(deadline))?;
        let total_start = Instant::now();
        let len = i32::from_be_bytes(len_buf);
        if len < 0 {
            return Err(RpcError::Protocol(format!("negative frame length {len}")));
        }
        let len = len as usize;

        // Listing 2 line 6: ByteBuffer.allocate(len) — a fresh, zeroed
        // heap buffer per call. This allocation is what Figure 1 measures.
        // Deliberately NOT `vec![0; len]`: that lowers to calloc, whose
        // lazily-mapped zero pages would make the "allocation" free. The
        // JVM zeroes heap arrays eagerly; the explicit resize models that.
        #[allow(clippy::slow_vector_initialization)]
        let (mut heap, alloc_ns) = {
            let alloc_start = Instant::now();
            let mut heap = Vec::with_capacity(len);
            heap.resize(len, 0);
            (heap, alloc_start.elapsed().as_nanos() as u64)
        };

        // Listing 2 line 8: read fully, in chunks, through the temp
        // buffer (native→heap copy per chunk).
        let mut filled = 0;
        while filled < len {
            let chunk = (len - filled).min(state.temp.len());
            self.read_exact_deadline(&mut state.temp[..chunk], None)?;
            heap[filled..filled + chunk].copy_from_slice(&state.temp[..chunk]);
            filled += chunk;
        }
        let total_ns = total_start.elapsed().as_nanos() as u64 + 1;

        Ok((
            Payload::Owned(heap),
            RecvProfile {
                alloc_ns,
                total_ns,
                size: len,
            },
        ))
    }

    fn poll_ready(&self) -> bool {
        // A closed connection is "ready" so the shard's next recv_msg
        // observes ConnectionClosed instead of skipping the conn forever.
        self.closed.load(Ordering::Acquire) || self.stream.readable()
    }

    fn set_ready_hook(&self, hook: std::sync::Arc<dyn Fn() + Send + Sync>) {
        *self.ready_hook.lock() = Some(hook.clone());
        self.stream.set_read_interest(hook);
    }

    fn buffered_bytes(&self) -> usize {
        self.stream.buffered_bytes()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.stream.shutdown_write();
        // Fail queued frames and wake parked senders; the active flusher
        // (if any) will observe the dead stream on its own.
        let mut st = self.wq.lock();
        if st.err.is_none() {
            st.err = Some(RpcError::ConnectionClosed);
        }
        st.queue.clear();
        self.wq_cv.notify_all();
        // A local close is a readiness edge too (`poll_ready` is now
        // permanently true); the stream won't fire for it, so do it here.
        let hook = self.ready_hook.lock().clone();
        if let Some(hook) = hook {
            hook();
        }
    }

    fn peer(&self) -> String {
        self.stream.peer_addr().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{model, Fabric, SimAddr, SimListener};
    use std::sync::Arc;
    use std::thread;
    use wire::DataInput;

    fn conn_pair() -> (Arc<SocketConn>, Arc<SocketConn>) {
        let fabric = Fabric::new(model::IPOIB_QDR);
        let server = fabric.add_node();
        let client = fabric.add_node();
        let addr = SimAddr::new(server, 9000);
        let listener = SimListener::bind(&fabric, addr).unwrap();
        let f2 = fabric.clone();
        let h = thread::spawn(move || SimStream::connect(&f2, client, addr).unwrap());
        let (srv_stream, _) = listener.accept().unwrap();
        let cli_stream = h.join().unwrap();
        (
            Arc::new(SocketConn::new(cli_stream, 32)),
            Arc::new(SocketConn::new(srv_stream, 10240)),
        )
    }

    #[test]
    fn message_roundtrip_with_profiles() {
        let (cli, srv) = conn_pair();
        let profile = cli
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_string("hello")?;
                out.write_i64(12345)
            })
            .unwrap();
        assert_eq!(profile.size, 1 + 5 + 8);
        assert!(profile.serialize_ns > 0);
        assert!(profile.send_ns > 0);
        assert_eq!(profile.adjustments, 0, "fits in 32 bytes");

        let (payload, recv) = srv.recv_msg(Duration::from_secs(1)).unwrap();
        assert_eq!(recv.size, profile.size);
        let mut reader = payload.reader();
        assert_eq!(reader.read_string().unwrap(), "hello");
        assert_eq!(reader.read_i64().unwrap(), 12345);
    }

    #[test]
    fn algorithm1_adjustments_show_up_in_profile() {
        let (cli, srv) = conn_pair();
        let profile = cli
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&[7u8; 1000])
            })
            .unwrap();
        assert!(
            profile.adjustments >= 1,
            "32-byte buffer must adjust for 1000 bytes"
        );
        let (payload, recv) = srv.recv_msg(Duration::from_secs(1)).unwrap();
        assert_eq!(payload.len(), 1000);
        assert!(recv.alloc_ns > 0, "per-call allocation is timed");
    }

    #[test]
    fn server_init_buffer_avoids_adjustments_for_medium_frames() {
        let (_cli, srv) = conn_pair();
        // Server-side responses start from a 10KB buffer (Hadoop default):
        // a 5KB response needs no adjustment.
        let profile = srv
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&[1u8; 5000])
            })
            .unwrap();
        assert_eq!(profile.adjustments, 0);
    }

    #[test]
    fn recv_timeout_when_idle() {
        let (_cli, srv) = conn_pair();
        let err = srv.recv_msg(Duration::from_millis(30)).unwrap_err();
        assert_eq!(err, RpcError::Timeout);
    }

    #[test]
    fn poll_ready_tracks_data_eof_and_close() {
        let (cli, srv) = conn_pair();
        assert!(!srv.poll_ready(), "idle conn must not be ready");
        cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
            out.write_u8(9)
        })
        .unwrap();
        assert!(srv.poll_ready());
        let (payload, _) = srv.recv_msg(Duration::from_secs(1)).unwrap();
        assert_eq!(payload.len(), 1);
        assert!(!srv.poll_ready(), "drained conn must not be ready");
        drop(cli);
        assert!(srv.poll_ready(), "EOF counts as ready");
        assert_eq!(
            srv.recv_msg(Duration::from_secs(1)).unwrap_err(),
            RpcError::ConnectionClosed
        );
        let (_cli2, srv2) = conn_pair();
        srv2.close();
        assert!(srv2.poll_ready(), "locally closed conn must be ready");
    }

    #[test]
    fn eof_maps_to_connection_closed() {
        let (cli, srv) = conn_pair();
        drop(cli);
        let err = srv.recv_msg(Duration::from_secs(1)).unwrap_err();
        assert_eq!(err, RpcError::ConnectionClosed);
    }

    #[test]
    fn close_fails_future_operations() {
        let (cli, _srv) = conn_pair();
        cli.close();
        let err = cli
            .send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_u8(1)
            })
            .unwrap_err();
        assert_eq!(err, RpcError::ConnectionClosed);
    }

    #[test]
    fn large_frames_survive_chunked_receive() {
        let (cli, srv) = conn_pair();
        let payload: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        let p2 = payload.clone();
        let h = thread::spawn(move || {
            cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                out.write_bytes(&p2)
            })
            .unwrap();
        });
        let (got, _) = srv.recv_msg(Duration::from_secs(5)).unwrap();
        h.join().unwrap();
        let mut reader = got.reader();
        let mut out = vec![0u8; payload.len()];
        std::io::Read::read_exact(&mut reader, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn send_frames_preserves_frame_boundaries() {
        let (cli, srv) = conn_pair();
        let frames: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; (i as usize + 1) * 3]).collect();
        cli.send_frames(crate::intern::method_key("p", "m"), frames.clone())
            .unwrap();
        for want in &frames {
            let (payload, _) = srv.recv_msg(Duration::from_secs(1)).unwrap();
            assert_eq!(payload.len(), want.len());
            let mut got = vec![0u8; want.len()];
            std::io::Read::read_exact(&mut payload.reader(), &mut got).unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn ordered_send_encodes_lead_before_body() {
        let (cli, srv) = conn_pair();
        cli.send_msg_ordered(
            crate::intern::method_key("p", "m"),
            &mut |out| out.write_u8(0xAA),
            &mut |out| out.write_bytes(&[1, 2, 3]),
        )
        .unwrap();
        let (payload, _) = srv.recv_msg(Duration::from_secs(1)).unwrap();
        let mut got = vec![0u8; 4];
        std::io::Read::read_exact(&mut payload.reader(), &mut got).unwrap();
        assert_eq!(got, [0xAA, 1, 2, 3], "lead precedes body in one frame");
    }

    #[test]
    fn long_lead_spills_without_corruption() {
        let (cli, srv) = conn_pair();
        let lead: Vec<u8> = (0..100u8).collect();
        cli.send_msg_ordered(
            crate::intern::method_key("p", "m"),
            &mut |out| out.write_bytes(&lead),
            &mut |out| out.write_bytes(&[7, 8]),
        )
        .unwrap();
        let (payload, _) = srv.recv_msg(Duration::from_secs(1)).unwrap();
        assert_eq!(payload.len(), 102);
        let mut got = vec![0u8; 102];
        std::io::Read::read_exact(&mut payload.reader(), &mut got).unwrap();
        assert_eq!(&got[..100], &lead[..]);
        assert_eq!(&got[100..], &[7, 8]);
    }

    #[test]
    fn queued_senders_survive_batched_flush() {
        // Many threads race the write queue; every frame must arrive
        // whole regardless of which sweep coalesced it.
        let (cli, srv) = conn_pair();
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let cli = Arc::clone(&cli);
            handles.push(thread::spawn(move || {
                for i in 0..16u8 {
                    cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                        out.write_u8(t)?;
                        out.write_u8(i)?;
                        out.write_bytes(&[t ^ i; 100])
                    })
                    .unwrap();
                }
            }));
        }
        for _ in 0..128 {
            let (payload, _) = srv.recv_msg(Duration::from_secs(5)).unwrap();
            assert_eq!(payload.len(), 102);
            let mut reader = payload.reader();
            let t = reader.read_u8().unwrap();
            let i = reader.read_u8().unwrap();
            let mut body = vec![0u8; 100];
            std::io::Read::read_exact(&mut reader, &mut body).unwrap();
            assert!(body.iter().all(|&b| b == t ^ i), "frame corrupted");
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn close_wakes_and_fails_queued_senders() {
        let (cli, _srv) = conn_pair();
        cli.close();
        let err = cli
            .send_frames(crate::intern::method_key("p", "m"), vec![vec![1]])
            .unwrap_err();
        assert_eq!(err, RpcError::ConnectionClosed);
    }

    #[test]
    fn concurrent_senders_do_not_interleave_frames() {
        let (cli, srv) = conn_pair();
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let cli = Arc::clone(&cli);
            handles.push(thread::spawn(move || {
                for _ in 0..10 {
                    cli.send_msg(crate::intern::method_key("p", "m"), &mut |out| {
                        out.write_u8(t)?;
                        out.write_bytes(&[t; 499])
                    })
                    .unwrap();
                }
            }));
        }
        for _ in 0..40 {
            let (payload, _) = srv.recv_msg(Duration::from_secs(5)).unwrap();
            assert_eq!(payload.len(), 500);
            let mut reader = payload.reader();
            let tag = reader.read_u8().unwrap();
            let mut body = vec![0u8; 499];
            std::io::Read::read_exact(&mut reader, &mut body).unwrap();
            assert!(
                body.iter().all(|&b| b == tag),
                "frame interleaving detected"
            );
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
