//! Weighted-fair, deadline-aware admission queue between the reader
//! shards and the handler pool.
//!
//! The seed design used one bounded FIFO channel: first come, first
//! served, with a global `STATUS_BUSY` overflow. Under skewed
//! multi-tenant load that collapses — a single flooder fills the queue,
//! every light tenant's calls either bounce or wait behind the flood, and
//! handlers burn time executing calls whose callers have long since timed
//! out. This queue replaces it with three mechanisms, each individually
//! switchable from [`crate::RpcConfig`]:
//!
//! * **Per-tenant quotas** (`tenant_quota`): a tenant's outstanding calls
//!   (queued + executing) are capped, so the flooder hits its own ceiling
//!   while the global queue keeps room for everyone else. Over-quota
//!   arrivals get the existing busy rejection.
//! * **Weighted-fair pop** (`tenant_weights`): calls queue per tenant and
//!   handlers pop in a deficit-round-robin sweep — a tenant with weight
//!   `w` gets up to `w` pops per round, so backlog depth stops deciding
//!   service order.
//! * **Deadline shedding** (`deadline_propagation`): a call that carried
//!   a deadline budget (see [`crate::frame`]) and outlived it while
//!   queued is handed back in [`Popped::shed`] instead of
//!   [`Popped::run`] — the server answers `STATUS_EXPIRED` and no
//!   handler ever executes it.
//!
//! Time is an explicit `now_ns` argument on every operation rather than
//! an internal `Instant::now()`. The server feeds it a monotonic reading;
//! the `qos` benchmark drives the very same structure from a
//! single-threaded discrete-event simulation with virtual time, which is
//! what makes its shed decisions — and therefore its committed JSON
//! baseline — bit-for-bit reproducible.
//!
//! With quotas and weights both disabled the queue degenerates to a
//! single FIFO ring (every tenant shares one bucket), reproducing the
//! seed's ordering exactly.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Why [`AdmissionQueue::try_push`] refused a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The global queue bound is reached (the seed's only overload
    /// signal).
    QueueFull,
    /// The tenant is at its outstanding-call quota while the global queue
    /// still has room.
    TenantOverQuota,
    /// The queue is closed (server shutting down).
    Closed,
}

/// Priority class of one call within its tenant's DRR turn.
///
/// Classes partition each tenant's bucket, not the ring: a tenant's
/// heartbeats jump its own bulk backlog but never another tenant's
/// credits, so protocol priority composes with — instead of defeating —
/// weighted fairness. With every call in the default [`Bulk`] class
/// (i.e. `priority_protocols` unset) ordering is identical to the
/// classless queue.
///
/// [`Bulk`]: CallClass::Bulk
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CallClass {
    /// Heartbeat/control traffic (protocols listed in
    /// `RpcConfig::priority_protocols`): dequeues ahead of bulk within
    /// the tenant's turn.
    Control,
    /// Everything else (the default).
    #[default]
    Bulk,
}

impl CallClass {
    /// Sub-queue index inside a bucket (control first).
    fn index(self) -> usize {
        match self {
            CallClass::Control => 0,
            CallClass::Bulk => 1,
        }
    }
}

/// Admission metadata for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallMeta {
    /// Tenant identity — the handshake `client_id` (V1 peers pool under
    /// 0).
    pub tenant: u64,
    /// Absolute expiry on the queue's `now_ns` timeline; `None` = no
    /// deadline, never shed.
    pub expires_at_ns: Option<u64>,
    /// Priority class within the tenant's turn (see [`CallClass`]).
    pub class: CallClass,
}

/// Result of one pop sweep.
#[derive(Debug)]
pub struct Popped<T> {
    /// Calls whose deadline passed while queued, in queue order. They
    /// were **not** executed and no longer count against their tenants'
    /// quotas; the caller must answer each with `STATUS_EXPIRED`.
    pub shed: Vec<(CallMeta, T)>,
    /// The next call to execute, if any. It still counts against its
    /// tenant's quota until [`AdmissionQueue::release`].
    pub run: Option<(CallMeta, T)>,
}

impl<T> Popped<T> {
    /// True when the sweep produced neither work nor sheds.
    pub fn is_empty(&self) -> bool {
        self.shed.is_empty() && self.run.is_none()
    }
}

/// One tenant's bucket (in fair mode; FIFO mode keys every call under
/// bucket 0).
struct Bucket<T> {
    /// Class sub-queues, indexed by [`CallClass::index`]: control, then
    /// bulk. Both FIFO; the pop takes the control head first.
    queues: [VecDeque<(CallMeta, T)>; 2],
    /// Admitted calls not yet released: queued + executing. Quota
    /// accounting.
    outstanding: usize,
    /// Pops left in the current round-robin round.
    credits: u32,
    /// Whether the bucket currently sits in `ring`.
    in_ring: bool,
}

impl<T> Bucket<T> {
    fn queued_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }
}

struct State<T> {
    buckets: HashMap<u64, Bucket<T>>,
    /// Round-robin ring of bucket keys with queued calls.
    ring: VecDeque<u64>,
    /// Total queued calls (all buckets).
    len: usize,
    closed: bool,
}

/// See module docs.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    capacity: usize,
    /// Per-tenant outstanding cap; 0 = unlimited.
    quota: usize,
    weights: HashMap<u64, u32>,
    /// Weighted-fair scheduling on? Off = single shared FIFO bucket.
    fair: bool,
}

impl<T> AdmissionQueue<T> {
    /// `capacity` bounds total queued calls (the seed's
    /// `call_queue_len`); `quota` bounds one tenant's outstanding calls
    /// (0 = off); `weights` assigns fair-round credit (absent tenants get
    /// weight 1). Fair scheduling engages when either QoS knob is set.
    pub fn new(capacity: usize, quota: usize, weights: &[(u64, u32)]) -> Self {
        AdmissionQueue {
            state: Mutex::new(State {
                buckets: HashMap::new(),
                ring: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
            quota,
            weights: weights.iter().copied().collect(),
            fair: quota > 0 || !weights.is_empty(),
        }
    }

    /// The fair-round credit for a tenant (min 1).
    pub fn weight(&self, tenant: u64) -> u32 {
        self.weights.get(&tenant).copied().unwrap_or(1).max(1)
    }

    /// Whether weighted-fair scheduling is active.
    pub fn fair(&self) -> bool {
        self.fair
    }

    fn bucket_key(&self, tenant: u64) -> u64 {
        if self.fair {
            tenant
        } else {
            0
        }
    }

    /// Admit a call, or hand it back with the reason. Never blocks.
    pub fn try_push(&self, meta: CallMeta, item: T) -> Result<(), (AdmitError, T)> {
        let mut st = self.state.lock();
        if st.closed {
            return Err((AdmitError::Closed, item));
        }
        if st.len >= self.capacity {
            return Err((AdmitError::QueueFull, item));
        }
        let key = self.bucket_key(meta.tenant);
        let weight = self.weight(key);
        let bucket = st.buckets.entry(key).or_insert_with(|| Bucket {
            queues: [VecDeque::new(), VecDeque::new()],
            outstanding: 0,
            credits: weight,
            in_ring: false,
        });
        if self.fair && self.quota > 0 && bucket.outstanding >= self.quota {
            return Err((AdmitError::TenantOverQuota, item));
        }
        bucket.outstanding += 1;
        bucket.queues[meta.class.index()].push_back((meta, item));
        let newly_ready = !bucket.in_ring;
        if newly_ready {
            bucket.in_ring = true;
        }
        st.len += 1;
        if newly_ready {
            st.ring.push_back(key);
        }
        drop(st);
        self.cv.notify_one();
        Ok(())
    }

    /// One handler's pop sweep at time `now_ns`: collect any expired
    /// heads as `shed` and return the next runnable call per the fair
    /// schedule. Never blocks.
    pub fn try_pop(&self, now_ns: u64) -> Popped<T> {
        let mut st = self.state.lock();
        self.pop_locked(&mut st, now_ns)
    }

    /// Blocking pop: like [`AdmissionQueue::try_pop`] but parks up to
    /// `timeout` waiting for work. Returns empty on timeout or when the
    /// queue is closed and drained. `now_ns` is sampled by the caller —
    /// a stale reading after a park only delays sheds, never invents
    /// them.
    pub fn pop(&self, now_ns: u64, timeout: Duration) -> Popped<T> {
        let mut st = self.state.lock();
        loop {
            let popped = self.pop_locked(&mut st, now_ns);
            if !popped.is_empty() || st.closed {
                return popped;
            }
            if self.cv.wait_for(&mut st, timeout).timed_out() {
                return self.pop_locked(&mut st, now_ns);
            }
        }
    }

    fn pop_locked(&self, st: &mut State<T>, now_ns: u64) -> Popped<T> {
        let mut shed = Vec::new();
        while let Some(&key) = st.ring.front() {
            let bucket = st.buckets.get_mut(&key).expect("ringed bucket exists");
            // Shed expired heads of each class (control first) before
            // considering the bucket's turn: they consume neither
            // credits nor a handler.
            for queue in bucket.queues.iter_mut() {
                while let Some((meta, _)) = queue.front() {
                    match meta.expires_at_ns {
                        Some(expiry) if expiry <= now_ns => {
                            let entry = queue.pop_front().expect("peeked head");
                            bucket.outstanding -= 1;
                            st.len -= 1;
                            shed.push(entry);
                        }
                        _ => break,
                    }
                }
            }
            // Control head first, then bulk: the tenant's heartbeats
            // jump its own backlog but still spend its credits.
            let next = bucket.queues[0]
                .pop_front()
                .or_else(|| bucket.queues[1].pop_front());
            match next {
                Some(entry) => {
                    st.len -= 1;
                    // `outstanding` holds until release(): the call now
                    // executes.
                    bucket.credits = bucket.credits.saturating_sub(1);
                    if bucket.queued_empty() {
                        bucket.in_ring = false;
                        st.ring.pop_front();
                    } else if bucket.credits == 0 {
                        // Round exhausted: replenish and move to the back
                        // of the ring.
                        bucket.credits = self.weight(key);
                        st.ring.rotate_left(1);
                    }
                    return Popped {
                        shed,
                        run: Some(entry),
                    };
                }
                None => {
                    // Bucket emptied by shedding: retire it from the ring
                    // and try the next tenant in this same sweep.
                    bucket.in_ring = false;
                    if bucket.outstanding == 0 {
                        st.buckets.remove(&key);
                    }
                    st.ring.pop_front();
                }
            }
        }
        Popped { shed, run: None }
    }

    /// A handler finished (or shed-answered) a call popped earlier:
    /// return its quota slot to `tenant`.
    pub fn release(&self, tenant: u64) {
        let key = self.bucket_key(tenant);
        let mut st = self.state.lock();
        if let Some(bucket) = st.buckets.get_mut(&key) {
            bucket.outstanding = bucket.outstanding.saturating_sub(1);
            if bucket.outstanding == 0 && bucket.queued_empty() && !bucket.in_ring {
                st.buckets.remove(&key);
            }
        }
    }

    /// Queued (not yet popped) calls.
    pub fn len(&self) -> usize {
        self.state.lock().len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: future pushes fail with [`AdmitError::Closed`]
    /// and blocked pops wake. Already-queued calls remain poppable so a
    /// drain can finish them.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(tenant: u64) -> CallMeta {
        CallMeta {
            tenant,
            expires_at_ns: None,
            class: CallClass::Bulk,
        }
    }

    fn meta_exp(tenant: u64, expires_at_ns: u64) -> CallMeta {
        CallMeta {
            tenant,
            expires_at_ns: Some(expires_at_ns),
            class: CallClass::Bulk,
        }
    }

    fn meta_ctl(tenant: u64) -> CallMeta {
        CallMeta {
            tenant,
            expires_at_ns: None,
            class: CallClass::Control,
        }
    }

    #[test]
    fn fifo_mode_preserves_arrival_order_across_tenants() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(16, 0, &[]);
        assert!(!q.fair());
        for (tenant, item) in [(9, 0u32), (1, 1), (9, 2), (3, 3)] {
            q.try_push(meta(tenant), item).unwrap();
        }
        let order: Vec<u32> = (0..4)
            .map(|_| q.try_pop(0).run.expect("queued").1)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert!(q.try_pop(0).is_empty());
    }

    #[test]
    fn queue_full_and_closed_hand_the_item_back() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(2, 0, &[]);
        q.try_push(meta(1), 10).unwrap();
        q.try_push(meta(1), 11).unwrap();
        let (err, item) = q.try_push(meta(2), 12).unwrap_err();
        assert_eq!(err, AdmitError::QueueFull);
        assert_eq!(item, 12);
        q.close();
        let (err, item) = q.try_push(meta(1), 13).unwrap_err();
        assert_eq!(err, AdmitError::Closed);
        assert_eq!(item, 13);
        // Queued work survives close so a drain can finish it.
        assert_eq!(q.try_pop(0).run.unwrap().1, 10);
        assert_eq!(q.try_pop(0).run.unwrap().1, 11);
    }

    #[test]
    fn quota_caps_one_tenant_without_starving_the_queue() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(64, 2, &[]);
        assert!(q.fair());
        q.try_push(meta(7), 0).unwrap();
        q.try_push(meta(7), 1).unwrap();
        let (err, _) = q.try_push(meta(7), 2).unwrap_err();
        assert_eq!(err, AdmitError::TenantOverQuota);
        // Another tenant is unaffected.
        q.try_push(meta(8), 3).unwrap();
        // Quota spans queued + executing: popping alone frees nothing…
        let run = q.try_pop(0).run.unwrap();
        assert_eq!(run.0.tenant, 7);
        assert_eq!(
            q.try_push(meta(7), 4).unwrap_err().0,
            AdmitError::TenantOverQuota
        );
        // …release() does.
        q.release(7);
        q.try_push(meta(7), 4).unwrap();
    }

    #[test]
    fn weighted_round_robin_pops_by_credit() {
        // Heavy tenant 1 (weight 3) vs light tenant 2 (weight 1), both
        // deeply backlogged: each round serves 3 heavy then 1 light.
        let q: AdmissionQueue<u32> = AdmissionQueue::new(64, 0, &[(1, 3)]);
        for i in 0..9u32 {
            q.try_push(meta(1), i).unwrap();
        }
        for i in 100..103u32 {
            q.try_push(meta(2), i).unwrap();
        }
        let tenants: Vec<u64> = (0..12)
            .map(|_| q.try_pop(0).run.expect("queued").0.tenant)
            .collect();
        assert_eq!(tenants, vec![1, 1, 1, 2, 1, 1, 1, 2, 1, 1, 1, 2]);
    }

    #[test]
    fn backlog_depth_does_not_decide_service_order() {
        // Flooder with 50 queued vs light tenant with 1: the light call
        // is served within one fair round, not after the 50.
        let q: AdmissionQueue<u32> = AdmissionQueue::new(128, 0, &[(1, 4)]);
        for i in 0..50u32 {
            q.try_push(meta(1), i).unwrap();
        }
        q.try_push(meta(2), 999).unwrap();
        let mut pops_until_light = 0;
        loop {
            pops_until_light += 1;
            if q.try_pop(0).run.unwrap().0.tenant == 2 {
                break;
            }
        }
        assert!(
            pops_until_light <= 5,
            "light tenant waited {pops_until_light} pops behind the flood"
        );
    }

    #[test]
    fn expired_heads_are_shed_not_run() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(16, 0, &[]);
        q.try_push(meta_exp(1, 100), 0).unwrap();
        q.try_push(meta_exp(1, 5000), 1).unwrap();
        q.try_push(meta(1), 2).unwrap();
        // At t=200 the first call is expired, the second is not.
        let popped = q.try_pop(200);
        assert_eq!(popped.shed.len(), 1);
        assert_eq!(popped.shed[0].1, 0);
        assert_eq!(popped.run.as_ref().unwrap().1, 1);
        // At exactly the expiry instant the call is shed (<=).
        let popped = q.try_pop(200);
        assert!(popped.shed.is_empty());
        assert_eq!(popped.run.unwrap().1, 2);
    }

    #[test]
    fn shedding_returns_quota_immediately() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(16, 1, &[]);
        q.try_push(meta_exp(4, 10), 0).unwrap();
        assert_eq!(
            q.try_push(meta(4), 1).unwrap_err().0,
            AdmitError::TenantOverQuota
        );
        let popped = q.try_pop(50);
        assert_eq!(popped.shed.len(), 1);
        assert!(popped.run.is_none(), "only the expired call was queued");
        // The shed call's quota slot is already free — no release needed.
        q.try_push(meta(4), 1).unwrap();
    }

    #[test]
    fn sweep_crosses_tenants_emptied_by_shedding() {
        // Tenant 1's whole backlog expires; the same sweep must still
        // hand back tenant 2's live call.
        let q: AdmissionQueue<u32> = AdmissionQueue::new(16, 0, &[(1, 2)]);
        q.try_push(meta_exp(1, 10), 0).unwrap();
        q.try_push(meta_exp(1, 20), 1).unwrap();
        q.try_push(meta(2), 2).unwrap();
        let popped = q.try_pop(1000);
        assert_eq!(popped.shed.len(), 2);
        assert_eq!(popped.run.unwrap().1, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_on_close() {
        use std::sync::Arc;
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(16, 0, &[]));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop(0, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(meta(1), 42).unwrap();
        assert_eq!(popper.join().unwrap().run.unwrap().1, 42);

        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop(0, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(popper.join().unwrap().is_empty());
    }

    #[test]
    fn control_class_jumps_the_tenants_bulk_backlog() {
        // A bulk flood is already queued when a heartbeat arrives: the
        // heartbeat is the very next pop, not the 51st.
        let q: AdmissionQueue<u32> = AdmissionQueue::new(128, 0, &[]);
        for i in 0..50u32 {
            q.try_push(meta(1), i).unwrap();
        }
        q.try_push(meta_ctl(1), 999).unwrap();
        assert_eq!(q.try_pop(0).run.unwrap().1, 999);
        // Bulk order among itself is untouched.
        assert_eq!(q.try_pop(0).run.unwrap().1, 0);
        assert_eq!(q.try_pop(0).run.unwrap().1, 1);
    }

    #[test]
    fn control_priority_stays_within_the_tenants_turn() {
        // Tenant 1 floods bulk and sends heartbeats; tenant 2 has weight
        // 1 of bulk. Tenant 1's heartbeats precede its own bulk but
        // still consume its credits — tenant 2 keeps its round slot.
        let q: AdmissionQueue<u32> = AdmissionQueue::new(128, 0, &[(1, 2)]);
        for i in 0..6u32 {
            q.try_push(meta(1), i).unwrap();
        }
        q.try_push(meta_ctl(1), 100).unwrap();
        q.try_push(meta_ctl(1), 101).unwrap();
        for i in 200..203u32 {
            q.try_push(meta(2), i).unwrap();
        }
        let order: Vec<u32> = (0..11)
            .map(|_| q.try_pop(0).run.expect("queued").1)
            .collect();
        // Rounds of (2× tenant-1, 1× tenant-2): heartbeats first within
        // tenant 1's turns, tenant 2 never displaced.
        assert_eq!(order, vec![100, 101, 200, 0, 1, 201, 2, 3, 202, 4, 5]);
    }

    #[test]
    fn expired_control_heads_are_shed_too() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(16, 0, &[]);
        q.try_push(
            CallMeta {
                tenant: 1,
                expires_at_ns: Some(10),
                class: CallClass::Control,
            },
            0,
        )
        .unwrap();
        q.try_push(meta(1), 1).unwrap();
        let popped = q.try_pop(50);
        assert_eq!(popped.shed.len(), 1);
        assert_eq!(popped.shed[0].1, 0);
        assert_eq!(popped.run.unwrap().1, 1);
    }

    #[test]
    fn all_bulk_ordering_matches_the_classless_queue() {
        // The default-class invariant the committed baselines rely on:
        // with no Control calls anywhere, pop order is plain FIFO
        // (non-fair mode) exactly as before classes existed.
        let q: AdmissionQueue<u32> = AdmissionQueue::new(64, 0, &[]);
        for i in 0..20u32 {
            q.try_push(meta(i as u64 % 3), i).unwrap();
        }
        let order: Vec<u32> = (0..20)
            .map(|_| q.try_pop(0).run.expect("queued").1)
            .collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn bucket_map_stays_bounded() {
        // Transient tenants must not leak buckets: once a tenant's calls
        // are popped and released, its bucket is gone.
        let q: AdmissionQueue<u32> = AdmissionQueue::new(1024, 4, &[]);
        for tenant in 0..100u64 {
            q.try_push(meta(tenant), tenant as u32).unwrap();
        }
        for _ in 0..100 {
            let (m, _) = q.try_pop(0).run.unwrap();
            q.release(m.tenant);
        }
        assert_eq!(q.state.lock().buckets.len(), 0);
        assert!(q.state.lock().ring.is_empty());
    }
}
