//! RPC error type.

use simnet::VerbsError;

/// Everything that can go wrong with an RPC call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// Transport-level I/O failure (socket path).
    Io(String),
    /// Verbs-level failure (RPCoIB path).
    Verbs(VerbsError),
    /// The server reported an application error (remote exception).
    Remote(String),
    /// No response within the configured call timeout.
    Timeout,
    /// The server refused admission because its call queue is full. The
    /// call was never executed; backing off and retrying is safe even for
    /// non-idempotent operations.
    ServerBusy,
    /// The server shed the call because its propagated deadline budget
    /// expired while it was queued. The call was never executed, but the
    /// caller's deadline has already passed — retrying cannot help.
    DeadlineExpired,
    /// The connection closed while the call was pending.
    ConnectionClosed,
    /// A large frame could not acquire slot credits over the peer's large
    /// region within the timeout: the peer is alive but not draining (slow
    /// reader, or in-flight credit returns lost to injected faults). The
    /// connection itself is still healthy — backing off and retrying is
    /// the right response.
    CreditStarved,
    /// The server has no service registered for the protocol.
    UnknownProtocol(String),
    /// Malformed frame or failed deserialization.
    Protocol(String),
    /// Client/server misconfiguration (e.g. RPCoIB on a non-RDMA fabric).
    Config(String),
}

impl RpcError {
    /// Whether a fresh attempt of the same call could plausibly succeed.
    ///
    /// Drives the client's [`crate::RetryPolicy`] loop. Retryable errors
    /// are transient transport conditions — the peer may come back, a
    /// reconnect may land on a healthy server. Non-retryable errors are
    /// deterministic: the server answered (and said no), the request
    /// itself is malformed, or the setup is wrong; repeating those only
    /// burns the deadline.
    pub fn is_retryable(&self) -> bool {
        match self {
            RpcError::Timeout
            | RpcError::ServerBusy
            | RpcError::ConnectionClosed
            | RpcError::CreditStarved
            | RpcError::Io(_) => true,
            RpcError::Verbs(e) => match e {
                // Transient fabric states.
                VerbsError::PeerDown
                | VerbsError::NotConnected
                | VerbsError::ReceiverNotReady
                | VerbsError::Timeout => true,
                // Deterministic local/remote misconfiguration.
                VerbsError::RecvBufferTooSmall { .. }
                | VerbsError::OutOfBounds { .. }
                | VerbsError::BadRemoteKey => false,
            },
            RpcError::Remote(_)
            | RpcError::DeadlineExpired
            | RpcError::UnknownProtocol(_)
            | RpcError::Protocol(_)
            | RpcError::Config(_) => false,
        }
    }

    /// Whether this error means the connection it traveled on is unusable
    /// and must be dropped from the client's cache before a retry.
    /// `Timeout` notably does NOT: the server may simply be slow, and
    /// tearing down an RPCoIB connection discards its registered buffers.
    pub fn invalidates_connection(&self) -> bool {
        matches!(
            self,
            RpcError::ConnectionClosed | RpcError::Io(_) | RpcError::Verbs(_)
        )
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Io(m) => write!(f, "io error: {m}"),
            RpcError::Verbs(e) => write!(f, "verbs error: {e}"),
            RpcError::Remote(m) => write!(f, "remote exception: {m}"),
            RpcError::Timeout => write!(f, "rpc timeout"),
            RpcError::ServerBusy => write!(f, "server too busy: call queue full"),
            RpcError::DeadlineExpired => {
                write!(f, "deadline expired before execution: call shed by server")
            }
            RpcError::ConnectionClosed => write!(f, "connection closed"),
            RpcError::CreditStarved => {
                write!(
                    f,
                    "large-frame credit starved: peer did not drain its region in time"
                )
            }
            RpcError::UnknownProtocol(p) => write!(f, "unknown protocol: {p}"),
            RpcError::Protocol(m) => write!(f, "protocol error: {m}"),
            RpcError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e.to_string())
    }
}

impl From<VerbsError> for RpcError {
    fn from(e: VerbsError) -> Self {
        RpcError::Verbs(e)
    }
}

/// Result alias used across the crate.
pub type RpcResult<T> = Result<T, RpcError>;
